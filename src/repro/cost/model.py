"""Cost models for plan selection.

Two models are provided:

* :class:`SimpleCostModel` — the paper's analytical model from
  Section 5.1: "a simple cost model where joining R and S costs
  |R||S| and computing an aggregate on R costs |R| log |R|".  This is
  the model used by the plan-linearity admissibility test (Eq. 1) and
  by the optimizers by default, so plan choices match the paper's
  analysis.

* :class:`IOCostModel` — a page-IO model over the simulated storage
  layer: operators pay for reading their inputs, writing results that
  must be materialized, and a CPU term per tuple.  Closer to what a
  real System-R optimizer minimizes; useful for ablations.

Both models share one interface so optimizers are model-agnostic.
"""

from __future__ import annotations

import math

from repro.catalog.statistics import TableStats
from repro.storage.page import DEFAULT_PAGE_SIZE, PageGeometry

__all__ = ["CostModel", "SimpleCostModel", "IOCostModel"]


class CostModel:
    """Interface: per-operator cost from input/output statistics.

    ``method`` selects the physical algorithm where several exist
    (Section 5: "there are multiple algorithms to implement join
    (multiplication) and aggregation (summation)"): joins support
    "hash" and "sort_merge", aggregation "sort" and "hash".  Models may
    ignore the parameter (the paper's analytical model does).
    """

    name = "abstract"

    def scan_cost(self, table: TableStats) -> float:
        raise NotImplementedError

    def join_cost(
        self,
        left: TableStats,
        right: TableStats,
        out: TableStats,
        method: str = "hash",
    ) -> float:
        raise NotImplementedError

    def group_cost(
        self, child: TableStats, out: TableStats, method: str = "sort"
    ) -> float:
        raise NotImplementedError

    def select_cost(self, child: TableStats, out: TableStats) -> float:
        raise NotImplementedError

    def index_scan_cost(
        self, table: TableStats, out: TableStats
    ) -> float:
        """Cost of an equality probe returning ``out`` rows."""
        raise NotImplementedError


class SimpleCostModel(CostModel):
    """The paper's Section 5.1 model: |R||S| joins, |R| log |R| aggregates."""

    name = "simple"

    def scan_cost(self, table: TableStats) -> float:
        return 0.0

    def join_cost(
        self,
        left: TableStats,
        right: TableStats,
        out: TableStats,
        method: str = "hash",
    ) -> float:
        return left.cardinality * right.cardinality

    def group_cost(
        self, child: TableStats, out: TableStats, method: str = "sort"
    ) -> float:
        n = max(child.cardinality, 2.0)
        return n * math.log2(n)

    def select_cost(self, child: TableStats, out: TableStats) -> float:
        return child.cardinality

    def index_scan_cost(
        self, table: TableStats, out: TableStats
    ) -> float:
        # The analytical model prices access by rows touched.
        return out.cardinality


class IOCostModel(CostModel):
    """Page-IO model over the simulated storage layer.

    Joins are costed as hash joins (read both inputs, write the
    output); aggregates as sort-based grouping (read, sort CPU, write).
    ``cpu_per_tuple`` converts tuple touches into page-IO-equivalent
    units so the two terms can be summed.
    """

    name = "io"

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        cpu_per_tuple: float = 0.001,
    ):
        self.page_size = page_size
        self.cpu_per_tuple = cpu_per_tuple

    def _pages(self, table: TableStats) -> float:
        geometry = PageGeometry(len(table.var_sizes), self.page_size)
        return float(geometry.pages_for(int(math.ceil(table.cardinality))))

    def scan_cost(self, table: TableStats) -> float:
        return self._pages(table)

    def join_cost(
        self,
        left: TableStats,
        right: TableStats,
        out: TableStats,
        method: str = "hash",
    ) -> float:
        io = self._pages(left) + self._pages(right) + self._pages(out)
        if method == "hash":
            cpu = (
                left.cardinality + right.cardinality + out.cardinality
            ) * self.cpu_per_tuple
        elif method == "sort_merge":
            nl = max(left.cardinality, 2.0)
            nr = max(right.cardinality, 2.0)
            cpu = (
                nl * math.log2(nl)
                + nr * math.log2(nr)
                + left.cardinality
                + right.cardinality
                + out.cardinality
            ) * self.cpu_per_tuple
        else:
            raise ValueError(f"unknown join method {method!r}")
        return io + cpu

    def group_cost(
        self, child: TableStats, out: TableStats, method: str = "sort"
    ) -> float:
        n = max(child.cardinality, 2.0)
        io = self._pages(child) + self._pages(out)
        if method == "sort":
            cpu = n * math.log2(n) * self.cpu_per_tuple
        elif method == "hash":
            cpu = (n + out.cardinality) * self.cpu_per_tuple
        else:
            raise ValueError(f"unknown group method {method!r}")
        return io + cpu

    def select_cost(self, child: TableStats, out: TableStats) -> float:
        return self._pages(child) + child.cardinality * self.cpu_per_tuple

    def index_scan_cost(
        self, table: TableStats, out: TableStats
    ) -> float:
        # Bucket page + the heap pages holding the matches + cpu.
        return (
            1.0
            + self._pages(out)
            + out.cardinality * self.cpu_per_tuple
        )
