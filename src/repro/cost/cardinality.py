"""Cardinality estimation for intermediate results.

The estimators follow the classical System-R style assumptions the
paper's setting inherits:

* **product join** — independence plus containment of value sets:

      |s1 ⋈* s2| ≈ |s1|·|s2| / Π_{v ∈ shared} max(d_{s1}(v), d_{s2}(v))

  where ``d_s(v)`` is the distinct count of ``v`` in ``s``.  For
  *complete* relations (the Section 7.3 views) this is exact: it
  reduces to the product of the union's domain sizes.

* **GroupBy** — output cardinality is bounded by both the input size
  and the product of the group variables' distinct counts.

* **selection** ``v = c`` — uniformity: cardinality shrinks by the
  distinct count of ``v``; the selected variable keeps one distinct
  value.

Derived :class:`TableStats` propagate per-variable distinct counts so
estimates compose through deep plans.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.catalog.statistics import TableStats

__all__ = ["join_stats", "group_stats", "select_stats"]


def _cap_distincts(
    var_sizes: Mapping[str, int],
    distinct: Mapping[str, float],
    cardinality: float,
) -> dict[str, float]:
    """No variable can have more distinct values than there are rows."""
    return {
        v: max(1.0, min(distinct[v], float(var_sizes[v]), cardinality))
        for v in var_sizes
    }


def join_stats(left: TableStats, right: TableStats, name: str = "") -> TableStats:
    """Estimated stats of ``left ⋈* right``."""
    shared = [v for v in left.var_sizes if v in right.var_sizes]
    selectivity = 1.0
    for v in shared:
        selectivity /= max(left.distinct[v], right.distinct[v], 1.0)
    cardinality = max(1.0, left.cardinality * right.cardinality * selectivity)

    var_sizes = dict(left.var_sizes)
    var_sizes.update(right.var_sizes)
    distinct: dict[str, float] = {}
    for v in var_sizes:
        if v in shared:
            distinct[v] = min(left.distinct[v], right.distinct[v])
        elif v in left.var_sizes:
            distinct[v] = left.distinct[v]
        else:
            distinct[v] = right.distinct[v]
    distinct = _cap_distincts(var_sizes, distinct, cardinality)
    return TableStats(
        name or f"({left.name}*{right.name})", cardinality, var_sizes, distinct
    )


def group_stats(
    child: TableStats, group_vars: Sequence[str], name: str = ""
) -> TableStats:
    """Estimated stats of ``GroupBy_{group_vars}(child)``."""
    group_vars = [v for v in group_vars if v in child.var_sizes]
    groups = 1.0
    for v in group_vars:
        groups *= child.distinct[v]
    cardinality = max(1.0, min(child.cardinality, groups))
    var_sizes = {v: child.var_sizes[v] for v in group_vars}
    distinct = _cap_distincts(
        var_sizes, {v: child.distinct[v] for v in group_vars}, cardinality
    )
    return TableStats(
        name or f"g({child.name})", cardinality, var_sizes, distinct
    )


def select_stats(
    child: TableStats, predicate: Mapping[str, object], name: str = ""
) -> TableStats:
    """Estimated stats of an equality selection on ``child``."""
    cardinality = child.cardinality
    distinct = dict(child.distinct)
    for v in predicate:
        if v not in child.var_sizes:
            continue
        cardinality /= max(child.distinct[v], 1.0)
        distinct[v] = 1.0
    cardinality = max(1.0, cardinality)
    distinct = _cap_distincts(child.var_sizes, distinct, cardinality)
    return TableStats(
        name or f"sel({child.name})", cardinality, dict(child.var_sizes), distinct
    )
