"""Cardinality estimation and cost models (Section 5.1)."""

from repro.cost.cardinality import group_stats, join_stats, select_stats
from repro.cost.model import CostModel, IOCostModel, SimpleCostModel

__all__ = [
    "join_stats",
    "group_stats",
    "select_stats",
    "CostModel",
    "SimpleCostModel",
    "IOCostModel",
]
