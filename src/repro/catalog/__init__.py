"""Catalog: table registry and optimizer-visible statistics."""

from repro.catalog.catalog import Catalog
from repro.catalog.statistics import TableStats

__all__ = ["Catalog", "TableStats"]
