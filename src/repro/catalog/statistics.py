"""Per-relation statistics, the optimizer's view of the data.

The paper notes (Section 5.1) that both the domain size ``σ_X`` of a
variable and the size ``σ̂_X`` of the smallest base relation containing
it "are readily available in the catalog of RDBMS systems".  A
:class:`TableStats` carries exactly the catalog-visible facts:
cardinality, the variables with their domain sizes, and per-variable
distinct counts.  Derived statistics for intermediate results live in
:mod:`repro.cost.cardinality`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.relation import FunctionalRelation
from repro.errors import CatalogError

__all__ = ["TableStats"]


@dataclass(frozen=True)
class TableStats:
    """Catalog statistics for one (base or derived) functional relation.

    ``cardinality`` is a float so derived estimates never overflow;
    base-relation stats are exact integers.
    """

    name: str
    cardinality: float
    var_sizes: dict[str, int] = field(default_factory=dict)
    distinct: dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        missing = set(self.var_sizes) ^ set(self.distinct)
        if missing:
            raise CatalogError(
                f"stats for {self.name!r}: var_sizes/distinct disagree on "
                f"{sorted(missing)}"
            )
        for v, d in self.distinct.items():
            if d > self.var_sizes[v] + 1e-9:
                raise CatalogError(
                    f"stats for {self.name!r}: distinct({v})={d} exceeds "
                    f"domain size {self.var_sizes[v]}"
                )

    @classmethod
    def from_relation(cls, relation: FunctionalRelation) -> "TableStats":
        """Exact statistics computed from the data (ANALYZE equivalent)."""
        var_sizes = {v.name: v.size for v in relation.variables}
        distinct = {
            n: float(len(np.unique(relation.columns[n])))
            for n in relation.var_names
        }
        return cls(
            name=relation.name or "<anonymous>",
            cardinality=float(relation.ntuples),
            var_sizes=var_sizes,
            distinct=distinct,
        )

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(self.var_sizes)

    def domain_size(self, var_name: str) -> int:
        """``σ_X``: domain size of a variable."""
        try:
            return self.var_sizes[var_name]
        except KeyError:
            raise CatalogError(
                f"{self.name!r} has no variable {var_name!r}"
            ) from None

    def distinct_count(self, var_name: str) -> float:
        """Distinct values of the variable actually present."""
        try:
            return self.distinct[var_name]
        except KeyError:
            raise CatalogError(
                f"{self.name!r} has no variable {var_name!r}"
            ) from None

    def is_complete(self) -> bool:
        total = 1.0
        for size in self.var_sizes.values():
            total *= size
        return self.cardinality >= total

    def renamed(self, name: str) -> "TableStats":
        return TableStats(name, self.cardinality, self.var_sizes, self.distinct)

    def __repr__(self) -> str:
        return (
            f"TableStats({self.name!r}, card={self.cardinality:.0f}, "
            f"vars={list(self.var_sizes)})"
        )
