"""The system catalog: named base relations, their stats, and heap files.

Optimizers consult only the catalog (never the data) — exactly the
setting of the paper, where plan choice is driven by catalog
cardinalities and domain sizes.  Executors additionally fetch the
relations themselves and their heap files for IO accounting.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.catalog.statistics import TableStats
from repro.data.domain import Variable
from repro.data.relation import FunctionalRelation
from repro.errors import CatalogError, SchemaError
from repro.storage.heapfile import HeapFile
from repro.storage.index import HashIndex
from repro.storage.page import DEFAULT_PAGE_SIZE
from repro.storage.partition import PartitionSpec, partition_relation

__all__ = ["Catalog"]


class Catalog:
    """Registry of base functional relations.

    Registration validates that variables shared across relations refer
    to the same domain, mirroring the schema-level consistency an RDBMS
    enforces through foreign keys.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        self._relations: dict[str, FunctionalRelation] = {}
        self._stats: dict[str, TableStats] = {}
        self._heapfiles: dict[str, HeapFile] = {}
        self._indexes: dict[tuple[str, str], HashIndex] = {}
        self._partitions: dict[str, PartitionSpec] = {}
        self._shard_relations: dict[str, list[FunctionalRelation]] = {}
        self._shard_files: dict[str, list[HeapFile]] = {}
        self._variables: dict[str, Variable] = {}
        self._page_size = page_size
        self._next_file_id = 1
        self._epoch = 0

    @property
    def stats_epoch(self) -> int:
        """Version counter for catalog statistics.

        Bumped whenever plan-relevant catalog state changes — a table
        registered, reloaded (:meth:`replace`), or indexed.  Plan
        caches key on it so a plan chosen against stale statistics is
        never served after the catalog moves on.
        """
        return self._epoch

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register(self, relation: FunctionalRelation, name: str | None = None) -> str:
        """Add a base relation; returns its catalog name."""
        name = name or relation.name
        if not name:
            raise CatalogError("relation must have a name to be registered")
        if name in self._relations:
            raise CatalogError(f"table {name!r} already registered")
        for v in relation.variables:
            known = self._variables.get(v.name)
            if known is not None and (
                known.domain.name != v.domain.name
                or known.domain.size != v.domain.size
            ):
                raise SchemaError(
                    f"variable {v.name!r} in table {name!r} conflicts with "
                    f"existing domain {known.domain!r}"
                )
        relation = relation.with_name(name)
        self._relations[name] = relation
        self._stats[name] = TableStats.from_relation(relation)
        self._heapfiles[name] = HeapFile.for_relation(
            self._next_file_id, relation, self._page_size
        )
        self._next_file_id += 1
        for v in relation.variables:
            self._variables.setdefault(v.name, v)
        self._epoch += 1
        return name

    def replace(self, relation: FunctionalRelation, name: str | None = None) -> str:
        """Reload a registered table: new data, fresh statistics.

        The heap file is rebuilt under a fresh file id (stale buffered
        pages of the old file simply age out of the pool), indexes on
        the table are dropped (they describe the old rows), and the
        statistics epoch advances so stats-keyed plan caches stop
        serving plans costed against the old data.
        """
        name = name or relation.name
        if name not in self._relations:
            raise CatalogError(
                f"cannot replace unregistered table {name!r}"
            )
        for v in relation.variables:
            known = self._variables.get(v.name)
            if known is None or (
                known.domain.name == v.domain.name
                and known.domain.size == v.domain.size
            ):
                continue
            shared = any(
                v.name in rel.variables
                for other, rel in self._relations.items()
                if other != name
            )
            if shared:
                raise SchemaError(
                    f"variable {v.name!r} in table {name!r} conflicts with "
                    f"existing domain {known.domain!r}"
                )
        relation = relation.with_name(name)
        self._relations[name] = relation
        self._stats[name] = TableStats.from_relation(relation)
        self._heapfiles[name] = HeapFile.for_relation(
            self._next_file_id, relation, self._page_size
        )
        self._next_file_id += 1
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]
        for v in relation.variables:
            self._variables[v.name] = v
        spec = self._partitions.pop(name, None)
        self._shard_relations.pop(name, None)
        self._shard_files.pop(name, None)
        self._epoch += 1
        if spec is not None:
            # Reloaded data keeps the table's declared partitioning.
            self.partition_table(name, spec.key, spec.shards)
        return name

    def register_all(self, relations: Iterable[FunctionalRelation]) -> list[str]:
        return [self.register(r) for r in relations]

    def create_index(self, table: str, variable: str) -> HashIndex:
        """Build a hash index on ``table(variable)``.

        The equality access path of Section 5.4's discussion: with an
        index, a constrained-domain selection can probe instead of
        scanning.
        """
        relation = self.relation(table)
        key = (table, variable)
        if key in self._indexes:
            raise CatalogError(f"index on {table}({variable}) exists")
        index = HashIndex(self._next_file_id, relation, variable)
        self._next_file_id += 1
        self._indexes[key] = index
        self._epoch += 1
        return index

    def index_on(self, table: str, variable: str) -> HashIndex | None:
        """The hash index on ``table(variable)``, if one was created."""
        return self._indexes.get((table, variable))

    # ------------------------------------------------------------------
    # Partitioning
    # ------------------------------------------------------------------
    def partition_table(
        self, name: str, key: str, shards: int
    ) -> PartitionSpec:
        """Hash-partition a registered table by one of its variables.

        The table's rows are split into ``shards`` co-located heap
        files by the deterministic bucket function of
        :mod:`repro.storage.partition`; the full-table heap file is
        kept (unsharded consumers and the optimizer still see one
        table).  Re-partitioning replaces the previous decomposition.
        The statistics epoch advances: physical layout is plan-relevant
        to the runtime's shard-wise execution.
        """
        relation = self.relation(name)
        if key not in relation.columns:
            raise CatalogError(
                f"partitioning key {key!r} is not a variable of table "
                f"{name!r} (has {list(relation.var_names)})"
            )
        spec = PartitionSpec(key, shards)
        parts = partition_relation(relation, key, shards)
        files = []
        for part in parts:
            files.append(
                HeapFile.for_relation(self._next_file_id, part, self._page_size)
            )
            self._next_file_id += 1
        self._partitions[name] = spec
        self._shard_relations[name] = parts
        self._shard_files[name] = files
        self._epoch += 1
        return spec

    def snapshot_view(self) -> "Catalog":
        """A frozen shallow clone of the catalog at the current epoch.

        Serving-side snapshot isolation (``repro.serve``): the clone
        shares every immutable component — relations, statistics, heap
        files, indexes, shard decompositions — so taking one is O(number
        of tables), and readers holding it keep seeing the pre-reload
        data after :meth:`replace` swaps new objects into *this*
        catalog.  Safe because reloads never mutate the old objects:
        ``replace`` installs a fresh heap file under a fresh file id
        (the checkpoint manifest relies on the same contract), so stale
        pages of the cloned catalog's files stay readable through the
        shared buffer pool until the clone is dropped.
        """
        clone = Catalog(self._page_size)
        clone._relations = dict(self._relations)
        clone._stats = dict(self._stats)
        clone._heapfiles = dict(self._heapfiles)
        clone._indexes = dict(self._indexes)
        clone._partitions = dict(self._partitions)
        clone._shard_relations = {
            k: list(v) for k, v in self._shard_relations.items()
        }
        clone._shard_files = {k: list(v) for k, v in self._shard_files.items()}
        clone._variables = dict(self._variables)
        clone._next_file_id = self._next_file_id
        clone._epoch = self._epoch
        return clone

    def partition_spec(self, name: str) -> PartitionSpec | None:
        """The table's :class:`PartitionSpec`, or ``None`` if unpartitioned."""
        return self._partitions.get(name)

    @property
    def partitioned_tables(self) -> tuple[str, ...]:
        return tuple(self._partitions)

    @property
    def has_partitions(self) -> bool:
        return bool(self._partitions)

    def shard_relations(self, name: str) -> list[FunctionalRelation]:
        try:
            return self._shard_relations[name]
        except KeyError:
            raise CatalogError(f"table {name!r} is not partitioned") from None

    def shard_heapfiles(self, name: str) -> list[HeapFile]:
        try:
            return self._shard_files[name]
        except KeyError:
            raise CatalogError(f"table {name!r} is not partitioned") from None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def relation(self, name: str) -> FunctionalRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def stats(self, name: str) -> TableStats:
        try:
            return self._stats[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def heapfile(self, name: str) -> HeapFile:
        try:
            return self._heapfiles[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def variable(self, name: str) -> Variable:
        try:
            return self._variables[name]
        except KeyError:
            raise CatalogError(f"unknown variable {name!r}") from None

    @property
    def variable_names(self) -> tuple[str, ...]:
        return tuple(self._variables)

    def tables_with_variable(self, var_name: str) -> tuple[str, ...]:
        """``rels(v)`` in Algorithm 2: tables containing the variable."""
        return tuple(
            name
            for name, rel in self._relations.items()
            if var_name in rel.variables
        )

    def smallest_table_with_variable(self, var_name: str) -> TableStats:
        """``σ̂_X``: stats of the smallest base relation containing X."""
        candidates = [
            self._stats[name] for name in self.tables_with_variable(var_name)
        ]
        if not candidates:
            raise CatalogError(f"no table contains variable {var_name!r}")
        return min(candidates, key=lambda s: s.cardinality)

    def environment(self) -> Mapping[str, FunctionalRelation]:
        """Name → relation mapping for the plan executor."""
        return dict(self._relations)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Catalog(tables={list(self._relations)})"
