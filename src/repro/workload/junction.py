"""The Junction Tree algorithm (Algorithm 5).

Transforms an arbitrary (possibly cyclic) schema of functional
relations into an *acyclic* one:

1. build the variable graph of the schema;
2. triangulate it (Algorithm 6);
3. each maximal clique of the chordal graph becomes a relation of the
   new schema;
4. assign every original relation to a clique covering its scope;
5. each clique relation is the product join of its assigned relations
   (cliques with no assignment get the multiplicative-identity
   relation over their scope).

The clique relations are connected by a maximum-weight spanning tree
over shared-variable counts — a junction tree by construction — so
Belief Propagation runs correctly on the result (Theorem 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from repro.data.builders import identity_relation
from repro.data.domain import VariableSet
from repro.data.relation import FunctionalRelation
from repro.errors import MPFError, WorkloadError
from repro.plans.nodes import PlanNode, ProductJoin, Scan
from repro.plans.runtime import ExecutionContext, evaluate
from repro.semiring.base import Semiring
from repro.storage.iostats import IOStats
from repro.workload.graphs import (
    has_running_intersection,
    maximum_weight_spanning_tree,
    variable_graph,
)
from repro.workload.triangulate import TriangulationResult, triangulate

__all__ = ["JunctionTree", "build_junction_tree"]


@dataclass
class JunctionTree:
    """An acyclic clique schema with materialized potentials."""

    cliques: dict[str, FunctionalRelation]
    """Clique name → materialized clique relation (potential)."""
    tree: nx.Graph
    """Junction tree over clique names; edges carry ``separator`` sets."""
    assignment: dict[str, str]
    """Original relation name → clique name it was folded into."""
    triangulation: TriangulationResult
    stats: IOStats | None = None
    """Simulated IO of materializing the clique potentials."""

    @property
    def schema(self) -> dict[str, tuple[str, ...]]:
        return {
            name: rel.var_names for name, rel in self.cliques.items()
        }

    def cliques_with_variable(self, var_name: str) -> tuple[str, ...]:
        return tuple(
            name
            for name, rel in self.cliques.items()
            if var_name in rel.variables
        )

    def validate(self) -> None:
        """Assert the running intersection property holds."""
        if not has_running_intersection(self.tree, self.schema):
            raise WorkloadError(
                "junction tree lost the running intersection property"
            )


def build_junction_tree(
    relations: Sequence[FunctionalRelation],
    semiring: Semiring,
    order: Sequence[str] | None = None,
    heuristic: str = "min_fill",
    context: ExecutionContext | None = None,
    journal=None,
) -> JunctionTree:
    """Algorithm 5 over materialized functional relations.

    ``order`` optionally fixes (a prefix of) the triangulation order —
    Figure 14 triangulates the cyclic supply-chain schema with
    ``tid, sid``.

    Clique potentials are materialized by running product-join plans
    through the physical runtime (step 5), so construction pays
    simulated IO; ``context`` lets the caller share a buffer pool and
    stats clock across junction-tree construction and later BP passes.

    ``journal`` (a :class:`~repro.storage.journal.StepJournal`) makes
    each clique materialization a durable resumable unit, skipped on
    re-run when its record is already on the WAL.
    """
    if not relations:
        raise WorkloadError("junction tree over an empty schema")
    by_name = {}
    for i, rel in enumerate(relations):
        by_name[rel.name or f"s{i}"] = rel
    schema = {name: rel.var_names for name, rel in by_name.items()}

    graph = variable_graph(schema)
    triangulation = triangulate(graph, order=order, heuristic=heuristic)

    clique_scopes = list(triangulation.maximal_cliques)
    clique_names = [f"C{i}" for i in range(len(clique_scopes))]
    scope_of = dict(zip(clique_names, clique_scopes))

    # Step 4: assign relations to covering cliques (smallest first for
    # tighter potentials; existence is guaranteed by triangulation).
    assignment: dict[str, str] = {}
    for rel_name, rel in by_name.items():
        scope = frozenset(rel.var_names)
        candidates = [
            c for c in clique_names if scope <= scope_of[c]
        ]
        if not candidates:
            raise WorkloadError(
                f"no clique covers relation {rel_name!r} with scope "
                f"{sorted(scope)} — triangulation is broken"
            )
        assignment[rel_name] = min(
            candidates, key=lambda c: (len(scope_of[c]), c)
        )

    # Step 5: materialize clique potentials through the runtime.
    ctx = context or ExecutionContext({}, semiring)
    for name, rel in by_name.items():
        ctx.bind(name, rel)

    variables_by_name = {}
    for rel in by_name.values():
        for v in rel.variables:
            variables_by_name.setdefault(v.name, v)

    cliques: dict[str, FunctionalRelation] = {}
    for clique_name in clique_names:
        member_names = [
            r for r, c in assignment.items() if c == clique_name
        ]
        scope_vars = VariableSet.of(
            [variables_by_name[v] for v in sorted(scope_of[clique_name])]
        )
        member_scope = frozenset(
            v.name
            for r in member_names
            for v in by_name[r].variables
        )
        # The assigned members may not mention every clique variable
        # (e.g. a clique {pid, sid, cid} whose only member is
        # contracts(pid, sid)); pad with the identity over the missing
        # variables so messages on any separator can flow through.
        missing = [
            v for v in scope_vars if v.name not in member_scope
        ]
        inputs = list(member_names)
        if missing:
            pad_name = f"{clique_name}.pad"
            ctx.bind(
                pad_name,
                identity_relation(
                    missing, semiring.one, dtype=semiring.dtype
                ).with_name(pad_name),
            )
            inputs.append(pad_name)
        plan: PlanNode = Scan(inputs[0])
        for name in inputs[1:]:
            plan = ProductJoin(plan, Scan(name))

        def compute_clique(clique_name=clique_name, plan=plan,
                           member_names=member_names):
            try:
                potential = evaluate(plan, ctx).with_name(clique_name)
            except MPFError as exc:
                exc.add_context(
                    f"materializing clique {clique_name} "
                    f"({', '.join(sorted(scope_of[clique_name]))}) "
                    f"from {sorted(member_names)}"
                )
                raise
            ctx.bind(clique_name, potential)
            ctx.count("junction.cliques")
            return {clique_name: potential}

        if journal is None:
            produced = compute_clique()
        else:
            produced = journal.run(
                f"junction.clique:{clique_name}", ctx, compute_clique
            )
        cliques[clique_name] = produced[clique_name]

    # Junction tree over the cliques.
    clique_graph = nx.Graph()
    clique_graph.add_nodes_from(clique_names)
    for i, a in enumerate(clique_names):
        for b in clique_names[i + 1:]:
            shared = scope_of[a] & scope_of[b]
            if shared:
                clique_graph.add_edge(
                    a, b, weight=len(shared), separator=shared
                )
    tree = maximum_weight_spanning_tree(clique_graph)
    tree.add_nodes_from(clique_names)

    result = JunctionTree(
        cliques=cliques,
        tree=tree,
        assignment=assignment,
        triangulation=triangulation,
        stats=ctx.stats,
    )
    result.validate()
    return result
