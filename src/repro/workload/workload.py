"""The MPF Workload Problem (Section 6).

A workload is a set of single-variable basic or restricted-answer MPF
queries, each with a probability of being posed.  The goal is a set of
materialized views ``S`` minimizing

    C(S) + E[ cost(Q(q, S)) ]

— the cost of materializing ``S`` plus the expected cost of answering
a workload query against it, subject to the correctness invariant
(Definition 5).  :func:`repro.workload.vecache.build_ve_cache`
produces a candidate ``S``; this module models workloads, evaluates the
objective, and compares candidate caches (e.g. caches built with
different elimination orders, or the empty cache that re-optimizes
every query from base tables).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel, SimpleCostModel
from repro.errors import WorkloadError
from repro.optimizer.base import Optimizer, QuerySpec
from repro.workload.vecache import VECache

__all__ = [
    "WorkloadQuery",
    "MPFWorkload",
    "cache_objective",
    "baseline_objective",
]


@dataclass(frozen=True)
class WorkloadQuery:
    """One workload member: a single-variable MPF query + probability."""

    variable: str
    probability: float
    selection: Mapping[str, object] | None = None
    """Optional equality predicate on the query variable (restricted
    answer) or on other variables (constrained domain)."""

    def __post_init__(self):
        if not 0 <= self.probability <= 1:
            raise WorkloadError(
                f"probability {self.probability} outside [0, 1]"
            )


@dataclass
class MPFWorkload:
    """A distribution over single-variable MPF queries."""

    queries: list[WorkloadQuery] = field(default_factory=list)

    def __post_init__(self):
        total = sum(q.probability for q in self.queries)
        if total > 1 + 1e-9:
            raise WorkloadError(
                f"workload probabilities sum to {total} > 1"
            )

    @classmethod
    def uniform(cls, variables: Sequence[str]) -> "MPFWorkload":
        """Equal-probability workload over the given query variables."""
        if not variables:
            raise WorkloadError("empty workload")
        p = 1.0 / len(variables)
        return cls([WorkloadQuery(v, p) for v in variables])

    def variables(self) -> tuple[str, ...]:
        return tuple(q.variable for q in self.queries)

    def expected_cost(self, cost_of) -> float:
        """E[cost] under the workload distribution.

        ``cost_of`` maps a :class:`WorkloadQuery` to its evaluation
        cost.
        """
        return sum(q.probability * cost_of(q) for q in self.queries)


def cache_objective(
    cache: VECache,
    workload: MPFWorkload,
    materialization_weight: float = 1.0,
) -> float:
    """``C(S) + E[cost(Q(q, S))]`` for a VE-cache.

    ``C(S)`` is modeled as the total tuples materialized (one pass to
    build and write each cached table, up to constants);
    ``cost(Q(q, S))`` as the aggregate cost over the smallest cached
    table containing the query variable.
    """
    def cost_of(query: WorkloadQuery) -> float:
        return cache.query_cost(query.variable)

    return (
        materialization_weight * cache.total_tuples()
        + workload.expected_cost(cost_of)
    )


def baseline_objective(
    catalog: Catalog,
    view_tables: Sequence[str],
    workload: MPFWorkload,
    optimizer: Optimizer,
    model: CostModel | None = None,
) -> float:
    """Expected cost of answering every query from base tables.

    The no-cache alternative: each query is optimized and evaluated
    against the view definition directly (``C(S) = 0``).
    """
    model = model or SimpleCostModel()

    def cost_of(query: WorkloadQuery) -> float:
        spec = QuerySpec(
            tables=tuple(view_tables),
            query_vars=(query.variable,),
            selections=dict(query.selection or {}),
        )
        return optimizer.optimize(spec, catalog, model).cost

    return workload.expected_cost(cost_of)
