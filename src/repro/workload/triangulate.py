"""Triangulation of variable graphs (Algorithm 6).

Eliminating a vertex connects all of its remaining neighbors and
removes it; the edges added ("fill-in") make the graph chordal.  Each
elimination step defines a clique — the vertex plus its neighbors at
elimination time — and the maximal ones become the relations of the
junction-tree schema (Algorithm 5).

The order matters enormously: the minimum-induced-width order is
NP-complete to find (Theorem 9 / Yannakakis), so we support explicit
orders (the paper's Figure 14 uses ``tid, sid``) and the standard
min-fill / min-degree greedy heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from repro.errors import WorkloadError

__all__ = ["TriangulationResult", "triangulate", "elimination_cliques"]


@dataclass
class TriangulationResult:
    """Chordal graph plus the artifacts the junction tree needs."""

    chordal_graph: nx.Graph
    order: tuple[str, ...]
    fill_edges: tuple[tuple[str, str], ...]
    cliques: tuple[frozenset[str], ...]
    """Elimination cliques ({v} ∪ neighbors at elimination), in order."""

    @property
    def maximal_cliques(self) -> tuple[frozenset[str], ...]:
        """Elimination cliques not contained in another (dedup included)."""
        out: list[frozenset[str]] = []
        for clique in sorted(self.cliques, key=len, reverse=True):
            if not any(clique <= kept for kept in out):
                out.append(clique)
        return tuple(out)

    @property
    def induced_width(self) -> int:
        """Largest clique size minus one."""
        return max((len(c) for c in self.cliques), default=1) - 1


def _next_vertex(work: nx.Graph, heuristic: str) -> str:
    if heuristic == "min_degree":
        return min(sorted(work.nodes), key=lambda v: work.degree(v))
    if heuristic == "min_fill":
        def fill(v: str) -> int:
            neigh = list(work.neighbors(v))
            missing = 0
            for i, a in enumerate(neigh):
                for b in neigh[i + 1:]:
                    if not work.has_edge(a, b):
                        missing += 1
            return missing

        return min(sorted(work.nodes), key=fill)
    raise WorkloadError(f"unknown triangulation heuristic {heuristic!r}")


def triangulate(
    graph: nx.Graph,
    order: Sequence[str] | None = None,
    heuristic: str = "min_fill",
) -> TriangulationResult:
    """Algorithm 6: eliminate vertices, connecting their neighbors.

    ``order`` may be a partial prefix (like Figure 14's ``tid, sid``);
    remaining vertices are chosen by ``heuristic``.
    """
    work = graph.copy()
    chordal = graph.copy()
    pending = list(order or ())
    unknown = [v for v in pending if v not in graph]
    if unknown:
        raise WorkloadError(f"order mentions unknown vertices {unknown}")

    final_order: list[str] = []
    fill_edges: list[tuple[str, str]] = []
    cliques: list[frozenset[str]] = []

    while work.number_of_nodes():
        if pending:
            v = pending.pop(0)
            if v not in work:
                raise WorkloadError(f"vertex {v!r} given twice in order")
        else:
            v = _next_vertex(work, heuristic)
        neighbors = list(work.neighbors(v))
        cliques.append(frozenset([v, *neighbors]))
        for i, a in enumerate(neighbors):
            for b in neighbors[i + 1:]:
                if not work.has_edge(a, b):
                    work.add_edge(a, b)
                    chordal.add_edge(a, b)
                    fill_edges.append((a, b))
        work.remove_node(v)
        final_order.append(v)

    return TriangulationResult(
        chordal_graph=chordal,
        order=tuple(final_order),
        fill_edges=tuple(fill_edges),
        cliques=tuple(cliques),
    )


def elimination_cliques(
    graph: nx.Graph, order: Sequence[str]
) -> tuple[frozenset[str], ...]:
    """Just the cliques induced by a full elimination order."""
    return triangulate(graph, order=order).cliques
