"""Belief Propagation as a semijoin program (Algorithm 4, Appendix A).

BP reduces each functional relation with respect to the others using
the product / update semijoins of Definition 6, so that afterwards
every relation satisfies the workload-correctness invariant
(Definition 5): an MPF query on any of its variables answered from the
local table equals the answer computed from the full view
(Theorem 6 / Pearl).

Two entry points:

* :func:`belief_propagation` — the *correct* program: messages flow
  only along a junction tree of the schema (collect toward a root with
  product semijoins, then distribute back with update semijoins).
  Requires the schema to be acyclic — Theorem 7 guarantees the tree
  exists exactly then — and raises :class:`AcyclicityError` otherwise,
  because running the program on a cyclic schema multiplies some
  measure in twice (the paper walks through this failure on the
  ``stdeals`` schema, Figure 12).

* :func:`bp_program_literal` — Algorithm 4 exactly as printed: one
  chosen table order, reductions between *all* pairs of relations that
  share variables.  On the chain-shaped supply-chain schema with the
  Figure 11 order this coincides with the junction-tree program; on
  cyclic schemas (or unsuitable orders) it double-counts — we keep it
  so tests can demonstrate the Figure 12 failure mode.

The backward pass needs semiring division; for division-free semirings
with idempotent multiplication (boolean), re-absorption is harmless and
the product semijoin is used instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce as _reduce
from typing import Mapping, Sequence

import networkx as nx

from repro.algebra.aggregate import marginalize
from repro.algebra.join import product_join
from repro.data.relation import FunctionalRelation
from repro.errors import AcyclicityError, MPFError, SemiringError, WorkloadError
from repro.plans.nodes import Scan, SemiJoin
from repro.plans.runtime import ExecutionContext, evaluate
from repro.semiring.base import Semiring
from repro.storage.iostats import IOStats
from repro.workload.graphs import junction_tree_of_schema

__all__ = [
    "BPStep",
    "BPFailure",
    "BPResult",
    "belief_propagation",
    "bp_program_literal",
    "satisfies_workload_invariant",
]


@dataclass(frozen=True)
class BPStep:
    """One semijoin-program step, e.g. ``ct ⋉* t`` (Figure 11)."""

    target: str
    source: str
    kind: str  # "product" (⋉*, forward) or "update" (⋉, backward)

    def __str__(self) -> str:
        symbol = "⋉*" if self.kind == "product" else "⋉"
        return f"{self.target} {symbol} {self.source}"


@dataclass(frozen=True)
class BPFailure:
    """One message that could not be delivered (``keep_going`` mode)."""

    step: BPStep
    error: MPFError

    def __str__(self) -> str:
        return f"{self.step}: {self.error}"


@dataclass
class BPResult:
    """Updated relations plus the program that produced them."""

    tables: dict[str, FunctionalRelation]
    program: list[BPStep] = field(default_factory=list)
    tree: nx.Graph | None = None
    stats: IOStats | None = None
    """Simulated IO of running the program through the runtime."""
    failures: list[BPFailure] = field(default_factory=list)
    """Messages skipped under ``keep_going=True``; empty on a clean run.

    A non-empty list means the workload invariant (Definition 5) is NOT
    restored for tables downstream of the failed messages — callers
    must check :attr:`ok` before trusting local answers.
    """

    @property
    def ok(self) -> bool:
        return not self.failures

    def program_listing(self) -> str:
        """Figure 11-style listing, one numbered step per line."""
        return "\n".join(
            f"{i + 1}. {step}" for i, step in enumerate(self.program)
        )


def _as_dict(
    relations: Sequence[FunctionalRelation] | Mapping[str, FunctionalRelation],
) -> dict[str, FunctionalRelation]:
    if isinstance(relations, Mapping):
        return dict(relations)
    out = {}
    for i, rel in enumerate(relations):
        out[rel.name or f"s{i}"] = rel
    if len(out) != len(relations):
        raise WorkloadError("relations must have unique names")
    return out


def _backward_kind(semiring: Semiring) -> str:
    """SemiJoin kind of the backward pass (idempotent-times fallback)."""
    if semiring.supports_division:
        return "update"
    if semiring.idempotent_times:
        return "product"
    raise SemiringError(
        f"semiring {semiring.name!r} supports neither division nor "
        "idempotent multiplication; BP's backward pass is undefined"
    )


def _step_key(index: int, step: BPStep) -> str:
    """Durable unit key: program position + message identity."""
    return f"bp.step:{index}:{step.target}<{step.source}:{step.kind}"


def _run_step(
    ctx: ExecutionContext,
    tables: dict[str, FunctionalRelation],
    step: BPStep,
    kind: str,
    failures: list[BPFailure] | None = None,
    journal=None,
    key: str | None = None,
) -> bool:
    """Execute one semijoin step through the runtime and rebind.

    Any :class:`MPFError` is attributed to the message (``step``) it
    interrupted.  With a ``failures`` list the error is recorded there
    and the step skipped (the target keeps its pre-message table) —
    except :class:`ResourceError`, which always propagates: once the
    query's deadline is blown or it is cancelled, every later message
    would fail the same way.

    ``journal``/``key`` make the step a durable resumable unit: a
    swallowed ``keep_going`` failure is recorded as an empty-tables
    unit (the ``bp.failures`` count lives inside its delta), so a
    resumed program skips it the same way.
    """
    from repro.errors import ResourceError

    def compute() -> dict[str, FunctionalRelation]:
        try:
            result = evaluate(
                SemiJoin(Scan(step.target), Scan(step.source), kind), ctx
            ).with_name(step.target)
        except MPFError as exc:
            exc.add_context(f"BP message {step}")
            ctx.count("bp.failures")
            if failures is None or isinstance(exc, ResourceError):
                raise
            failures.append(BPFailure(step=step, error=exc))
            return {}
        ctx.count("bp.messages", kind=step.kind)
        ctx.bind(step.target, result)
        return {step.target: result}

    if journal is None:
        produced = compute()
    else:
        produced = journal.run(key, ctx, compute)
    if step.target not in produced:
        return False
    tables[step.target] = produced[step.target]
    return True


def belief_propagation(
    relations: Sequence[FunctionalRelation] | Mapping[str, FunctionalRelation],
    semiring: Semiring,
    tree: nx.Graph | None = None,
    root: str | None = None,
    context: ExecutionContext | None = None,
    keep_going: bool = False,
    journal=None,
    workers: int = 1,
) -> BPResult:
    """Collect/distribute BP over a junction tree of the schema.

    ``tree`` may supply a precomputed junction tree (nodes are relation
    names); otherwise one is derived, and :class:`AcyclicityError` is
    raised when none exists (cyclic schema — run the Junction Tree
    algorithm first).  ``root`` defaults to the last relation, which on
    the supply-chain schema with its natural order reproduces the
    Figure 11 program exactly.

    Failures are attributed per message: an error raised while running
    step ``ct ⋉* t`` carries that step in its context.  With
    ``keep_going=True`` storage/query failures skip the affected
    message and are collected on :attr:`BPResult.failures` instead of
    aborting the program (resource errors — timeout, cancellation —
    still abort: they would fail every remaining message too).

    ``workers`` (used only when no ``context`` is passed) sizes the
    modeled scheduler pool.  Messages run through the runtime's
    table-writer dependency tracking: a message scanning a table
    rebound by an earlier message depends on its producer, so messages
    within one tree level that touch *different* targets overlap on
    the modeled clock while same-target chains stay serialized —
    results are identical for every worker count.
    """
    tables = _as_dict(relations)
    schema = {name: rel.var_names for name, rel in tables.items()}
    if tree is None:
        tree = junction_tree_of_schema(schema)
        if tree is None:
            raise AcyclicityError(
                "schema is cyclic: no spanning tree has the running "
                "intersection property (Theorem 7); build a junction "
                "tree (Algorithm 5) first"
            )
    names = list(tables)
    root = root or names[-1]
    if root not in tables:
        raise WorkloadError(f"unknown root table {root!r}")

    ctx = context or ExecutionContext({}, semiring, workers=workers)
    for name, rel in tables.items():
        ctx.bind(name, rel)
    backward = _backward_kind(semiring)
    program: list[BPStep] = []
    failures: list[BPFailure] = []
    failure_sink = failures if keep_going else None

    for component in nx.connected_components(tree):
        component_root = root if root in component else sorted(component)[0]
        ordered = list(nx.dfs_postorder_nodes(tree, source=component_root))
        parent_of = {
            child: parent
            for parent, child in nx.bfs_edges(tree, source=component_root)
        }

        # Collect: children before parents; parent absorbs child.
        for node in ordered:
            if node == component_root:
                continue
            step = BPStep(target=parent_of[node], source=node, kind="product")
            _run_step(
                ctx, tables, step, "product", failure_sink,
                journal=journal, key=_step_key(len(program), step),
            )
            program.append(step)

        # Distribute: parents before children; child absorbs parent.
        for node in nx.dfs_preorder_nodes(tree, source=component_root):
            if node == component_root:
                continue
            step = BPStep(target=node, source=parent_of[node], kind="update")
            _run_step(
                ctx, tables, step, backward, failure_sink,
                journal=journal, key=_step_key(len(program), step),
            )
            program.append(step)

    return BPResult(
        tables=tables, program=program, tree=tree, stats=ctx.stats,
        failures=failures,
    )


def bp_program_literal(
    relations: Sequence[FunctionalRelation] | Mapping[str, FunctionalRelation],
    semiring: Semiring,
    order: Sequence[str],
    context: ExecutionContext | None = None,
    keep_going: bool = False,
    journal=None,
    workers: int = 1,
) -> BPResult:
    """Algorithm 4 verbatim: all sharing pairs, given table order.

    No acyclicity check — this is the version the paper uses to show
    the double-counting failure on the cyclic ``stdeals`` schema
    (Figure 12).  Correct only when reductions between sharing pairs
    coincide with a junction-tree traversal (e.g. the chain schema of
    Figure 11).
    """
    tables = _as_dict(relations)
    order = list(order)
    if set(order) != set(tables):
        raise WorkloadError(
            f"order {order} must be a permutation of {sorted(tables)}"
        )
    scopes = {name: frozenset(rel.var_names) for name, rel in tables.items()}
    ctx = context or ExecutionContext({}, semiring, workers=workers)
    for name, rel in tables.items():
        ctx.bind(name, rel)
    backward = _backward_kind(semiring)
    program: list[BPStep] = []
    failures: list[BPFailure] = []
    failure_sink = failures if keep_going else None

    # Forward pass: each table absorbs every earlier sharing table.
    for j, name_j in enumerate(order):
        for name_i in order[:j]:
            if scopes[name_i] & scopes[name_j]:
                step = BPStep(target=name_j, source=name_i, kind="product")
                _run_step(
                    ctx, tables, step, "product", failure_sink,
                    journal=journal, key=_step_key(len(program), step),
                )
                program.append(step)

    # Backward pass: reverse order, each earlier table absorbs later.
    for j in range(len(order) - 1, -1, -1):
        name_j = order[j]
        for i in range(j - 1, -1, -1):
            name_i = order[i]
            if scopes[name_i] & scopes[name_j]:
                step = BPStep(target=name_i, source=name_j, kind="update")
                _run_step(
                    ctx, tables, step, backward, failure_sink,
                    journal=journal, key=_step_key(len(program), step),
                )
                program.append(step)

    return BPResult(
        tables=tables, program=program, tree=None, stats=ctx.stats,
        failures=failures,
    )


def satisfies_workload_invariant(
    updated: Mapping[str, FunctionalRelation],
    base_relations: Sequence[FunctionalRelation],
    semiring: Semiring,
    rtol: float = 1e-9,
) -> bool:
    """Check Definition 5 by brute force (test-sized inputs only).

    For every updated table and every variable it contains, the
    single-variable MPF query answered locally must match the one
    answered from the materialized view.
    """
    joint = _reduce(
        lambda a, b: product_join(a, b, semiring), base_relations
    )
    for table in updated.values():
        for v in table.var_names:
            local = marginalize(table, [v], semiring)
            expected = marginalize(joint, [v], semiring)
            if not local.equals(
                expected, semiring, ignore_zero_rows=True
            ):
                return False
    return True
