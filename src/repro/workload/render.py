"""Graphviz-DOT rendering of schema structures.

Text-only: produces DOT source for the paper's structural figures —
the variable graph (Figure 13), a chordal completion with its fill
edges dashed (Figure 14), and a junction tree with separator-labeled
edges (Figure 15) — so any Graphviz toolchain (or an online viewer)
can draw them.  No Graphviz dependency is required.
"""

from __future__ import annotations

import networkx as nx

from repro.workload.junction import JunctionTree
from repro.workload.triangulate import TriangulationResult

__all__ = ["variable_graph_dot", "triangulation_dot", "junction_tree_dot"]


def _quote(name: str) -> str:
    return '"' + str(name).replace('"', '\\"') + '"'


def variable_graph_dot(graph: nx.Graph, title: str = "variables") -> str:
    """DOT for a plain variable (or relation) graph."""
    lines = [f"graph {_quote(title)} {{", "  node [shape=circle];"]
    for node in sorted(graph.nodes):
        lines.append(f"  {_quote(node)};")
    for a, b in sorted(map(sorted, graph.edges)):
        lines.append(f"  {_quote(a)} -- {_quote(b)};")
    lines.append("}")
    return "\n".join(lines)


def triangulation_dot(
    result: TriangulationResult, title: str = "chordal"
) -> str:
    """DOT for a chordal completion; fill-in edges are dashed.

    The Figure 14 rendering: the original cycle solid, the edges added
    by eliminating (e.g.) tid and sid dashed.
    """
    fills = {frozenset(e) for e in result.fill_edges}
    graph = result.chordal_graph
    lines = [f"graph {_quote(title)} {{", "  node [shape=circle];"]
    for node in sorted(graph.nodes):
        lines.append(f"  {_quote(node)};")
    for a, b in sorted(map(sorted, graph.edges)):
        style = ' [style=dashed]' if frozenset((a, b)) in fills else ""
        lines.append(f"  {_quote(a)} -- {_quote(b)}{style};")
    lines.append("}")
    return "\n".join(lines)


def junction_tree_dot(jt: JunctionTree, title: str = "junction_tree") -> str:
    """DOT for a junction tree: box nodes show clique scopes, edge
    labels show separators (the Figure 15 rendering)."""
    lines = [f"graph {_quote(title)} {{", "  node [shape=box];"]
    for name in sorted(jt.cliques):
        scope = ", ".join(jt.cliques[name].var_names)
        lines.append(f"  {_quote(name)} [label={_quote(scope)}];")
    for a, b in sorted(map(sorted, jt.tree.edges)):
        scope_a = set(jt.cliques[a].var_names)
        scope_b = set(jt.cliques[b].var_names)
        separator = ", ".join(sorted(scope_a & scope_b))
        lines.append(
            f"  {_quote(a)} -- {_quote(b)} [label={_quote(separator)}];"
        )
    lines.append("}")
    return "\n".join(lines)
