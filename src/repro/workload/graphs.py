"""Schema graphs and acyclicity (Theorems 7 & 8, Appendix A).

Two graph views of a schema ``{table: variables}``:

* the **relation graph** (Theorem 7 / Maier): nodes are relations, an
  edge joins two relations sharing variables.  The schema is acyclic
  iff some spanning tree has the *running intersection property* —
  for any two relations, their shared variables appear in every
  relation on the tree path between them.  Such a tree is a **junction
  tree**; the maximum-weight spanning tree (weights = |shared
  variables|) has the property whenever any tree does.

* the **variable graph** (Theorem 8 / Jensen; the "primal" or "moral"
  graph): nodes are variables, an edge joins co-occurring variables.
  The schema is acyclic iff this graph is chordal *and* every relation
  scope is covered (conformality) — the α-acyclicity
  characterization, equivalently testable by GYO ear reduction.

The supply-chain schema of Figure 1 is acyclic; adding ``stdeals``
creates the chordless 5-cycle of Figure 13/14 and breaks it.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import networkx as nx

__all__ = [
    "relation_graph",
    "variable_graph",
    "maximum_weight_spanning_tree",
    "has_running_intersection",
    "junction_tree_of_schema",
    "is_acyclic_schema",
    "gyo_reduction",
]

Schema = Mapping[str, Iterable[str]]


def _scopes(schema: Schema) -> dict[str, frozenset[str]]:
    return {name: frozenset(vars_) for name, vars_ in schema.items()}


def relation_graph(schema: Schema) -> nx.Graph:
    """Nodes = relations; edge iff two relations share variables.

    Edge attribute ``shared`` holds the shared variable set and
    ``weight`` its size (for the spanning-tree computation).
    """
    scopes = _scopes(schema)
    graph = nx.Graph()
    graph.add_nodes_from(scopes)
    names = list(scopes)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            shared = scopes[a] & scopes[b]
            if shared:
                graph.add_edge(a, b, shared=shared, weight=len(shared))
    return graph


def variable_graph(schema: Schema) -> nx.Graph:
    """Nodes = variables; edge iff two variables co-occur in a relation."""
    graph = nx.Graph()
    for vars_ in schema.values():
        vars_ = list(vars_)
        graph.add_nodes_from(vars_)
        for i, a in enumerate(vars_):
            for b in vars_[i + 1:]:
                graph.add_edge(a, b)
    return graph


def maximum_weight_spanning_tree(graph: nx.Graph) -> nx.Graph:
    """Max-weight spanning forest of the relation graph."""
    return nx.maximum_spanning_tree(graph, weight="weight")


def has_running_intersection(tree: nx.Graph, schema: Schema) -> bool:
    """Check the running intersection property on a candidate tree.

    For every pair of relations, their shared variables must be
    contained in every relation on the (unique) tree path between them.
    """
    scopes = _scopes(schema)
    names = list(scopes)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            shared = scopes[a] & scopes[b]
            if not shared:
                continue
            if a not in tree or b not in tree:
                return False
            if not nx.has_path(tree, a, b):
                return False
            for node in nx.shortest_path(tree, a, b):
                if not shared <= scopes[node]:
                    return False
    return True


def junction_tree_of_schema(schema: Schema) -> nx.Graph | None:
    """The junction tree of an acyclic schema, or None if cyclic.

    Builds the maximum-weight spanning tree of the relation graph and
    verifies running intersection; for disconnected schemas the
    "tree" is a forest and components are checked independently.
    """
    graph = relation_graph(schema)
    tree = maximum_weight_spanning_tree(graph)
    tree.add_nodes_from(graph.nodes)
    if _has_running_intersection_componentwise(tree, schema):
        return tree
    return None


def _has_running_intersection_componentwise(
    tree: nx.Graph, schema: Schema
) -> bool:
    scopes = _scopes(schema)
    names = list(scopes)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            shared = scopes[a] & scopes[b]
            if not shared:
                continue
            if not nx.has_path(tree, a, b):
                # Sharing relations in different components: the MST
                # dropped a needed edge, impossible for a real forest.
                return False
            for node in nx.shortest_path(tree, a, b):
                if not shared <= scopes[node]:
                    return False
    return True


def gyo_reduction(schema: Schema) -> list[frozenset[str]]:
    """GYO ear reduction; returns the irreducible residue.

    Repeatedly (a) drops variables occurring in a single relation and
    (b) drops relations contained in another.  The schema is
    α-acyclic iff the residue is empty.
    """
    scopes = [set(v) for v in _scopes(schema).values()]
    changed = True
    while changed and scopes:
        changed = False
        # (a) remove variables unique to one scope
        counts: dict[str, int] = {}
        for scope in scopes:
            for v in scope:
                counts[v] = counts.get(v, 0) + 1
        for scope in scopes:
            lonely = {v for v in scope if counts[v] == 1}
            if lonely:
                scope -= lonely
                changed = True
        # (b) remove scopes contained in another
        scopes.sort(key=len)
        kept: list[set[str]] = []
        for i, scope in enumerate(scopes):
            contained = any(
                scope <= other for other in scopes[i + 1:]
            ) or any(scope <= other for other in kept)
            if contained or not scope:
                changed = True
            else:
                kept.append(scope)
        scopes = kept
    return [frozenset(s) for s in scopes]


def is_acyclic_schema(schema: Schema) -> bool:
    """α-acyclicity via GYO reduction (agrees with Theorems 7 & 8)."""
    return not gyo_reduction(schema)
