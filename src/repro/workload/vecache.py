"""VE-cache: materialized views for MPF workloads (Algorithm 3, §6).

Given an MPF view, VE-cache builds a set ``S`` of materialized tables
satisfying the workload-correctness invariant (Definition 5): any
single-variable basic or restricted-answer MPF query can be answered
from a cached table containing that variable, with the same result as
evaluating against the full view.

The construction follows Algorithm 3 literally:

1. derive a *no-query-variable* Variable Elimination order (line 1);
2. execute the VE plan at the data level, materializing every table
   that precedes a GroupBy node — the pre-aggregation join of
   ``rels(v, S)`` for each eliminated variable ``v`` (line 2).  These
   tables are the elimination cliques of triangulating the variable
   graph with the VE order (Theorem 10.1), and the message edges
   ("GroupBy(t_i) was used to create t_j") form a junction forest
   over them (Theorem 10.2);
3. run the backward pass (lines 3–7): in reverse creation order, every
   cached table absorbs, via the update semijoin, the table its
   GroupBy message fed — a BP distribute pass (Theorem 10.3).  The
   forward/collect pass already happened implicitly while executing
   the VE plan.

After calibration each cached table equals the view marginalized to
its scope, which is the invariant (Theorem 4).  The cache also
supports the *constrained-domain* protocol of Section 6 (Theorem 5):
apply a selection to one cached table containing the constrained
variable, then propagate reductions along the forest to every other
table (:meth:`VECache.absorb_evidence`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import networkx as nx

from repro.catalog.catalog import Catalog
from repro.data.relation import FunctionalRelation
from repro.errors import MPFError, SemiringError, WorkloadError
from repro.optimizer.base import QuerySpec
from repro.optimizer.ve import VariableElimination
from repro.plans.nodes import GroupBy, PlanNode, ProductJoin, Scan, Select, SemiJoin
from repro.plans.runtime import ExecutionContext, evaluate
from repro.semiring.base import Semiring
from repro.storage.page import PageGeometry
from repro.workload.graphs import variable_graph
from repro.workload.triangulate import triangulate

__all__ = ["VECache", "build_ve_cache"]


def _reduce_kind(semiring: Semiring) -> str:
    """SemiJoin kind for the backward (calibration) message."""
    if semiring.supports_division:
        return "update"
    if semiring.idempotent_times:
        return "product"
    raise SemiringError(
        f"semiring {semiring.name!r} supports neither division nor "
        "idempotent multiplication; VE-cache calibration is undefined"
    )


def _join_chain(names: Sequence[str]) -> PlanNode:
    """Left-deep ProductJoin plan over named (bound) relations."""
    plan: PlanNode = Scan(names[0])
    for name in names[1:]:
        plan = ProductJoin(plan, Scan(name))
    return plan


def _unit(journal, key: str, ctx: ExecutionContext, compute):
    """Run one resumable unit through ``journal`` (or directly)."""
    if journal is None:
        return compute()
    return journal.run(key, ctx, compute)


@dataclass
class VECache:
    """A calibrated cache of materialized functional relations.

    ``tables`` hold every cached (pre-GroupBy) table after the backward
    pass; ``forest`` connects each table to the one its GroupBy message
    fed (the junction forest of Theorem 10).
    """

    tables: dict[str, FunctionalRelation]
    forest: nx.Graph
    semiring: Semiring
    elimination_order: tuple[str, ...]
    eliminated_by: dict[str, str] = field(default_factory=dict)
    """Cached-table name → the variable whose elimination created it."""
    base_step: dict[str, str] = field(default_factory=dict)
    """Base-relation name → the cached table that absorbed it."""
    base_relations: dict[str, FunctionalRelation] = field(default_factory=dict)
    """Current (possibly hypothetically updated) base relations."""
    context: ExecutionContext | None = None
    """Runtime context the cache executes through; its ``stats`` hold
    the simulated IO of building and serving this cache."""

    # ------------------------------------------------------------------
    # Runtime plumbing
    # ------------------------------------------------------------------
    def runtime(self) -> ExecutionContext:
        """The cache's execution context, with all tables bound."""
        if self.context is None:
            self.context = ExecutionContext(
                dict(self.tables), self.semiring
            )
        for name, rel in self.tables.items():
            if self.context.env.get(name) is not rel:
                self.context.bind(name, rel)
        return self.context

    @property
    def io_stats(self):
        """Cumulative simulated IO of this cache's runtime context."""
        return self.runtime().stats

    def _derived_context(
        self, tables: Mapping[str, FunctionalRelation]
    ) -> ExecutionContext:
        """Fresh context over ``tables``, sharing pool and metrics."""
        pool = self.context.pool if self.context is not None else None
        metrics = self.context.metrics if self.context is not None else None
        return ExecutionContext(
            dict(tables), self.semiring, pool=pool, metrics=metrics
        )

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def table_for(self, var_name: str) -> str:
        """Smallest cached table containing the variable."""
        candidates = [
            name
            for name, rel in self.tables.items()
            if var_name in rel.variables
        ]
        if not candidates:
            raise WorkloadError(f"no cached table contains {var_name!r}")
        return min(candidates, key=lambda n: (self.tables[n].ntuples, n))

    def answer(
        self,
        var_name: str,
        selection: Mapping[str, object] | None = None,
    ) -> FunctionalRelation:
        """Answer a single-variable basic / restricted-answer MPF query.

        ``selection``, if given, must be on the query variable itself
        (the restricted-answer form).  Constrained-domain queries go
        through :meth:`absorb_evidence` first.
        """
        if selection:
            stray = set(selection) - {var_name}
            if stray:
                raise WorkloadError(
                    f"selection on non-query variables {sorted(stray)}: use "
                    "absorb_evidence() (constrained-domain protocol) first"
                )
        plan: PlanNode = GroupBy(Scan(self.table_for(var_name)), [var_name])
        if selection:
            plan = Select(plan, dict(selection))
        # Through the shared runtime: the aggregate pays a scan of the
        # cached table, and exact repeats hit the context memo.
        return evaluate(plan, self.runtime())

    def absorb_evidence(self, evidence: Mapping[str, object]) -> "VECache":
        """Constrained-domain protocol (Theorem 5): returns a new cache.

        The selection is applied to one cached table per evidence
        variable; reductions then flow along the junction forest from
        that table to every other, restoring the invariant under the
        constrained domain.
        """
        tables = dict(self.tables)
        ctx = self._derived_context(tables)
        kind = _reduce_kind(self.semiring)
        for var_name, value in evidence.items():
            ctx.count("vecache.evidence_absorptions")
            start = min(
                (
                    name
                    for name, rel in tables.items()
                    if var_name in rel.variables
                ),
                key=lambda n: (tables[n].ntuples, n),
                default=None,
            )
            if start is None:
                raise WorkloadError(
                    f"no cached table contains evidence variable {var_name!r}"
                )
            old_total = self.semiring.reduce(tables[start].measure)
            try:
                tables[start] = evaluate(
                    Select(Scan(start), {var_name: value}), ctx
                )
            except MPFError as exc:
                exc.add_context(
                    f"evidence selection {var_name}={value!r} on {start}"
                )
                raise
            ctx.bind(start, tables[start])
            for parent, child in nx.bfs_edges(self.forest, source=start):
                try:
                    tables[child] = evaluate(
                        SemiJoin(Scan(child), Scan(parent), kind), ctx
                    )
                except MPFError as exc:
                    exc.add_context(
                        f"evidence message {parent} → {child} "
                        f"(variable {var_name!r})"
                    )
                    raise
                ctx.bind(child, tables[child])
            # Tables in *other* connected components never see the
            # message flow, yet Definition 5 against the restricted
            # view requires their mass to scale by the evidence
            # component's total-mass change.
            component = nx.node_connected_component(self.forest, start)
            outside = [n for n in tables if n not in component]
            if outside:
                new_total = self.semiring.reduce(tables[start].measure)
                if self.semiring.supports_division:
                    factor = self.semiring.divide(new_total, old_total)
                else:
                    # Idempotent times (boolean): re-absorbing the new
                    # total directly is exact; old_total was the
                    # multiplicative identity of a consistent cache.
                    factor = new_total
                for name in outside:
                    rel = tables[name]
                    ctx.stats.charge_cpu(rel.ntuples)
                    tables[name] = rel.with_measure(
                        self.semiring.times(rel.measure, factor)
                    )
                    ctx.bind(name, tables[name])
        return VECache(
            tables=tables,
            forest=self.forest,
            semiring=self.semiring,
            elimination_order=self.elimination_order,
            eliminated_by=self.eliminated_by,
            base_step=self.base_step,
            base_relations=self.base_relations,
            context=ctx,
        )

    # ------------------------------------------------------------------
    # Hypothetical queries (Section 3.1's alternate-measure form)
    # ------------------------------------------------------------------
    def with_alternate_measure(
        self,
        base_table: str,
        assignment: Mapping[str, object],
        new_value,
    ) -> "VECache":
        """Incrementally recalibrate for a hypothetical measure change.

        Instead of rebuilding the whole cache against the patched base
        relation, the multiplicative patch ``new / old`` is applied to
        the one cached table that absorbed the base relation, and the
        change is propagated along the junction forest — the same
        distribute pass the constrained-domain protocol uses.  Requires
        semiring division.
        """
        from repro.algebra.hypothetical import (
            alter_measure,
            apply_patch,
            measure_ratio_relation,
        )

        if base_table not in self.base_step:
            raise WorkloadError(
                f"unknown base table {base_table!r}; cache covers "
                f"{sorted(self.base_step)}"
            )
        base = self.base_relations[base_table]
        patch = measure_ratio_relation(
            base, assignment, new_value, self.semiring
        )
        step = self.base_step[base_table]
        tables = dict(self.tables)
        ctx = self._derived_context(tables)
        kind = _reduce_kind(self.semiring)
        ctx.stats.charge_cpu(tables[step].ntuples)
        tables[step] = apply_patch(tables[step], patch, self.semiring)
        ctx.bind(step, tables[step])
        for parent, child in nx.bfs_edges(self.forest, source=step):
            tables[child] = evaluate(
                SemiJoin(Scan(child), Scan(parent), kind), ctx
            )
            ctx.bind(child, tables[child])
        base_relations = dict(self.base_relations)
        base_relations[base_table] = alter_measure(
            base, assignment, new_value
        )
        return VECache(
            tables=tables,
            forest=self.forest,
            semiring=self.semiring,
            elimination_order=self.elimination_order,
            eliminated_by=self.eliminated_by,
            base_step=self.base_step,
            base_relations=base_relations,
            context=ctx,
        )

    def refresh(
        self, base_table: str, new_relation: FunctionalRelation
    ) -> "VECache":
        """View maintenance: replace one base relation and recalibrate.

        Row insertions/deletions are not expressible as multiplicative
        patches (a created row divides by the additive identity), so
        maintenance rebuilds the cache — reusing the stored elimination
        order, which keeps the cached-table scopes stable so downstream
        consumers see the same schema.
        """
        if base_table not in self.base_relations:
            raise WorkloadError(
                f"unknown base table {base_table!r}; cache covers "
                f"{sorted(self.base_relations)}"
            )
        relations = [
            new_relation.with_name(name) if name == base_table else rel
            for name, rel in self.base_relations.items()
        ]
        return build_ve_cache(
            relations, self.semiring, order=list(self.elimination_order)
        )

    # ------------------------------------------------------------------
    # Costing (the C(S) term of the MPF Workload Problem)
    # ------------------------------------------------------------------
    def total_tuples(self) -> int:
        return sum(rel.ntuples for rel in self.tables.values())

    def total_pages(self) -> int:
        return sum(
            PageGeometry(rel.arity).pages_for(rel.ntuples)
            for rel in self.tables.values()
        )

    def query_cost(self, var_name: str) -> float:
        """Scan + aggregate cost of answering a query from the cache."""
        import math

        table = self.tables[self.table_for(var_name)]
        n = max(table.ntuples, 2)
        return n * math.log2(n)

    def maximal_tables(self) -> dict[str, FunctionalRelation]:
        """Cached tables whose scope is not contained in another's.

        The paper's running example reports only these (t1, t2, t3);
        subsumed tables remain available for propagation.
        """
        scopes = {n: frozenset(r.var_names) for n, r in self.tables.items()}
        out = {}
        for name, scope in scopes.items():
            if not any(
                scope < other or (scope == other and name > other_name)
                for other_name, other in scopes.items()
                if other_name != name
            ):
                out[name] = self.tables[name]
        return out


@dataclass
class _Step:
    name: str
    children: list[str]
    variable: str


def build_ve_cache(
    relations: Sequence[FunctionalRelation],
    semiring: Semiring,
    heuristic: str = "degree",
    order: Sequence[str] | None = None,
    context: ExecutionContext | None = None,
    journal=None,
) -> VECache:
    """Algorithm 3 end to end, executed through the physical runtime.

    ``order`` overrides step 1 with an explicit (possibly partial)
    elimination order — the triangulation min-fill heuristic completes
    it; otherwise a no-query-variable VE pass with ``heuristic``
    derives it.  Works on cyclic schemas too: executing VE *is* the
    Junction Tree transformation (Theorem 10.1-2).

    ``context`` supplies the execution environment (buffer pool, stats
    clock); the engine passes its catalog-backed context so base-table
    scans go through the shared buffer pool.  The materialization runs
    as small plans — each elimination's pre-aggregation join, then a
    GroupBy over it whose join input comes from the runtime memo — so
    cache construction pays simulated IO like any query.

    ``journal`` (a :class:`~repro.storage.journal.StepJournal`) makes
    construction resumable: each elimination step, scalar patch, and
    calibration message is one durable unit — units already on the WAL
    are skipped, rebinding their recorded tables instead of recomputing.
    """
    relations = list(relations)
    if not relations:
        raise WorkloadError("VE-cache over an empty view")

    schema = {
        (r.name or f"s{i}"): r.var_names for i, r in enumerate(relations)
    }
    if order is None:
        catalog = Catalog()
        names = catalog.register_all([r.copy() for r in relations])
        spec = QuerySpec(tables=tuple(names), query_vars=())
        ve = VariableElimination(heuristic)
        result = ve.optimize(spec, catalog)
        order = list(result.extras["elimination_order"])
    # Complete a partial order over all variables via triangulation.
    full_order = triangulate(variable_graph(schema), order=order).order

    ctx = context or ExecutionContext({}, semiring)
    base_names = {id(rel): (rel.name or f"s{i}")
                  for i, rel in enumerate(relations)}
    for rel in relations:
        ctx.bind(base_names[id(rel)], rel)
    reserved = set(schema)

    def step_name(i: int) -> str:
        name = f"t{i}"
        return name if name not in reserved else f"vecache_t{i}"

    # ------------------------------------------------------------------
    # Line 2: execute the no-query-variable VE plan, caching the table
    # preceding each GroupBy, and recording message edges.
    # ------------------------------------------------------------------
    work: list[tuple[str, str | None]] = [
        (base_names[id(rel)], None) for rel in relations
    ]
    steps: list[_Step] = []
    base_step: dict[str, str] = {}

    for v in full_order:
        chosen = [(n, src) for n, src in work if v in ctx.env[n].variables]
        if not chosen:
            continue
        rest = [(n, src) for n, src in work if v not in ctx.env[n].variables]
        name = step_name(len(steps) + 1)
        join_plan = _join_chain([n for n, _ in chosen])

        def compute_step(name=name, v=v, join_plan=join_plan):
            try:
                joined = evaluate(join_plan, ctx)
                keep = [x for x in joined.var_names if x != v]
                # The GroupBy's join input is served from the runtime
                # memo — the materialized table is not recomputed.
                message = evaluate(GroupBy(join_plan, keep), ctx)
            except MPFError as exc:
                exc.add_context(
                    f"VE-cache step {name} (eliminating {v!r})"
                )
                raise
            ctx.bind(name, joined.with_name(name))
            ctx.bind(f"{name}.msg", message.with_name(f"{name}.msg"))
            ctx.count("vecache.steps")
            return {name: ctx.env[name], f"{name}.msg": ctx.env[f"{name}.msg"]}

        _unit(journal, f"vecache.step:{name}:{v}", ctx, compute_step)

        children = [src for _, src in chosen if src is not None]
        for n, src in chosen:
            if src is None:
                base_step[n] = name
        steps.append(_Step(name=name, children=children, variable=v))
        work = rest + [(f"{name}.msg", name)]

    if not steps:
        raise WorkloadError("view has no variables to cache over")
    if ctx.metrics is not None:
        ctx.metrics.gauge("vecache.tables").set(len(steps))

    # Leftover zero-variable messages hold the total mass of finished
    # connected components; their info must reach the other components
    # for the invariant to hold against the *full* view.
    forest = nx.Graph()
    forest.add_nodes_from(s.name for s in steps)
    for step in steps:
        for child in step.children:
            forest.add_edge(step.name, child)
    components = list(nx.connected_components(forest))
    if len(components) > 1:
        scalars: dict[frozenset, str] = {}
        for n, src in work:
            if ctx.env[n].arity == 0 and src is not None:
                component = frozenset(
                    next(c for c in components if src in c)
                )
                scalars[component] = n
        for step in steps:
            component = frozenset(
                next(c for c in components if step.name in c)
            )
            for other, scalar_name in scalars.items():
                if other != component:

                    def compute_scalar(step=step, scalar_name=scalar_name):
                        patched = evaluate(
                            ProductJoin(Scan(step.name), Scan(scalar_name)),
                            ctx,
                        )
                        ctx.bind(step.name, patched.with_name(step.name))
                        return {step.name: ctx.env[step.name]}

                    _unit(
                        journal,
                        f"vecache.scalar:{step.name}:{scalar_name}",
                        ctx,
                        compute_scalar,
                    )

    # ------------------------------------------------------------------
    # Lines 3-7: backward update-semijoin pass, last created first.
    # ------------------------------------------------------------------
    kind = _reduce_kind(semiring)
    for step in reversed(steps):
        for child in step.children:

            def compute_calibrate(step=step, child=child):
                try:
                    updated = evaluate(
                        SemiJoin(Scan(child), Scan(step.name), kind), ctx
                    )
                except MPFError as exc:
                    exc.add_context(
                        f"VE-cache calibration message {step.name} → {child}"
                    )
                    raise
                ctx.bind(child, updated.with_name(child))
                return {child: ctx.env[child]}

            _unit(
                journal,
                f"vecache.calibrate:{step.name}:{child}",
                ctx,
                compute_calibrate,
            )

    eliminated_by = {s.name: s.variable for s in steps}
    return VECache(
        tables={s.name: ctx.env[s.name] for s in steps},
        forest=forest,
        semiring=semiring,
        elimination_order=tuple(full_order),
        eliminated_by=eliminated_by,
        base_step=base_step,
        base_relations={
            base_names[id(rel)]: rel for rel in relations
        },
        context=ctx,
    )
