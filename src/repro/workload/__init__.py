"""MPF workload optimization (Section 6 + Appendix A)."""

from repro.workload.advisor import CacheCandidate, advise_cache
from repro.workload.bp import (
    BPFailure,
    BPResult,
    BPStep,
    belief_propagation,
    bp_program_literal,
    satisfies_workload_invariant,
)
from repro.workload.graphs import (
    gyo_reduction,
    has_running_intersection,
    is_acyclic_schema,
    junction_tree_of_schema,
    maximum_weight_spanning_tree,
    relation_graph,
    variable_graph,
)
from repro.workload.junction import JunctionTree, build_junction_tree
from repro.workload.render import (
    junction_tree_dot,
    triangulation_dot,
    variable_graph_dot,
)
from repro.workload.triangulate import (
    TriangulationResult,
    elimination_cliques,
    triangulate,
)
from repro.workload.vecache import VECache, build_ve_cache
from repro.workload.workload import (
    MPFWorkload,
    WorkloadQuery,
    baseline_objective,
    cache_objective,
)

__all__ = [
    "advise_cache",
    "CacheCandidate",
    "relation_graph",
    "variable_graph",
    "maximum_weight_spanning_tree",
    "has_running_intersection",
    "junction_tree_of_schema",
    "is_acyclic_schema",
    "gyo_reduction",
    "TriangulationResult",
    "triangulate",
    "elimination_cliques",
    "JunctionTree",
    "build_junction_tree",
    "BPStep",
    "BPFailure",
    "BPResult",
    "belief_propagation",
    "bp_program_literal",
    "satisfies_workload_invariant",
    "VECache",
    "build_ve_cache",
    "MPFWorkload",
    "WorkloadQuery",
    "baseline_objective",
    "cache_objective",
    "variable_graph_dot",
    "triangulation_dot",
    "junction_tree_dot",
]
