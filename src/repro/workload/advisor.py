"""Cache advisor: choose the VE-cache that minimizes the workload
objective.

The MPF Workload Problem (Section 6) asks for the set ``S`` of
materialized views minimizing ``C(S) + E[cost(Q(q, S))]``.  The paper
contributes VE-cache as the *construction* for a correct ``S`` given an
elimination order; the *choice* among orders is left open.  This
advisor closes that loop with a direct search: build a candidate cache
per ordering heuristic (plus optional random restarts), score each
against the workload, and return the cheapest — a small, honest
extension labeled as such in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.data.relation import FunctionalRelation
from repro.errors import WorkloadError
from repro.semiring.base import Semiring
from repro.workload.vecache import VECache, build_ve_cache
from repro.workload.workload import MPFWorkload, cache_objective

__all__ = ["CacheCandidate", "advise_cache"]

_DEFAULT_HEURISTICS = ("degree", "width", "elim_cost")


@dataclass
class CacheCandidate:
    """One evaluated candidate: the cache, its provenance, its score."""

    cache: VECache
    label: str
    objective: float


def advise_cache(
    relations: Sequence[FunctionalRelation],
    semiring: Semiring,
    workload: MPFWorkload,
    heuristics: Sequence[str] = _DEFAULT_HEURISTICS,
    random_restarts: int = 0,
    materialization_weight: float = 1.0,
    seed: int = 0,
) -> tuple[VECache, list[CacheCandidate]]:
    """Pick the best VE-cache for a workload.

    Returns ``(best cache, all scored candidates)`` so callers can
    inspect the tradeoff.  ``random_restarts`` adds randomly ordered
    candidates (seeded, reproducible) on top of the heuristic ones.
    """
    relations = list(relations)
    if not relations:
        raise WorkloadError("advisor needs a non-empty view")
    candidates: list[CacheCandidate] = []

    for heuristic in heuristics:
        cache = build_ve_cache(relations, semiring, heuristic=heuristic)
        candidates.append(
            CacheCandidate(
                cache=cache,
                label=f"ve({heuristic})",
                objective=cache_objective(
                    cache, workload,
                    materialization_weight=materialization_weight,
                ),
            )
        )

    if random_restarts:
        import numpy as np

        variables = sorted(
            {v for rel in relations for v in rel.var_names}
        )
        rng = np.random.default_rng(seed)
        for i in range(random_restarts):
            order = list(rng.permutation(variables))
            cache = build_ve_cache(relations, semiring, order=order)
            candidates.append(
                CacheCandidate(
                    cache=cache,
                    label=f"random#{i}",
                    objective=cache_objective(
                        cache, workload,
                        materialization_weight=materialization_weight,
                    ),
                )
            )

    candidates.sort(key=lambda c: (c.objective, c.label))
    return candidates[0].cache, candidates
