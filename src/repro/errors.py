"""Exception hierarchy for the MPF query engine.

All library errors derive from :class:`MPFError` so callers can catch a
single base class at API boundaries.
"""

from __future__ import annotations


class MPFError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(MPFError):
    """A relation, variable, or domain was used inconsistently.

    Examples: joining relations whose shared variable names refer to
    different domains, or building a relation with mismatched column
    lengths.
    """


class FunctionalDependencyError(SchemaError):
    """The defining FD ``A1...Am -> f`` of a functional relation is violated.

    Raised when a relation contains two rows with identical variable
    values but different measure values.
    """


class SemiringError(MPFError):
    """A semiring operation is undefined or misused.

    Most commonly: requesting division (needed by the update semijoin of
    Definition 6) on a semiring that does not support it.
    """


class PlanError(MPFError):
    """An evaluation plan is malformed or cannot be executed."""


class OptimizationError(MPFError):
    """The optimizer could not produce a plan for the given query."""


class WorkloadError(MPFError):
    """A workload-optimization precondition failed.

    For example, running Belief Propagation directly on a cyclic schema,
    which the paper shows double-counts measures (Figure 12).
    """


class AcyclicityError(WorkloadError):
    """A schema required to be acyclic (junction-tree form) is not."""


class QueryError(MPFError):
    """An MPF query is malformed with respect to its view."""


class ParseError(QueryError):
    """The SQL-extension parser rejected the input text."""


class CatalogError(MPFError):
    """A catalog lookup failed (unknown table or variable)."""


class StorageError(MPFError):
    """The simulated storage layer was misused."""
