"""Exception hierarchy for the MPF query engine.

All library errors derive from :class:`MPFError` so callers can catch a
single base class at API boundaries.
"""

from __future__ import annotations


class MPFError(Exception):
    """Base class for all errors raised by this library.

    Errors may carry a ``context`` string naming the unit of work that
    failed (a BP message, a VE-cache elimination step, a junction-tree
    clique); layers attach it with :meth:`add_context` so a resource or
    storage fault deep inside a propagation surfaces as "which message
    died", not an opaque crash.
    """

    def __init__(self, *args):
        super().__init__(*args)
        self.context: str | None = None

    def add_context(self, text: str) -> "MPFError":
        """Prepend a work-unit description; returns self for re-raise."""
        self.context = text if self.context is None else f"{text}: {self.context}"
        return self

    def __str__(self) -> str:
        base = super().__str__()
        return f"[{self.context}] {base}" if self.context else base


class SchemaError(MPFError):
    """A relation, variable, or domain was used inconsistently.

    Examples: joining relations whose shared variable names refer to
    different domains, or building a relation with mismatched column
    lengths.
    """


class FunctionalDependencyError(SchemaError):
    """The defining FD ``A1...Am -> f`` of a functional relation is violated.

    Raised when a relation contains two rows with identical variable
    values but different measure values.
    """


class SemiringError(MPFError):
    """A semiring operation is undefined or misused.

    Most commonly: requesting division (needed by the update semijoin of
    Definition 6) on a semiring that does not support it.
    """


class PlanError(MPFError):
    """An evaluation plan is malformed or cannot be executed."""


class OptimizationError(MPFError):
    """The optimizer could not produce a plan for the given query."""


class WorkloadError(MPFError):
    """A workload-optimization precondition failed.

    For example, running Belief Propagation directly on a cyclic schema,
    which the paper shows double-counts measures (Figure 12).
    """


class AcyclicityError(WorkloadError):
    """A schema required to be acyclic (junction-tree form) is not."""


class QueryError(MPFError):
    """An MPF query is malformed with respect to its view."""


class ParseError(QueryError):
    """The SQL-extension parser rejected the input text."""


class CatalogError(MPFError):
    """A catalog lookup failed (unknown table or variable)."""


class StorageError(MPFError):
    """The simulated storage layer was misused or failed."""


class TransientStorageError(StorageError):
    """A page read failed in a retryable way (simulated flaky IO).

    The runtime retries these with capped exponential backoff, within
    the :class:`~repro.plans.guard.QueryGuard`'s retry budget; only
    when the budget is exhausted does the error escape to the caller.
    """


class PermanentStorageError(StorageError):
    """A page is unreadable and retrying cannot help (bad block)."""


class RecoveryError(StorageError):
    """Durable state (WAL / checkpoint) could not be restored.

    Raised when a checkpoint file fails its checksum or structural
    validation, a page image is torn, or a recovery directory is
    missing.  A torn WAL *tail* is not an error — replay truncates at
    the first invalid record, which is the expected shape of a crash
    mid-append.
    """


class WorkerError(MPFError):
    """A scheduled task could not be completed by the worker pool.

    Raised by the fault-tolerant task runtime when a task exhausts its
    retry budget (or hangs with no detection mechanism configured) and
    graceful degradation to serial re-execution is disabled.  Worker
    faults are infrastructure failures, not query errors: the same
    task re-run on a healthy worker would succeed, which is why the
    default policy degrades instead of raising this.
    """


class OverloadError(MPFError):
    """A request was shed by the serving runtime's admission control.

    Raised (or attached to a request outcome) when a multi-tenant
    serving runtime refuses work it cannot complete within policy: the
    tenant's token bucket is empty (``reason="rate"``), its bounded
    queue is full and the request lost the priority comparison
    (``reason="queue_full"``), a queued request was evicted by a
    higher-priority arrival (``reason="evicted"``), the propagated
    deadline was already blown while the request waited in queue
    (``reason="deadline"``), or the server is draining for shutdown
    (``reason="draining"``).

    Shedding is *not* a query error: the identical request would
    succeed on an unloaded server.  It gets its own CLI exit code (10)
    so drivers can distinguish "retry later with backoff" from every
    failure family that retrying cannot help.
    """

    def __init__(self, message: str, reason: str = "overload"):
        super().__init__(message)
        self.reason = reason


class ResourceError(MPFError):
    """A query exceeded a resource bound set by its QueryGuard.

    Raised cooperatively at operator / row-batch granularity, so the
    failing query stops within one batch of crossing the limit and
    never publishes partial results to the runtime memo.
    """


class QueryTimeout(ResourceError):
    """The guard's wall-clock deadline or simulated cost budget passed."""


class MemoryLimitExceeded(ResourceError):
    """Materialized intermediates crossed the guard's hard page ceiling."""


class QueryCancelled(ResourceError):
    """The guard's cooperative cancellation token was triggered."""
