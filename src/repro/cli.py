"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — generate the supply-chain schema, define the ``invest``
  MPF view, and run the paper's Section 3 example queries under every
  evaluation strategy;
* ``sql`` — execute MPF statements (from ``-c`` or a file) against a
  generated supply-chain database, printing results and plans;
* ``serve`` — deterministic multi-tenant serving soak: admission
  control, backpressure, load shedding, and snapshot-isolated reloads
  on a virtual clock (see ``docs/serving.md``);
* ``table2`` / ``table3`` — regenerate the paper's ordering-heuristics
  tables on the Section 7.3 synthetic views;
* ``inference`` — the Section 4 Bayesian-network walkthrough.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from collections import Counter

from repro.engine import Database
from repro.errors import (
    CatalogError,
    MPFError,
    OptimizationError,
    OverloadError,
    PlanError,
    QueryError,
    ResourceError,
    StorageError,
    WorkerError,
    WorkloadError,
)

# Exit-code families: scripts driving the CLI can tell *why* a run
# failed without parsing stderr.  2 is reserved for usage errors
# (argparse's own convention).
EXIT_OK = 0
EXIT_ERROR = 1        # any other MPFError
EXIT_USAGE = 2
EXIT_QUERY = 3        # malformed query / parse / unknown view
EXIT_RESOURCE = 4     # timeout, memory ceiling, cancellation
EXIT_STORAGE = 5      # storage faults (retry budget exhausted, bad block)
EXIT_WORKLOAD = 6     # workload-layer precondition failures
EXIT_PLAN = 7         # planning / optimization failures
EXIT_CRASH = 8        # simulated crash (--crash-at); resume with --resume
EXIT_WORKER = 9       # unrecoverable worker fault (degradation disabled)
EXIT_OVERLOAD = 10    # request(s) shed by serving admission control


def exit_code_for(exc: MPFError) -> int:
    """Map an error to its family's exit code (most specific first)."""
    if isinstance(exc, OverloadError):
        # Checked first: shedding means "retry later with backoff",
        # unlike every family below where retrying cannot help.
        return EXIT_OVERLOAD
    if isinstance(exc, WorkerError):
        return EXIT_WORKER
    if isinstance(exc, ResourceError):
        return EXIT_RESOURCE
    if isinstance(exc, StorageError):
        return EXIT_STORAGE
    if isinstance(exc, WorkloadError):
        return EXIT_WORKLOAD
    if isinstance(exc, (PlanError, OptimizationError)):
        return EXIT_PLAN
    if isinstance(exc, (QueryError, CatalogError)):
        return EXIT_QUERY
    return EXIT_ERROR

CREATE_INVEST = """
create mpfview invest as
  (select pid, sid, wid, cid, tid,
          measure = (* contracts.price, warehouses.w_factor,
                       transporters.t_overhead, location.quantity,
                       ctdeals.ct_discount)
   from contracts, warehouses, transporters, location, ctdeals
   where contracts.pid = location.pid and
         location.wid = warehouses.wid and
         warehouses.cid = ctdeals.cid and
         ctdeals.tid = transporters.tid)
"""


def _build_database(
    scale: float, seed: int, pool=None, metrics=None, workers: int = 1,
    partitions=None, task_policy=None, worker_faults=None,
    fuse_select_scan: bool = False, clock=None,
) -> Database:
    from repro.datagen import supply_chain

    sc = supply_chain(scale=scale, seed=seed)
    db = Database(pool=pool, metrics=metrics, workers=workers,
                  task_policy=task_policy, worker_faults=worker_faults,
                  fuse_select_scan=fuse_select_scan, clock=clock)
    for t in sc.tables:
        db.register(sc.catalog.relation(t))
    for table, key, shards in partitions or ():
        db.catalog.partition_table(table, key, shards)
    db.execute(CREATE_INVEST)
    return db


def _parse_partitions(specs):
    """Parse repeatable ``--partition TABLE=KEY:N`` flags.

    Returns ``[(table, key, shards), ...]``; raises ``ValueError`` with
    a usage message on a malformed spec.
    """
    parsed = []
    for spec in specs or ():
        table, eq, rest = spec.partition("=")
        key, colon, shards = rest.partition(":")
        if not (eq and colon and table and key):
            raise ValueError(
                f"--partition expects TABLE=KEY:N, got {spec!r}"
            )
        try:
            count = int(shards)
        except ValueError:
            raise ValueError(
                f"--partition expects an integer shard count, got {spec!r}"
            ) from None
        if count < 1:
            raise ValueError(
                f"--partition shard count must be >= 1, got {spec!r}"
            )
        parsed.append((table, key, count))
    return parsed


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_demo(args: argparse.Namespace) -> int:
    db = _build_database(args.scale, args.seed)
    print(f"supply chain @ scale {args.scale}; view `invest` defined\n")
    queries = [
        ("minimum investment per part",
         "select pid, min(inv) from invest group by pid"),
        ("total investment per warehouse",
         "select wid, sum(inv) from invest group by wid"),
        ("contractor exposure to transporter 1",
         "select cid, sum(inv) from invest where tid = 1 group by cid"),
    ]
    for title, sql in queries:
        print(f"-- {title}")
        print(f"   {sql}")
        report = db.execute(sql, strategy=args.strategy)
        rows = list(report.result.iter_rows())
        for row in rows[:5]:
            print(f"   {row[0]:>6} -> {row[1]:,.2f}")
        if len(rows) > 5:
            print(f"   ... {len(rows) - 5} more rows")
        opt = report.optimization
        print(
            f"   [{opt.algorithm}: est {opt.cost:.4g}, "
            f"{opt.plans_considered} plans, sim elapsed "
            f"{report.exec_stats.elapsed():.4g}]\n"
        )
    print("-- strategy comparison: select cid, sum(inv) ... group by cid")
    for strategy in ("cs", "cs+", "cs+nonlinear", "ve", "ve+"):
        report = db.execute(
            "select cid, sum(inv) from invest group by cid",
            strategy=strategy,
        )
        opt = report.optimization
        print(
            f"   {opt.algorithm:16s} est={opt.cost:12.4g} "
            f"sim={report.exec_stats.elapsed():12.4g}"
        )
    return 0


def _guard_from_args(args: argparse.Namespace, db: Database | None = None):
    """A QueryGuard from the CLI resource flags, or None when unset.

    With a ``db``, the guard is built by :meth:`Database.make_guard`
    so it inherits any clock injected into the engine (the serving
    soak and guard tests run deadlines on a controlled clock).
    """
    timeout = getattr(args, "timeout", None)
    memory_limit = getattr(args, "memory_limit", None)
    cost_budget = getattr(args, "cost_budget", None)
    if timeout is None and memory_limit is None and cost_budget is None:
        return None
    kwargs = dict(
        deadline_seconds=timeout,
        cost_budget=cost_budget,
        memory_limit_pages=memory_limit,
    )
    if db is not None:
        return db.make_guard(**kwargs)
    from repro.plans.guard import QueryGuard

    return QueryGuard(**kwargs)


def _crash_injector_from_args(args: argparse.Namespace):
    """A CrashInjector from ``--crash-at POINT[:N]`` / ``seeded``."""
    spec = getattr(args, "crash_at", None)
    if not spec:
        return None
    from repro.storage.faults import CrashInjector

    if spec == "seeded":
        return CrashInjector.seeded(args.seed)
    point, _, after = spec.partition(":")
    return CrashInjector(point, after=int(after) if after else 0)


def _fault_injector_from_args(args: argparse.Namespace):
    """A seeded FaultInjector from the ``--fault-*-rate`` flags."""
    transient = getattr(args, "fault_transient_rate", 0.0) or 0.0
    permanent = getattr(args, "fault_permanent_rate", 0.0) or 0.0
    if not transient and not permanent:
        return None
    from repro.storage import FaultInjector

    return FaultInjector(
        seed=args.seed,
        transient_rate=transient,
        permanent_rate=permanent,
    )


def _task_policy_from_args(args: argparse.Namespace):
    """A TaskPolicy from the ``--task-*`` / ``--hedge-after`` flags.

    Returns ``None`` when every knob is unset, so fault-free runs keep
    the default (policy-less) task runtime.
    """
    timeout = getattr(args, "task_timeout", None)
    retries = getattr(args, "task_retries", None)
    hedge_after = getattr(args, "hedge_after", None)
    no_degrade = getattr(args, "no_task_degrade", False)
    if (timeout is None and retries is None and hedge_after is None
            and not no_degrade):
        return None
    from repro.plans.scheduler import TaskPolicy

    kwargs = {"allow_degrade": not no_degrade}
    if timeout is not None:
        kwargs["timeout"] = timeout
    if retries is not None:
        if retries < 0:
            raise ValueError(
                f"--task-retries must be >= 0, got {retries}"
            )
        kwargs["max_attempts"] = retries + 1
    if hedge_after is not None:
        kwargs["hedge_after"] = hedge_after
    return TaskPolicy(**kwargs)


def _worker_faults_from_args(args: argparse.Namespace):
    """A WorkerFaultInjector from the ``--fault-worker*`` flags."""
    specs = getattr(args, "fault_worker", None) or ()
    rate = getattr(args, "fault_worker_rate", 0.0) or 0.0
    kinds_csv = getattr(args, "fault_worker_kinds", None)
    if not specs and not rate:
        return None
    import math

    from repro.storage.faults import WORKER_FAULT_KINDS, WorkerFaultInjector

    kinds = WORKER_FAULT_KINDS
    if kinds_csv:
        kinds = tuple(k.strip() for k in kinds_csv.split(",") if k.strip())
    for kind in kinds:
        if kind not in WORKER_FAULT_KINDS:
            raise ValueError(
                f"unknown worker fault kind {kind!r}; known kinds: "
                f"{', '.join(WORKER_FAULT_KINDS)}"
            )
    injector = WorkerFaultInjector(seed=args.seed, rate=rate, kinds=kinds)
    for spec in specs:
        kind, _, seq = spec.partition(":")
        if kind not in WORKER_FAULT_KINDS:
            raise ValueError(
                f"--fault-worker expects KIND[:N] with KIND one of "
                f"{', '.join(WORKER_FAULT_KINDS)}, got {spec!r}"
            )
        try:
            ordinal = int(seq) if seq else 0
        except ValueError:
            raise ValueError(
                f"--fault-worker expects an integer task ordinal, "
                f"got {spec!r}"
            ) from None
        if ordinal < 0:
            raise ValueError(
                f"--fault-worker task ordinal must be >= 0, got {spec!r}"
            )
        # Targeted CLI faults hit every attempt: with the default policy
        # the batch degrades to serial and still succeeds; with
        # --no-task-degrade it surfaces WorkerError (exit 9).
        injector.fail_task(ordinal, kind, attempts=math.inf)
    return injector


def cmd_sql(args: argparse.Namespace) -> int:
    from repro.storage import BufferPool

    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return EXIT_USAGE
    if args.workers < 1:
        print(
            f"--workers must be >= 1, got {args.workers}", file=sys.stderr
        )
        return EXIT_USAGE
    try:
        partitions = _parse_partitions(args.partition)
        task_policy = _task_policy_from_args(args)
        worker_faults = _worker_faults_from_args(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_USAGE

    crash = _crash_injector_from_args(args)
    pool = BufferPool(injector=_fault_injector_from_args(args))
    wal = checkpointer = None
    recovered: dict[str, dict] = {}

    if args.checkpoint_dir:
        from repro.storage import (
            CheckpointManager,
            RecoveryManager,
            WriteAheadLog,
            wal_path,
        )

        if args.resume:
            manager = RecoveryManager(args.checkpoint_dir)
            state = manager.recover()
            recovered = dict(state.queries)
            if state.has_checkpoint:
                db = manager.restore_database(state, pool=pool)
                db.workers = args.workers
                db.task_policy = task_policy
                db.worker_faults = worker_faults
                db.fuse_select_scan = args.fuse_select_scan
                print(
                    f"-- resumed from {state.checkpoint.name}: "
                    f"{len(recovered)} recorded statement(s), "
                    f"{state.replayed_records} WAL record(s) replayed"
                )
            else:
                # Cold start: no checkpoint committed before the crash.
                # Rebuild the base tables; the WAL's unit records still
                # let recorded statements skip execution.
                db = _build_database(
                    args.scale, args.seed, pool=pool,
                    metrics=state.registry, workers=args.workers,
                    partitions=partitions, task_policy=task_policy,
                    worker_faults=worker_faults,
                    fuse_select_scan=args.fuse_select_scan,
                )
                print(
                    f"-- no checkpoint; rebuilt base tables, "
                    f"{len(recovered)} recorded statement(s) on the WAL"
                )
        else:
            db = _build_database(
                args.scale, args.seed, pool=pool,
                workers=args.workers, partitions=partitions,
                task_policy=task_policy, worker_faults=worker_faults,
                fuse_select_scan=args.fuse_select_scan,
            )
        wal = WriteAheadLog(
            wal_path(args.checkpoint_dir), crash=crash, metrics=db.metrics
        )
        db.pool.wal = wal
        checkpointer = CheckpointManager(
            args.checkpoint_dir, wal=wal, metrics=db.metrics
        )
    else:
        db = _build_database(
            args.scale, args.seed, pool=pool,
            workers=args.workers, partitions=partitions,
            task_policy=task_policy, worker_faults=worker_faults,
            fuse_select_scan=args.fuse_select_scan,
        )

    guard = _guard_from_args(args, db)
    statements: list[str] = []
    if args.command:
        statements.extend(args.command)
    if args.file:
        with open(args.file) as fh:
            text = fh.read()
        statements.extend(
            s.strip() for s in text.split(";") if s.strip()
        )
    if not statements:
        print(
            "no statements; pass -c 'select ...' (repeatable) or -f file.sql",
            file=sys.stderr,
        )
        return EXIT_USAGE
    trace_entries: list[dict] = []
    for i, sql in enumerate(statements):
        key = f"stmt:{i}:{sql}"
        print(f"mpf> {sql}")

        record = recovered.get(key)
        if record is not None:
            outcome = _replay_recorded_statement(
                db, sql, record, args, guard
            )
            if isinstance(outcome, int):
                return outcome
            continue

        if args.calibrate and _is_select(sql):
            code = _run_calibrated_statement(db, sql, args, guard)
            if code is not None:
                return code
            continue

        if crash is not None:
            crash.reach("batch.query")
        before = db.metrics.snapshot() if wal is not None else None
        tracer = None
        if args.trace_json:
            from repro.obs.trace import QueryTracer

            tracer = QueryTracer()
        try:
            outcome = db.execute(
                sql, strategy=args.strategy, guard=guard, tracer=tracer
            )
        except MPFError as exc:
            _record_statement(db, wal, key, before, error=exc)
            print(f"error: {exc}", file=sys.stderr)
            return exit_code_for(exc)
        if tracer is not None and not isinstance(outcome, str):
            trace_entries.append({
                "request_id": f"stmt-{i:04d}",
                "tenant": None,
                "stats_epoch": db.catalog.stats_epoch,
                "status": "ok",
                "reason": None,
                "root": tracer.finish().to_dict(),
            })
        if isinstance(outcome, str):
            _record_statement(db, wal, key, before)
            if checkpointer is not None:
                checkpointer.checkpoint(db)
            print(f"view {outcome!r} created\n")
            continue
        _record_statement(db, wal, key, before, result=outcome.result)
        if checkpointer is not None:
            checkpointer.checkpoint(db)
        print(outcome.result.head(args.limit))
        if args.explain:
            print(outcome.plan_text)
        if args.explain_json:
            print(json.dumps(outcome.to_explain_dict(), sort_keys=True))
        print(f"[{outcome.optimization.algorithm}; "
              f"{outcome.result.ntuples} rows]\n")
    if args.trace_json:
        from repro.obs.export import trace_document

        # One repro.trace.v1 document covering every traced statement
        # (printed before --metrics-json, which stays the last line).
        print(json.dumps(
            trace_document(trace_entries, name="cli.sql"), sort_keys=True
        ))
    if args.metrics_text:
        _write_metrics_text(db, args.metrics_text)
    if args.metrics_json:
        # Last line of stdout: one schema-tagged metrics document for
        # the whole session (pipe into `python -m repro.obs.validate -`).
        print(json.dumps(db.metrics_document(name="cli.sql"),
                         sort_keys=True))
    return 0


def _is_select(sql: str) -> bool:
    """True for a parsable select statement (calibration applies)."""
    from repro.query.parser import SelectStatement, parse_statement

    try:
        return isinstance(parse_statement(sql), SelectStatement)
    except MPFError:
        # Let the ordinary execution path raise the real parse error.
        return False


def _run_calibrated_statement(db, sql, args, guard):
    """Run one select under ``--calibrate``.

    Prints the result head, optionally the calibrated plan tree, and
    the one-line ``repro.calibration.v1`` document.  Returns an exit
    code to abort with, or ``None`` on success.
    """
    try:
        report = db.explain_analyze(
            sql,
            strategy=args.strategy,
            guard=guard,
            audit_plans=True,
            audit_max_tables=args.audit_max_tables,
        )
    except MPFError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)
    print(report.result.head(args.limit))
    if args.explain:
        print(report.plan_text)
    print(json.dumps(report.to_calibration_dict(), sort_keys=True))
    print(f"[{report.optimization.algorithm}; "
          f"{report.result.ntuples} rows]\n")
    return None


def _record_statement(db, wal, key, before, result=None, error=None):
    """Append one statement's durable WAL record (no-op without WAL)."""
    if wal is None:
        return
    from repro.storage.journal import encode_unit
    from repro.storage.wal import WAL_QUERY

    delta = db.metrics.snapshot().diff(before).to_dict()
    wal.log_unit(
        WAL_QUERY,
        encode_unit(
            key,
            "error" if error is not None else "ok",
            result=result,
            error=error,
            delta=delta,
        ),
    )


def _replay_recorded_statement(db, sql, record, args, guard):
    """Serve one recovered statement from its durable record.

    Returns an exit code (``int``) to abort with, or ``None`` when the
    statement was served.  Recorded view creations re-execute —
    restoring from a checkpoint taken *after* the view was defined
    makes that a no-op rejected as "already in use", which is exactly
    the recovered outcome.
    """
    from repro.storage.journal import reconstruct_error

    db.metrics.counter("checkpoint.steps_skipped", unit="query").inc()
    if record["status"] == "error":
        exc = reconstruct_error(record["error"])
        print(f"error: {exc} [recovered]", file=sys.stderr)
        return exit_code_for(exc)
    if record.get("result") is None:
        # A view definition: idempotently re-apply.
        try:
            db.execute(sql, strategy=args.strategy, guard=guard)
        except MPFError as exc:
            if "already in use" not in str(exc):
                print(f"error: {exc}", file=sys.stderr)
                return exit_code_for(exc)
        print("view created [recovered]\n")
        return None
    from repro.data.serialize import relation_from_dict

    result = relation_from_dict(record["result"])
    print(result.head(args.limit))
    print(f"[recovered; {result.ntuples} rows]\n")
    return None


def _parse_reloads(specs):
    """Parse repeatable ``--reload-at TABLE@TIME`` flags.

    Returns ``[(time, table), ...]``; raises ``ValueError`` with a
    usage message on a malformed spec.
    """
    parsed = []
    for spec in specs or ():
        table, sep, at = spec.partition("@")
        if not sep or not table.strip():
            raise ValueError(
                f"--reload-at expects TABLE@TIME, got {spec!r}"
            )
        try:
            parsed.append((float(at), table.strip()))
        except ValueError:
            raise ValueError(
                f"--reload-at expects a numeric time, got {spec!r}"
            ) from None
    return parsed


# Default tenant mix for `repro serve`: a high-priority tenant with a
# latency SLO and an unlimited-rate bulk tenant that soaks up queue
# room — enough contention at the default --arrival-gap to exercise
# backpressure, eviction, and deadline shedding in one soak.
_DEFAULT_TENANTS = (
    "gold,priority=2,queue=8,slo=2e6",
    "bulk,queue=4,burst=4",
)

_SERVE_GROUP_VARS = ("pid", "sid", "wid", "cid", "tid")


def _serve_soak(args: argparse.Namespace, tracer=None):
    """Shared `serve`/`top` soak: build, generate, run.

    Returns ``(db, runtime, report, tenants)``; on a usage error,
    prints the message and returns the exit code instead.
    """
    import numpy as np

    from repro.datagen import supply_chain
    from repro.serve import (
        ServeRequest,
        ServingRuntime,
        VirtualClock,
        parse_tenant_spec,
    )

    if args.workers < 1:
        print(
            f"--workers must be >= 1, got {args.workers}", file=sys.stderr
        )
        return EXIT_USAGE
    if args.mix < 1:
        print(f"--mix must be >= 1, got {args.mix}", file=sys.stderr)
        return EXIT_USAGE
    try:
        partitions = _parse_partitions(args.partition)
        task_policy = _task_policy_from_args(args)
        worker_faults = _worker_faults_from_args(args)
        tenants = [
            parse_tenant_spec(text)
            for text in (args.tenant or _DEFAULT_TENANTS)
        ]
        reload_specs = _parse_reloads(args.reload_at)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_USAGE

    clock = VirtualClock()
    db = _build_database(
        args.scale, args.seed, workers=args.workers,
        partitions=partitions, task_policy=task_policy,
        worker_faults=worker_faults,
        fuse_select_scan=args.fuse_select_scan, clock=clock,
    )
    runtime = ServingRuntime(
        db, tenants, clock=clock, strategy=args.strategy,
        drain_policy=args.drain, tracer=tracer,
    )

    # Seeded workload: tenant, query shape, and inter-arrival gaps are
    # all drawn from one generator, so a given (--seed, --mix,
    # --arrival-gap, --tenant) combination replays byte-identically.
    rng = np.random.default_rng(args.seed)
    names = [spec.name for spec in tenants]
    arrival = 0.0
    requests = []
    for _ in range(args.mix):
        arrival += float(rng.exponential(args.arrival_gap))
        var = _SERVE_GROUP_VARS[int(rng.integers(len(_SERVE_GROUP_VARS)))]
        sql = f"select {var}, sum(inv) from invest group by {var}"
        if rng.random() < 0.25:
            sql = (
                f"select {var}, sum(inv) from invest "
                f"where tid = 0 group by {var}"
            )
        requests.append(ServeRequest(
            tenant=names[int(rng.integers(len(names)))],
            query=db._select_query(sql),
            arrival=arrival,
        ))

    reloads = []
    for k, (at, table) in enumerate(reload_specs):
        # A reload installs a freshly regenerated copy of the table
        # (different seed), so post-reload epochs serve different data.
        fresh = supply_chain(scale=args.scale, seed=args.seed + 101 + k)
        reloads.append((at, fresh.catalog.relation(table), table))

    report = runtime.run_workload(requests, reloads)
    return db, runtime, report, tenants


def _write_metrics_text(db, target: str) -> None:
    """Write the Prometheus-style exposition to stdout (``-``) or a file."""
    from repro.obs.expo import metrics_text

    text = metrics_text(db.metrics)
    if target == "-":
        sys.stdout.write(text)
    else:
        with open(target, "w") as fh:
            fh.write(text)


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.obs.trace import ServeTracer

    tracer = ServeTracer() if args.trace_json else None
    soak = _serve_soak(args, tracer)
    if isinstance(soak, int):
        return soak
    db, runtime, report, tenants = soak

    print(f"serving soak @ scale {args.scale}, seed {args.seed}: "
          f"{report.summary()}")
    for spec in tenants:
        outs = [
            o for o in report.outcomes if o.request.tenant == spec.name
        ]
        sheds = Counter(
            o.error.reason for o in outs if o.shed
        )
        executed = [o for o in outs if not o.shed]
        wait = (
            sum(o.queue_wait for o in executed) / len(executed)
            if executed else 0.0
        )
        shed_text = (
            " [" + ", ".join(
                f"{reason}={count}" for reason, count in sorted(sheds.items())
            ) + "]" if sheds else ""
        )
        print(
            f"  {spec.name}: {len(outs)} submitted, "
            f"{sum(o.ok for o in outs)} ok, "
            f"{sum(bool(o.shed) for o in outs)} shed{shed_text}, "
            f"{sum(o.status == 'error' for o in outs)} failed, "
            f"mean wait {wait:.0f} units"
        )
    hits = sum(o.plan_cached for o in report.completed)
    epochs = sorted({o.epoch for o in report.outcomes if o.epoch is not None})
    print(f"  plan cache: {hits}/{len(report.completed)} hits; "
          f"epochs served: {epochs}")
    if args.trace_json:
        # One schema-tagged repro.trace.v1 document for the whole soak
        # (pipe `tail -n 1` into `python -m repro.obs.validate -` when
        # combined with --metrics-json, which stays the last line).
        print(json.dumps(tracer.document(name="cli.serve"),
                         sort_keys=True))
    if args.metrics_text:
        _write_metrics_text(db, args.metrics_text)
    if args.metrics_json:
        # Last line of stdout: one schema-tagged metrics document for
        # the soak (pipe into `python -m repro.obs.validate -`).
        print(json.dumps(db.metrics_document(name="cli.serve"),
                         sort_keys=True))
    if args.fail_on_shed and report.shed:
        print(
            f"error: {len(report.shed)} request(s) shed under overload",
            file=sys.stderr,
        )
        return EXIT_OVERLOAD
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """One-shot per-tenant SLO summary view over a seeded soak."""
    soak = _serve_soak(args)
    if isinstance(soak, int):
        return soak
    db, runtime, report, tenants = soak
    print(f"serving soak @ scale {args.scale}, seed {args.seed}: "
          f"{report.summary()}")
    print(runtime.slo.render())
    if args.metrics_text:
        _write_metrics_text(db, args.metrics_text)
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    from repro.datagen import linear_view, multistar_view, star_view
    from repro.optimizer import (
        CSPlusNonlinear,
        QuerySpec,
        VariableElimination,
    )

    views = {
        "star": star_view(args.n_tables, args.domain),
        "multistar": multistar_view(args.n_tables, args.domain),
        "linear": linear_view(args.n_tables, args.domain),
    }
    orderings = [
        ("nonlinear CS+", None, False),
        ("VE(deg)", "degree", False),
        ("VE(deg) ext.", "degree", True),
        ("VE(width)", "width", False),
        ("VE(width) ext.", "width", True),
        ("VE(elim_cost)", "elim_cost", False),
        ("VE(elim_cost) ext.", "elim_cost", True),
        ("VE(deg & width)", "degree+width", False),
        ("VE(deg & width) ext.", "degree+width", True),
        ("VE(deg & elim_cost)", "degree+elim_cost", False),
        ("VE(deg & elim_cost) ext.", "degree+elim_cost", True),
    ]
    print(f"{'Ordering':26s} {'star':>14s} {'multistar':>14s} "
          f"{'linear':>12s}")
    for label, heuristic, extended in orderings:
        row = [label]
        for kind in ("star", "multistar", "linear"):
            view = views[kind]
            spec = QuerySpec(
                tables=view.tables,
                query_vars=(view.chain_variables[0],),
            )
            if heuristic is None:
                cost = CSPlusNonlinear().optimize(spec, view.catalog).cost
            else:
                cost = VariableElimination(
                    heuristic, extended=extended
                ).optimize(spec, view.catalog).cost
            row.append(cost)
        print(f"{row[0]:26s} {row[1]:14.2f} {row[2]:14.2f} {row[3]:12.2f}")
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    from repro.datagen import linear_view, multistar_view, star_view
    from repro.optimizer import QuerySpec, VariableElimination

    views = {
        "star": star_view(args.n_tables, args.domain),
        "multistar": multistar_view(args.n_tables, args.domain),
        "linear": linear_view(args.n_tables, args.domain),
    }
    print(f"{'Ordering':16s} {'view':>10s} {'mean':>14s} {'±95% CI':>12s}")
    for extended in (False, True):
        label = "VE(random) ext." if extended else "VE(random)"
        for kind, view in views.items():
            spec = QuerySpec(
                tables=view.tables,
                query_vars=(view.chain_variables[0],),
            )
            costs = [
                VariableElimination("random", extended=extended, seed=s)
                .optimize(spec, view.catalog)
                .cost
                for s in range(args.runs)
            ]
            n = len(costs)
            mean = sum(costs) / n
            var = sum((c - mean) ** 2 for c in costs) / (n - 1)
            half = 1.96 * math.sqrt(var / n)
            print(f"{label:16s} {kind:>10s} {mean:14.2f} {half:12.2f}")
    return 0


def cmd_inference(args: argparse.Namespace) -> int:
    from repro.bayes import MPFInference, figure2_network

    bn = figure2_network()
    mpf = MPFInference(bn)
    print("Figure 2 network; "
          "query: select C, SUM(p) from joint where A=0 group by C")
    for row in mpf.query("C", evidence={"A": 0}).iter_rows():
        print(f"  Pr(C={row[0]} | A=0) = {row[1]:.4f}")
    cache = mpf.build_cache()
    print("marginals from a calibrated VE-cache:")
    for v in bn.variable_names:
        values = ", ".join(
            f"{m:.4f}" for m in mpf.query_cached(cache, v).measure
        )
        print(f"  Pr({v}) = [{values}]")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MPF query engine (SIGMOD 2007 reproduction)",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    demo = sub.add_parser("demo", help="supply-chain walkthrough")
    demo.add_argument("--scale", type=float, default=0.01)
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument("--strategy", default="auto")
    demo.set_defaults(fn=cmd_demo)

    sql = sub.add_parser("sql", help="run MPF statements")
    sql.add_argument("-c", "--command", action="append",
                     help="statement to run (repeatable)")
    sql.add_argument("-f", "--file", help="file of ;-separated statements")
    sql.add_argument("--scale", type=float, default=0.01)
    sql.add_argument("--seed", type=int, default=42)
    sql.add_argument("--strategy", default="auto")
    sql.add_argument("--limit", type=int, default=10,
                     help="rows to print per result")
    sql.add_argument("--explain", action="store_true",
                     help="print the chosen plan")
    sql.add_argument("--explain-json", action="store_true",
                     help="print each query's EXPLAIN (FORMAT JSON) "
                          "document on one line")
    sql.add_argument("--metrics-json", action="store_true",
                     help="after all statements, print the session's "
                          "metrics document on one line")
    sql.add_argument("--metrics-text", nargs="?", const="-", default=None,
                     metavar="PATH",
                     help="after all statements, write the session's "
                          "metrics as a Prometheus-style text exposition "
                          "to PATH (default: stdout)")
    sql.add_argument("--trace-json", action="store_true",
                     help="after all statements, print one "
                          "repro.trace.v1 document with each select's "
                          "span tree on one line")
    sql.add_argument("--calibrate", action="store_true",
                     help="run selects as EXPLAIN ANALYZE with cost-model "
                          "calibration: print each query's one-line "
                          "repro.calibration.v1 document (per-node "
                          "Q-errors, misestimate attribution, plan-choice "
                          "audit); calibrated selects are not recorded on "
                          "the WAL")
    sql.add_argument("--audit-max-tables", type=int, default=6,
                     metavar="N",
                     help="replay candidate plans (the --calibrate audit) "
                          "only for queries over at most N relations")
    sql.add_argument("--timeout", type=float, default=None,
                     metavar="SECONDS",
                     help="wall-clock deadline per statement")
    sql.add_argument("--cost-budget", type=float, default=None,
                     metavar="UNITS",
                     help="simulated-IO cost budget per statement")
    sql.add_argument("--memory-limit", type=int, default=None,
                     metavar="PAGES",
                     help="hard ceiling on materialized intermediate pages")
    sql.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help="enable durability: WAL + per-statement "
                          "checkpoints in DIR")
    sql.add_argument("--resume", action="store_true",
                     help="recover from --checkpoint-dir before running; "
                          "recorded statements are served from the WAL")
    sql.add_argument("--crash-at", default=None, metavar="POINT[:N]",
                     help="inject a crash at a named point (after N "
                          "earlier hits), or 'seeded' to derive the "
                          "point from --seed; exits with code 8")
    sql.add_argument("--fault-transient-rate", type=float, default=0.0,
                     metavar="P",
                     help="seeded per-page transient fault probability")
    sql.add_argument("--workers", type=int, default=1,
                     help="modeled executor count for partition-parallel "
                          "execution (results are identical for every "
                          "worker count; see docs/parallelism.md)")
    sql.add_argument("--fuse-select-scan", action="store_true",
                     help="lower plans with the Select over Scan fusion "
                          "rewrite (results are identical; the fused scan "
                          "skips the selection's separate full pass)")
    sql.add_argument("--partition", action="append", default=None,
                     metavar="TABLE=KEY:N",
                     help="hash-partition TABLE on variable KEY into N "
                          "shards before running (repeatable)")
    sql.add_argument("--fault-permanent-rate", type=float, default=0.0,
                     metavar="P",
                     help="seeded per-page permanent fault probability")
    sql.add_argument("--task-timeout", type=float, default=None,
                     metavar="UNITS",
                     help="modeled per-task deadline: a hung worker is "
                          "killed and the task retried after this many "
                          "cost units")
    sql.add_argument("--task-retries", type=int, default=None,
                     metavar="N",
                     help="retry budget per scheduled task (N retries "
                          "after the first attempt, with capped "
                          "exponential backoff)")
    sql.add_argument("--hedge-after", type=float, default=None,
                     metavar="UNITS",
                     help="launch a hedged duplicate of a straggling "
                          "task after this many cost units; the first "
                          "finisher wins")
    sql.add_argument("--no-task-degrade", action="store_true",
                     help="disable graceful degradation to serial "
                          "re-execution; an unrecoverable worker fault "
                          "exits with code 9 instead")
    sql.add_argument("--fault-worker", action="append", default=None,
                     metavar="KIND[:N]",
                     help="inject a worker fault (crash, hang, slow, "
                          "lost, poison) on every attempt of scheduled "
                          "task ordinal N (default 0); repeatable")
    sql.add_argument("--fault-worker-rate", type=float, default=0.0,
                     metavar="P",
                     help="seeded per-task worker fault probability")
    sql.add_argument("--fault-worker-kinds", default=None, metavar="CSV",
                     help="restrict seeded worker faults to these kinds "
                          "(comma-separated; default: all kinds)")
    sql.set_defaults(fn=cmd_sql)

    def add_serve_soak_options(p):
        """Workload-shaping flags shared by `serve` and `top`."""
        p.add_argument("--scale", type=float, default=0.01)
        p.add_argument("--seed", type=int, default=42)
        p.add_argument("--strategy", default="auto")
        p.add_argument("--tenant", action="append", default=None,
                       metavar="SPEC",
                       help="tenant spec 'name[,key=value,...]' with keys "
                            "priority, rate, burst, slots, queue, slo, "
                            "objective, cost, mem, retries (repeatable; "
                            "default: a gold/bulk pair that contends at "
                            "the default arrival gap)")
        p.add_argument("--mix", type=int, default=40, metavar="N",
                       help="seeded queries to submit across the tenants")
        p.add_argument("--arrival-gap", type=float, default=5e4,
                       metavar="UNITS",
                       help="mean inter-arrival gap in simulated cost "
                            "units (exponential, seeded)")
        p.add_argument("--reload-at", action="append", default=None,
                       metavar="TABLE@TIME",
                       help="reload TABLE with freshly regenerated data "
                            "at virtual time TIME, snapshot-isolated "
                            "from in-flight queries (repeatable)")
        p.add_argument("--drain", choices=("finish", "shed"),
                       default="finish",
                       help="queued work after the last arrival is "
                            "finished or shed")
        p.add_argument("--metrics-text", nargs="?", const="-",
                       default=None, metavar="PATH",
                       help="after the soak, write the metrics as a "
                            "Prometheus-style text exposition to PATH "
                            "(default: stdout)")
        p.add_argument("--workers", type=int, default=1,
                       help="modeled executor count for "
                            "partition-parallel execution")
        p.add_argument("--partition", action="append", default=None,
                       metavar="TABLE=KEY:N",
                       help="hash-partition TABLE on variable KEY into N "
                            "shards before serving (repeatable)")
        p.add_argument("--fuse-select-scan", action="store_true",
                       help="lower plans with the Select over Scan "
                            "fusion rewrite")
        p.add_argument("--task-timeout", type=float, default=None,
                       metavar="UNITS",
                       help="modeled per-task deadline (see `sql`)")
        p.add_argument("--task-retries", type=int, default=None,
                       metavar="N",
                       help="retry budget per scheduled task")
        p.add_argument("--hedge-after", type=float, default=None,
                       metavar="UNITS",
                       help="hedge straggling tasks after this many "
                            "cost units")
        p.add_argument("--no-task-degrade", action="store_true",
                       help="disable graceful degradation to serial "
                            "re-execution on worker faults")
        p.add_argument("--fault-worker", action="append", default=None,
                       metavar="KIND[:N]",
                       help="inject a worker fault on scheduled task "
                            "ordinal N (repeatable; see `sql`)")
        p.add_argument("--fault-worker-rate", type=float, default=0.0,
                       metavar="P",
                       help="seeded per-task worker fault probability")
        p.add_argument("--fault-worker-kinds", default=None,
                       metavar="CSV",
                       help="restrict seeded worker faults to these "
                            "kinds")

    srv = sub.add_parser(
        "serve",
        help="deterministic multi-tenant serving soak (admission "
             "control, load shedding, snapshot-isolated reloads)",
    )
    add_serve_soak_options(srv)
    srv.add_argument("--fail-on-shed", action="store_true",
                     help=f"exit {EXIT_OVERLOAD} if any request was "
                          "shed (overload is a failure for this run)")
    srv.add_argument("--metrics-json", action="store_true",
                     help="after the soak, print the session's metrics "
                          "document on one line")
    srv.add_argument("--trace-json", action="store_true",
                     help="after the soak, print its repro.trace.v1 "
                          "document — every request's admission → queue "
                          "→ dispatch → operator span tree — on one "
                          "line (before --metrics-json)")
    srv.set_defaults(fn=cmd_serve)

    top = sub.add_parser(
        "top",
        help="one-shot per-tenant SLO summary (latency/queue-wait "
             "p50/p95/p99, attainment, burn rate) over a seeded soak",
    )
    add_serve_soak_options(top)
    top.set_defaults(fn=cmd_top)

    t2 = sub.add_parser("table2", help="regenerate paper Table 2")
    t2.add_argument("--n-tables", type=int, default=5)
    t2.add_argument("--domain", type=int, default=10)
    t2.set_defaults(fn=cmd_table2)

    t3 = sub.add_parser("table3", help="regenerate paper Table 3")
    t3.add_argument("--n-tables", type=int, default=5)
    t3.add_argument("--domain", type=int, default=10)
    t3.add_argument("--runs", type=int, default=10)
    t3.set_defaults(fn=cmd_table3)

    inf = sub.add_parser("inference", help="Bayesian-network walkthrough")
    inf.set_defaults(fn=cmd_inference)
    return parser


def main(argv: list[str] | None = None) -> int:
    from repro.storage.faults import InjectedCrash

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except InjectedCrash as exc:
        # A simulated crash is a hard process death, not an MPFError:
        # everything not yet durable is lost, and the distinct exit
        # code tells driving scripts to re-run with --resume.
        print(f"crash: {exc}", file=sys.stderr)
        return EXIT_CRASH
    except MPFError as exc:
        # Last-resort boundary: no MPFError escapes as a traceback, and
        # the exit code identifies the error family.
        print(f"error: {exc}", file=sys.stderr)
        return exit_code_for(exc)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
