"""The plan-linearity admissibility test (Section 5.1, Eq. 1).

For an MPF query on variable ``X``, let ``σ_X`` be the domain size of
``X`` and ``σ̂_X`` the cardinality of the smallest base relation
containing ``X`` — both catalog statistics.  Under the simple cost
model (join |R||S|, aggregate |R| log |R|), a **linear plan is
admissible** when

    σ_X² + σ̂_X · log₂(σ̂_X)  ≥  σ_X · σ̂_X            (Eq. 1)

Intuition: a linear plan must join the smallest X-relation (size σ̂_X)
against an intermediate already reduced to σ_X rows, costing
σ_X · σ̂_X; a nonlinear plan can first reduce that relation itself to
σ_X rows (aggregate cost σ̂_X log σ̂_X) and then join two σ_X-sized
operands (cost σ_X²).  When the inequality fails, nonlinear plans are
predicted to win — Figure 7's Q1 (σ_cid=1000 < σ̂_cid=5000, fails)
versus Q2 (σ_tid = σ̂_tid = 500, holds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalog.catalog import Catalog

__all__ = ["LinearityTest", "linearity_test"]


@dataclass(frozen=True)
class LinearityTest:
    """Outcome of Eq. 1 for one query variable."""

    variable: str
    sigma: float
    """Domain size σ_X of the query variable."""
    sigma_hat: float
    """Cardinality σ̂_X of the smallest base relation containing X."""
    linear_admissible: bool
    """True when Eq. 1 holds: a linear plan suffices."""

    @property
    def lhs(self) -> float:
        return self.sigma**2 + self.sigma_hat * math.log2(max(self.sigma_hat, 2.0))

    @property
    def rhs(self) -> float:
        return self.sigma * self.sigma_hat

    def __str__(self) -> str:
        verdict = "linear admissible" if self.linear_admissible else (
            "nonlinear plans recommended"
        )
        return (
            f"X={self.variable}: σ={self.sigma:.0f}, σ̂={self.sigma_hat:.0f} → "
            f"{self.lhs:.3g} {'≥' if self.linear_admissible else '<'} "
            f"{self.rhs:.3g} ({verdict})"
        )


def linearity_test(catalog: Catalog, var_name: str) -> LinearityTest:
    """Apply Eq. 1 to a query variable using catalog statistics."""
    sigma = float(catalog.variable(var_name).size)
    sigma_hat = float(catalog.smallest_table_with_variable(var_name).cardinality)
    lhs = sigma**2 + sigma_hat * math.log2(max(sigma_hat, 2.0))
    rhs = sigma * sigma_hat
    return LinearityTest(
        variable=var_name,
        sigma=sigma,
        sigma_hat=sigma_hat,
        linear_admissible=lhs >= rhs,
    )
