"""MPF single-query optimization algorithms (Section 5)."""

from repro.optimizer.base import (
    OptimizationResult,
    Optimizer,
    PlanContext,
    QuerySpec,
    SubPlan,
)
from repro.optimizer.cs import CSOptimizer
from repro.optimizer.exhaustive import ExhaustiveGDL
from repro.optimizer.csplus import CSPlusLinear, CSPlusNonlinear
from repro.optimizer.heuristics import (
    BASE_HEURISTICS,
    choose_variable,
    parse_heuristic,
    score_candidates,
)
from repro.optimizer.linearity import LinearityTest, linearity_test
from repro.optimizer.ve import VariableElimination, fd_prunable_variables

__all__ = [
    "QuerySpec",
    "SubPlan",
    "PlanContext",
    "Optimizer",
    "OptimizationResult",
    "CSOptimizer",
    "ExhaustiveGDL",
    "CSPlusLinear",
    "CSPlusNonlinear",
    "VariableElimination",
    "fd_prunable_variables",
    "BASE_HEURISTICS",
    "parse_heuristic",
    "score_candidates",
    "choose_variable",
    "LinearityTest",
    "linearity_test",
]
