"""Variable-ordering heuristics for VE (Section 5.5).

Three base heuristics, their normalized-product combinations, and a
random baseline.  All scores are *minimized*.

* ``degree`` — estimates the size of the post-elimination relation
  ``p`` of Algorithm 2's line 6: the cross product of the domains of
  the variables of ``p`` that still matter — those shared with
  relations outside ``rels(v)`` or in the query.  Greedily minimizes
  the join operands higher in the tree, i.e. the cost of *future*
  eliminations.  On the star view this famously backfires: the hub
  variable's post-elimination relation shrinks to the query variable
  alone (10 tuples), so degree eliminates the hub first — which joins
  every base table with no GDL optimization at all (Table 2).

* ``width`` — estimates the size of the *pre*-elimination relation
  ``joinplan(rels(v, S))``: the cross product over the whole joined
  scope including ``v``.  Estimates the cost of the *current*
  elimination.

* ``elim_cost`` — the paper's cost-based heuristic: ask the cost model
  what eliminating ``v`` would cost.  Implemented, as in Section 7.3,
  as an *overestimate*: a fixed linear join ordering over ``rels(v)``
  (no join-order search) followed by the aggregate.

* combinations (``degree+width``, ``degree+elim_cost``) — each
  component normalized by the largest value among the current
  candidates, then multiplied (footnote 1 of the paper).

* ``random`` — uniform choice; the Table 3 baseline.

Scoring operates on *live* variable scopes supplied by the caller: in
the VE+ extended space, a variable already processed but whose physical
elimination was delayed must not inflate its neighbors' scores, since
pending GroupBy caps will drop it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.cost.cardinality import group_stats, join_stats
from repro.errors import OptimizationError
from repro.optimizer.base import PlanContext, SubPlan

__all__ = [
    "BASE_HEURISTICS",
    "Candidate",
    "parse_heuristic",
    "score_candidates",
    "choose_variable",
]

BASE_HEURISTICS = ("degree", "width", "elim_cost", "random")


@dataclass
class Candidate:
    """One elimination candidate with its precomputed scopes.

    ``neighborhood`` is the union of *live* variables over ``rels``
    (including the candidate itself); ``surviving`` is the subset of
    the post-elimination scope that future operators still need (query
    variables plus live variables of subplans outside ``rels``);
    ``rels_live`` gives each rel's live variables, so cost estimates
    can pre-shrink delayed subplans the way pending GroupBy caps will.
    """

    var: str
    rels: list[SubPlan]
    neighborhood: frozenset[str]
    surviving: frozenset[str]
    rels_live: list[frozenset[str]] | None = None


def _domain_product(context: PlanContext, names) -> float:
    size = 1.0
    for v in names:
        size *= context.catalog.variable(v).size
    return size


def _degree(candidate: Candidate, context: PlanContext) -> float:
    scope = (candidate.neighborhood - {candidate.var}) & candidate.surviving
    return _domain_product(context, scope)


def _width(candidate: Candidate, context: PlanContext) -> float:
    return _domain_product(context, candidate.neighborhood)


def _elim_cost(candidate: Candidate, context: PlanContext) -> float:
    """Fixed-order join chain + aggregate, costed by the active model.

    Operand statistics are pre-shrunk to each rel's live scope: in the
    extended space a delayed variable will be dropped by a pending
    GroupBy cap before this join happens, so estimating with the raw
    cardinality would systematically mis-rank candidates.
    """
    model = context.model
    live = candidate.rels_live or [r.variables for r in candidate.rels]

    def effective(subplan: SubPlan, live_vars: frozenset[str]):
        if live_vars >= subplan.variables:
            return subplan.stats
        keep = [v for v in subplan.stats.var_sizes if v in live_vars]
        return group_stats(subplan.stats, keep)

    operands = [effective(r, lv) for r, lv in zip(candidate.rels, live)]
    stats = operands[0]
    cost = 0.0
    for other in operands[1:]:
        joined = join_stats(stats, other)
        cost += model.join_cost(stats, other, joined)
        stats = joined
    keep = [
        v
        for v in stats.var_sizes
        if v != candidate.var and v in candidate.surviving
    ]
    grouped = group_stats(stats, keep)
    cost += model.group_cost(stats, grouped)
    context.plans_considered += 1
    return cost


_SCORERS = {
    "degree": _degree,
    "width": _width,
    "elim_cost": _elim_cost,
}


def parse_heuristic(spec: str) -> tuple[str, ...]:
    """Split a spec like ``"degree+width"`` into validated components."""
    parts = tuple(p.strip() for p in spec.split("+"))
    for p in parts:
        if p not in BASE_HEURISTICS:
            raise OptimizationError(
                f"unknown heuristic component {p!r}; known: {BASE_HEURISTICS}"
            )
    if "random" in parts and len(parts) > 1:
        raise OptimizationError("'random' cannot be combined")
    return parts


def score_candidates(
    candidates: Sequence[Candidate],
    context: PlanContext,
    parts: tuple[str, ...],
) -> dict[str, float]:
    """Combined (normalized-product) score per candidate variable."""
    combined = {c.var: 1.0 for c in candidates}
    for part in parts:
        scorer = _SCORERS[part]
        raw = {c.var: scorer(c, context) for c in candidates}
        top = max(raw.values())
        if top <= 0 or math.isinf(top):
            top = 1.0
        for v in combined:
            combined[v] *= raw[v] / top
    return combined


def choose_variable(
    candidates: Sequence[Candidate],
    context: PlanContext,
    parts: tuple[str, ...],
    rng: np.random.Generator | None = None,
) -> str:
    """Pick the next variable to eliminate (ties broken by name)."""
    if not candidates:
        raise OptimizationError("no elimination candidates")
    if parts == ("random",):
        rng = rng or np.random.default_rng()
        return str(rng.choice(sorted(c.var for c in candidates)))
    scores = score_candidates(candidates, context, parts)
    return min(sorted(scores), key=lambda v: scores[v])
