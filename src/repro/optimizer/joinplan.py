"""Join-order search: the ``joinplan()`` primitive of Algorithms 1 & 2.

Two dynamic programs over bitmask-indexed relation subsets:

* :func:`linear_dp` — Selinger-style left-deep search.  With
  ``use_groupbys=False`` it is the plain best-join-order search the CS
  baseline and plain VE use.  With ``use_groupbys=True`` it is the
  CS+ transition of Algorithm 1: joining relation ``r_j`` to the best
  plan for ``S_j`` compares the plan with and without a GroupBy capping
  ``optPlan(S_j)``, grouping on the semantically-required variables,
  and keeps the cheaper (the greedy-conservative heuristic).

* :func:`bushy_dp` — the nonlinear CS+ search of Section 5.1: all
  subset splits, and for each split the **four** candidates — no
  GroupBy, GroupBy on the left operand, on the right operand, on both.

``outside_needed`` carries the correctness condition across search
scopes: when these DPs run over a subset of the view's relations (as
VE/VE+ do per elimination), variables referenced by relations *outside*
the subset, plus the query variables, must survive every interior
GroupBy.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import OptimizationError
from repro.optimizer.base import PlanContext, SubPlan

__all__ = ["linear_dp", "bushy_dp"]


def _variables_of(items: Sequence[SubPlan], mask: int) -> frozenset[str]:
    """Union of variables of the items selected by ``mask``."""
    out: set[str] = set()
    for i, item in enumerate(items):
        if mask & (1 << i):
            out |= item.variables
    return frozenset(out)


def linear_dp(
    items: Sequence[SubPlan],
    context: PlanContext,
    outside_needed: frozenset[str] = frozenset(),
    use_groupbys: bool = False,
) -> SubPlan:
    """Best left-deep plan joining all ``items``.

    ``use_groupbys`` enables the CS+ interior-GroupBy comparison; the
    returned plan is then guaranteed no more expensive than the best
    pure join order (both candidates are always costed).
    """
    items = list(items)
    n = len(items)
    if n == 0:
        raise OptimizationError("joinplan over an empty relation set")
    if n == 1:
        return items[0]

    full = (1 << n) - 1
    # Cache of "variables outside mask" per mask complement.
    dp: dict[int, SubPlan] = {1 << i: items[i] for i in range(n)}

    # Iterate masks in increasing popcount so predecessors exist.
    masks_by_size: list[list[int]] = [[] for _ in range(n + 1)]
    for mask in range(1, full + 1):
        masks_by_size[mask.bit_count()].append(mask)

    for size in range(2, n + 1):
        for mask in masks_by_size[size]:
            best: SubPlan | None = None
            for j in range(n):
                bit = 1 << j
                if not mask & bit:
                    continue
                prev_mask = mask ^ bit
                prev = dp.get(prev_mask)
                if prev is None:
                    continue
                q1 = context.join(prev, items[j])
                candidate = q1
                if use_groupbys:
                    # Relations not yet joined into S_j: everything
                    # outside prev_mask (r_j included), plus the query
                    # variables / outside scope.
                    needed = outside_needed | _variables_of(
                        items, full ^ prev_mask
                    )
                    capped = context.group_if_useful(prev, needed)
                    if capped is not None:
                        q2 = context.join(capped, items[j])
                        if q2.cost < candidate.cost:
                            candidate = q2
                if best is None or candidate.cost < best.cost:
                    best = candidate
            dp[mask] = best
    return dp[full]


def bushy_dp(
    items: Sequence[SubPlan],
    context: PlanContext,
    outside_needed: frozenset[str] = frozenset(),
    use_groupbys: bool = True,
) -> SubPlan:
    """Best bushy plan joining all ``items`` (nonlinear CS+).

    For every unordered split {L, R} of every subset, costs up to four
    candidates (GroupBy caps on neither / left / right / both operands)
    and keeps the cheapest — the Section 5.1 extension of the CS+
    greedy-conservative rule to nonlinear plans.
    """
    items = list(items)
    n = len(items)
    if n == 0:
        raise OptimizationError("joinplan over an empty relation set")
    if n == 1:
        return items[0]

    full = (1 << n) - 1
    dp: dict[int, SubPlan] = {1 << i: items[i] for i in range(n)}

    masks_by_size: list[list[int]] = [[] for _ in range(n + 1)]
    for mask in range(1, full + 1):
        masks_by_size[mask.bit_count()].append(mask)

    for size in range(2, n + 1):
        for mask in masks_by_size[size]:
            best: SubPlan | None = None
            # Enumerate unordered splits: sub iterates proper nonempty
            # submasks; keep sub > complement to visit each split once.
            sub = (mask - 1) & mask
            while sub:
                other = mask ^ sub
                if sub > other:
                    left, right = dp[sub], dp[other]
                    left_mask, right_mask = sub, other
                    candidates = [context.join(left, right)]
                    if use_groupbys:
                        needed_left = outside_needed | _variables_of(
                            items, full ^ left_mask
                        )
                        needed_right = outside_needed | _variables_of(
                            items, full ^ right_mask
                        )
                        capped_left = context.group_if_useful(left, needed_left)
                        capped_right = context.group_if_useful(
                            right, needed_right
                        )
                        if capped_left is not None:
                            candidates.append(context.join(capped_left, right))
                        if capped_right is not None:
                            candidates.append(context.join(left, capped_right))
                        if capped_left is not None and capped_right is not None:
                            candidates.append(
                                context.join(capped_left, capped_right)
                            )
                    local = min(candidates, key=lambda s: s.cost)
                    if best is None or local.cost < best.cost:
                        best = local
                sub = (sub - 1) & mask
            dp[mask] = best
    return dp[full]
