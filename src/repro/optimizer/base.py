"""Shared optimizer infrastructure.

Every optimization algorithm in Section 5 (CS, CS+, nonlinear CS+, VE,
VE+) works over the same material:

* a *query specification* — which base tables define the MPF view,
  which variables are grouped on, and which equality selections apply
  (restricted-answer / constrained-domain forms);
* *subplans* — (plan tree, derived stats, cumulative cost) triples that
  the dynamic programs compose without re-annotating whole trees;
* the *needed-variables* rule — the semantic-correctness condition of
  Chaudhuri and Shim's line 3: an interior GroupBy may only group on
  the query variables plus every variable that still occurs in a
  relation not yet joined in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.catalog.catalog import Catalog
from repro.catalog.statistics import TableStats
from repro.cost.cardinality import group_stats, join_stats, select_stats
from repro.cost.model import CostModel, SimpleCostModel
from repro.errors import OptimizationError
from repro.plans.nodes import GroupBy, IndexScan, PlanNode, ProductJoin, Scan, Select

__all__ = [
    "QuerySpec",
    "SubPlan",
    "OptimizationResult",
    "Optimizer",
    "PlanContext",
]


@dataclass(frozen=True)
class QuerySpec:
    """An MPF query as the optimizer sees it.

    ``tables`` define the view ``r = s1 ⋈* ... ⋈* sn``; ``query_vars``
    is the GroupBy list ``X``; ``selections`` holds equality predicates
    (values may be labels or codes) covering both the restricted-answer
    (selected variable ∈ X) and constrained-domain (∉ X) forms.
    """

    tables: tuple[str, ...]
    query_vars: tuple[str, ...]
    selections: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if not self.tables:
            raise OptimizationError("query needs at least one table")
        if len(set(self.tables)) != len(self.tables):
            raise OptimizationError("duplicate tables in query spec")
        object.__setattr__(self, "selections", dict(self.selections))


@dataclass
class SubPlan:
    """A plan fragment with its derived statistics and cumulative cost."""

    plan: PlanNode
    stats: TableStats
    cost: float

    @property
    def variables(self) -> frozenset[str]:
        return frozenset(self.stats.var_sizes)


@dataclass
class OptimizationResult:
    """What an optimizer returns.

    ``plans_considered`` counts costed candidate plans — the search
    effort metric plotted against plan quality in Figure 10 (alongside
    ``planning_seconds``).
    """

    plan: PlanNode
    cost: float
    algorithm: str
    planning_seconds: float
    plans_considered: int
    extras: dict = field(default_factory=dict)


class PlanContext:
    """Composition helpers shared by all algorithms.

    Holds the catalog, cost model, and the query; builds selection-
    pushed leaf subplans; composes joins and GroupBys with incremental
    cost book-keeping; tracks the plans-considered counter.
    """

    def __init__(
        self,
        spec: QuerySpec,
        catalog: Catalog,
        model: CostModel | None = None,
    ):
        self.spec = spec
        self.catalog = catalog
        self.model = model or SimpleCostModel()
        self.plans_considered = 0
        self._table_vars: dict[str, frozenset[str]] = {}
        for t in spec.tables:
            stats = catalog.stats(t)
            self._table_vars[t] = frozenset(stats.var_sizes)
        unknown_qv = set(spec.query_vars) - set().union(*self._table_vars.values())
        if unknown_qv:
            raise OptimizationError(
                f"query variables {sorted(unknown_qv)} not in any view table"
            )

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------
    def leaf(self, table: str) -> SubPlan:
        """Access-path selection for one base relation.

        Selections on the query are pushed down; when exactly one
        predicate applies and the catalog holds a hash index on that
        variable, the index probe is costed against Select(Scan) and
        the cheaper access path wins (the "alternative access methods"
        of Section 5.4).
        """
        stats = self.catalog.stats(table)
        predicate = {
            v: c for v, c in self.spec.selections.items() if v in stats.var_sizes
        }
        scan_plan: PlanNode = Scan(table)
        scan_cost = self.model.scan_cost(stats)
        if not predicate:
            return SubPlan(scan_plan, stats, scan_cost)

        new_stats = select_stats(stats, predicate)
        filter_cost = scan_cost + self.model.select_cost(stats, new_stats)
        best = SubPlan(Select(scan_plan, predicate), new_stats, filter_cost)

        if len(predicate) == 1:
            (var_name, value), = predicate.items()
            if self.catalog.index_on(table, var_name) is not None:
                probe_cost = self.model.index_scan_cost(stats, new_stats)
                if probe_cost < best.cost:
                    self.plans_considered += 1
                    best = SubPlan(
                        IndexScan(table, predicate), new_stats, probe_cost
                    )
        return best

    def leaves(self) -> dict[str, SubPlan]:
        return {t: self.leaf(t) for t in self.spec.tables}

    def table_variables(self, table: str) -> frozenset[str]:
        return self._table_vars[table]

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def join(self, left: SubPlan, right: SubPlan) -> SubPlan:
        stats = join_stats(left.stats, right.stats)
        cost = (
            left.cost
            + right.cost
            + self.model.join_cost(left.stats, right.stats, stats)
        )
        self.plans_considered += 1
        return SubPlan(ProductJoin(left.plan, right.plan), stats, cost)

    def group(self, child: SubPlan, group_names: Sequence[str]) -> SubPlan:
        group_names = tuple(n for n in group_names if n in child.stats.var_sizes)
        stats = group_stats(child.stats, group_names)
        cost = child.cost + self.model.group_cost(child.stats, stats)
        self.plans_considered += 1
        return SubPlan(GroupBy(child.plan, group_names), stats, cost)

    def group_if_useful(
        self, child: SubPlan, needed: frozenset[str]
    ) -> SubPlan | None:
        """GroupBy on ``needed ∩ vars(child)``, or None if it drops nothing."""
        keep = tuple(v for v in child.stats.var_sizes if v in needed)
        if len(keep) == len(child.stats.var_sizes):
            return None
        return self.group(child, keep)

    # ------------------------------------------------------------------
    # Semantic-correctness rule
    # ------------------------------------------------------------------
    def needed_variables(self, unjoined_tables: Sequence[str]) -> frozenset[str]:
        """Variables an interior GroupBy must retain.

        Query variables, plus every variable of every relation not yet
        joined in (the Chaudhuri–Shim correctness condition).
        """
        needed = set(self.spec.query_vars)
        for t in unjoined_tables:
            needed |= self._table_vars[t]
        return frozenset(needed)

    def finalize(self, root: SubPlan) -> SubPlan:
        """Add the root GroupBy on the query variables when required."""
        if set(root.stats.var_sizes) == set(self.spec.query_vars):
            # Order the output columns like the query asked.
            return root
        return self.group(root, self.spec.query_vars)


class Optimizer:
    """Base class: times the search and packages the result.

    ``clock`` is the timing source for ``planning_seconds`` — by
    default the process wall clock, but injectable so hosts under a
    controlled clock (the serving runtime's deterministic driver, guard
    tests) time planning on the same clock contract as everything else
    instead of a raw ``time.perf_counter`` call they cannot virtualize.
    """

    algorithm = "abstract"

    def optimize(
        self,
        spec: QuerySpec,
        catalog: Catalog,
        model: CostModel | None = None,
        clock: Callable[[], float] | None = None,
    ) -> OptimizationResult:
        context = PlanContext(spec, catalog, model)
        clock = clock or time.perf_counter
        start = clock()
        best = self._search(context)
        elapsed = clock() - start
        return OptimizationResult(
            plan=best.plan,
            cost=best.cost,
            algorithm=self.algorithm,
            planning_seconds=elapsed,
            plans_considered=context.plans_considered,
            extras=self._extras(),
        )

    def _search(self, context: PlanContext) -> SubPlan:
        raise NotImplementedError

    def _extras(self) -> dict:
        return {}
