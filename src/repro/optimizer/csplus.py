"""CS+ — the Chaudhuri–Shim extension for MPF queries (Algorithm 1).

CS+ annotates joins as product joins, verifies the distributivity of
the aggregate over them, and retains the semantic-correctness condition
for interior GroupBys: group on query variables plus every variable in
a join condition of a relation not yet joined.  The greedy-conservative
rule compares, at each join step, the subplan with and without a
GroupBy cap and keeps the cheaper — guaranteeing a plan no worse than
the single-root-GroupBy plan.

Two search spaces:

* :class:`CSPlusLinear` — left-deep plans (Algorithm 1 as written);
* :class:`CSPlusNonlinear` — the Section 5.1 extension: bushy dynamic
  programming where each split compares four candidates (GroupBy on
  neither / left / right / both operands).  Nonlinear plans can reduce
  a join operand *before* it is joined, which linear plans cannot —
  the advantage Figure 7 measures.
"""

from __future__ import annotations

from repro.optimizer.base import Optimizer, PlanContext, SubPlan
from repro.optimizer.joinplan import bushy_dp, linear_dp

__all__ = ["CSPlusLinear", "CSPlusNonlinear"]


class CSPlusLinear(Optimizer):
    """Algorithm 1: linear CS+ with greedy-conservative GroupBy pushdown."""

    algorithm = "cs+linear"

    def _search(self, context: PlanContext) -> SubPlan:
        leaves = [context.leaf(t) for t in context.spec.tables]
        outside = frozenset(context.spec.query_vars)
        joined = linear_dp(
            leaves, context, outside_needed=outside, use_groupbys=True
        )
        return context.finalize(joined)


class CSPlusNonlinear(Optimizer):
    """Nonlinear CS+: bushy search with the four-candidate GroupBy rule.

    Section 7.1 notes that "the nonlinear version of CS+ also considers
    linear plans": because the greedy cap rule memoizes a single
    subplan per relation subset, the bushy DP's local choices can, on
    rare adversarial instances, lead it past the best *linear* plan —
    so both searches run and the cheaper result is returned.  Table 2
    uses this plan cost as the reference optimum of GDLPlan(CS+).
    """

    algorithm = "cs+nonlinear"

    def _search(self, context: PlanContext) -> SubPlan:
        leaves = [context.leaf(t) for t in context.spec.tables]
        outside = frozenset(context.spec.query_vars)
        bushy = context.finalize(
            bushy_dp(
                leaves, context, outside_needed=outside, use_groupbys=True
            )
        )
        linear = context.finalize(
            linear_dp(
                leaves, context, outside_needed=outside, use_groupbys=True
            )
        )
        return bushy if bushy.cost <= linear.cost else linear
