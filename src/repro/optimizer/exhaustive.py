"""Exhaustive search of the GDL plan space (Definition 4).

CS+ explores GDLPlan with a *greedy-conservative* local rule: at each
join it costs at most four GroupBy-cap placements and keeps the
cheapest, so (as the paper notes after Theorem 1) "there is no
guarantee that the minimum cost plan for a query is contained in
GDLPlan(CS+)".  This optimizer finds the true optimum of the full
space by dynamic programming over *(relation subset, live variable
set)* states:

* a state ``(S, V)`` is the best plan joining exactly the relations in
  ``S`` whose output schema is ``V``;
* join transitions combine disjoint states;
* GroupBy transitions move ``(S, V) → (S, W)`` for every ``W`` between
  the semantically-required variables of ``S`` and ``V``.

The state space is exponential in both the number of relations and the
number of variables — this is a reference implementation for ablation
studies on small views (N ≲ 6), quantifying how far the polynomially
bounded heuristics land from the optimum.
"""

from __future__ import annotations

from itertools import combinations

from repro.errors import OptimizationError
from repro.optimizer.base import Optimizer, PlanContext, SubPlan

__all__ = ["ExhaustiveGDL"]

_MAX_TABLES = 10
_MAX_VARIABLES = 14


class ExhaustiveGDL(Optimizer):
    """True optimum of GDLPlan by (subset, live-variables) DP."""

    algorithm = "exhaustive-gdl"

    def _search(self, context: PlanContext) -> SubPlan:
        spec = context.spec
        tables = spec.tables
        n = len(tables)
        if n > _MAX_TABLES:
            raise OptimizationError(
                f"exhaustive search capped at {_MAX_TABLES} tables "
                f"(got {n}); use CS+/VE for larger views"
            )
        leaves = [context.leaf(t) for t in tables]
        leaf_vars = [leaf.variables for leaf in leaves]
        all_vars = frozenset().union(*leaf_vars)
        if len(all_vars) > _MAX_VARIABLES:
            raise OptimizationError(
                f"exhaustive search capped at {_MAX_VARIABLES} variables "
                f"(got {len(all_vars)})"
            )
        query_vars = frozenset(spec.query_vars)
        full = (1 << n) - 1

        def needed(mask: int) -> frozenset[str]:
            out = set(query_vars)
            for i in range(n):
                if not mask & (1 << i):
                    out |= leaf_vars[i]
            return frozenset(out)

        # states[mask] : {live-variable frozenset: best SubPlan}
        states: list[dict[frozenset[str], SubPlan]] = [
            {} for _ in range(full + 1)
        ]

        def offer(mask: int, sub: SubPlan) -> bool:
            key = sub.variables
            best = states[mask].get(key)
            if best is None or sub.cost < best.cost:
                states[mask][key] = sub
                return True
            return False

        def close_under_groupby(mask: int) -> None:
            """Add every reachable GroupBy-reduced state of the mask."""
            required = needed(mask)
            frontier = list(states[mask].values())
            while frontier:
                sub = frontier.pop()
                droppable = sorted(sub.variables - required)
                keep_base = sub.variables & required
                for r in range(len(droppable)):
                    for kept_extra in combinations(droppable, r):
                        target = frozenset(kept_extra) | keep_base
                        if target == sub.variables:
                            continue
                        grouped = context.group(sub, sorted(target))
                        if offer(mask, grouped):
                            frontier.append(grouped)

        for i, leaf in enumerate(leaves):
            offer(1 << i, leaf)
            close_under_groupby(1 << i)

        masks_by_size: list[list[int]] = [[] for _ in range(n + 1)]
        for mask in range(1, full + 1):
            masks_by_size[mask.bit_count()].append(mask)

        for size in range(2, n + 1):
            for mask in masks_by_size[size]:
                sub = (mask - 1) & mask
                while sub:
                    other = mask ^ sub
                    if sub > other:
                        for left in states[sub].values():
                            for right in states[other].values():
                                offer(mask, context.join(left, right))
                    sub = (sub - 1) & mask
                close_under_groupby(mask)

        finals = [
            context.finalize(sub) for sub in states[full].values()
        ]
        if not finals:
            raise OptimizationError("no plan found (empty view?)")
        return min(finals, key=lambda s: s.cost)
