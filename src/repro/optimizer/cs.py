"""The CS baseline: Chaudhuri–Shim without the MPF extension.

Section 5 of the paper: "As defined, the CS procedure cannot evaluate
MPF queries efficiently.  It does not consider the distributivity of
GroupBy and functional join nodes since it assumes that aggregates are
computed on a single column; not on the result of a function of many
columns.  The resulting evaluation plan would be the plan in Figure 3,
which is the best plan without any GDL optimization."

So the CS plan is: the best (Selinger left-deep) join order of the view
relations with a single GroupBy at the root.  This is what an
unmodified aggregate-aware optimizer produces for an MPF query, and the
baseline every other algorithm is compared against (Section 7.4).
"""

from __future__ import annotations

from repro.optimizer.base import Optimizer, PlanContext, SubPlan
from repro.optimizer.joinplan import linear_dp

__all__ = ["CSOptimizer"]


class CSOptimizer(Optimizer):
    """Best join order + single root GroupBy (Figure 3 shape)."""

    algorithm = "cs"

    def _search(self, context: PlanContext) -> SubPlan:
        leaves = [context.leaf(t) for t in context.spec.tables]
        joined = linear_dp(leaves, context, use_groupbys=False)
        return context.finalize(joined)
