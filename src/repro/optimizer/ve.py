"""Variable Elimination as a relational optimizer (Algorithm 2, §5.4).

Plain VE eliminates one non-query variable at a time: product-join all
relations containing it (``rels(v, S)``), then GroupBy the result down
to the variables future operators still need — the query variables and
those shared with the remaining relations (grouping on anything more
would just carry dead columns; grouping on anything less would be
incorrect by the Chaudhuri–Shim condition).  The elimination order
comes from a heuristic (:mod:`repro.optimizer.heuristics`); VE plans
are naturally nonlinear because each elimination produces a subtree
that later joins other subtrees.

The **extended space** (VE+, Section 5.4) adds two cost-based ideas
borrowed from CS+:

1. ``joinplan`` over ``rels(v)`` uses the greedy-conservative interior
   GroupBy rule of Algorithm 1, with the needed-variable set computed
   *globally* (query variables plus variables of every relation outside
   ``rels(v)``) — interior GroupBys may therefore eliminate other
   locally-finished variables early;
2. elimination is *delayed*: no GroupBy is forced after the last join.
   The variable disappears when some later GroupBy cap (considered
   before every subsequent join, or the root GroupBy) finds dropping
   it worthwhile.

Heuristic scores in extended mode are computed over *live* scopes —
processed-but-delayed variables are ignored, since pending caps will
drop them — so delaying never degrades the elimination order.
Together these give ``GDLPlan(VE) ⊂ GDLPlan(VE+) ⊂ GDLPlan(CS+)``
(Theorem 3).

Proposition 1 (FD-based pruning) is exposed via
:func:`fd_prunable_variables`: when base relations declare keys, a
variable outside every key can be dropped by mere projection; VE
eliminates such variables first since their elimination carries no
aggregation cost risk.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.optimizer.base import Optimizer, PlanContext, SubPlan
from repro.optimizer.heuristics import Candidate, choose_variable, parse_heuristic
from repro.optimizer.joinplan import linear_dp

__all__ = ["VariableElimination", "fd_prunable_variables"]


def fd_prunable_variables(
    table_vars: Mapping[str, Sequence[str]],
    table_keys: Mapping[str, Sequence[str]],
) -> frozenset[str]:
    """Variables whose elimination is a projection (Proposition 1).

    A variable ``Y`` qualifies when, for every base relation, the FD
    ``X_i -> f`` holds with ``Y ∉ X_i`` — i.e. ``Y`` appears in no
    relation's declared key.  Relations without a declared key default
    to the maximal FD (all variables are determining), which disables
    pruning for their variables.
    """
    determining: set[str] = set()
    for table, variables in table_vars.items():
        key = table_keys.get(table)
        determining |= set(key if key is not None else variables)
    all_vars = set().union(*map(set, table_vars.values())) if table_vars else set()
    return frozenset(all_vars - determining)


class VariableElimination(Optimizer):
    """Algorithm 2 with pluggable ordering heuristics and the VE+ space.

    Parameters
    ----------
    heuristic:
        ``"degree"``, ``"width"``, ``"elim_cost"``, ``"random"``, or a
        ``+``-combination such as ``"degree+width"`` (Section 5.5).
    extended:
        Enable the VE+ extended plan space (Section 5.4).
    seed:
        Seed for the ``random`` heuristic.
    table_keys:
        Optional ``{table: key variables}`` declarations enabling the
        Proposition 1 projection-based pruning.
    """

    def __init__(
        self,
        heuristic: str = "degree",
        extended: bool = False,
        seed: int | None = None,
        table_keys: Mapping[str, Sequence[str]] | None = None,
    ):
        self.heuristic = heuristic
        self.parts = parse_heuristic(heuristic)
        self.extended = extended
        self.seed = seed
        self.table_keys = dict(table_keys or {})
        self._elimination_order: list[str] = []

    @property
    def algorithm(self) -> str:
        suffix = "+ext" if self.extended else ""
        return f"ve({self.heuristic}){suffix}"

    def _extras(self) -> dict:
        return {"elimination_order": tuple(self._elimination_order)}

    # ------------------------------------------------------------------
    def _candidates(
        self,
        names: Sequence[str],
        subplans: list[SubPlan],
        processed: frozenset[str],
        query_vars: frozenset[str],
    ) -> list[Candidate]:
        """Build scoring scopes; live scopes exclude delayed variables."""
        live_of = [s.variables - processed for s in subplans]
        out: list[Candidate] = []
        for v in names:
            rels = []
            rels_live = []
            neighborhood: set[str] = set()
            outside: set[str] = set(query_vars)
            for s, live in zip(subplans, live_of):
                if v in live:
                    rels.append(s)
                    rels_live.append(frozenset(live))
                    neighborhood |= live
                else:
                    outside |= live
            if not rels:
                continue
            out.append(
                Candidate(
                    var=v,
                    rels=rels,
                    neighborhood=frozenset(neighborhood),
                    surviving=frozenset(outside),
                    rels_live=rels_live,
                )
            )
        return out

    def _search(self, context: PlanContext) -> SubPlan:
        if not self.extended:
            return self._search_mode(context, extended=False)
        # Theorem 3's practical guarantee — VE+ returns a plan no worse
        # than plain VE with the same heuristic — is enforced directly:
        # both searches are cheap, so cost the delayed-elimination plan
        # *and* the plain plan and keep the cheaper.
        delayed = self._search_mode(context, extended=True)
        delayed_order = self._elimination_order
        plain = self._search_mode(context, extended=False)
        if delayed.cost <= plain.cost:
            self._elimination_order = delayed_order
            return delayed
        return plain

    def _search_mode(self, context: PlanContext, extended: bool) -> SubPlan:
        spec = context.spec
        rng = np.random.default_rng(self.seed)
        self._elimination_order = []

        subplans: list[SubPlan] = [context.leaf(t) for t in spec.tables]
        query_vars = frozenset(spec.query_vars)
        present = set().union(*(s.variables for s in subplans))
        remaining = sorted(present - query_vars)
        processed: frozenset[str] = frozenset()

        prunable = fd_prunable_variables(
            {t: tuple(context.table_variables(t)) for t in spec.tables},
            self.table_keys,
        )

        while remaining:
            candidates = self._candidates(
                remaining, subplans, processed, query_vars
            )
            if not candidates:
                break
            # Proposition 1: projection-prunable variables are free —
            # eliminate them first regardless of the heuristic.
            free = [c for c in candidates if c.var in prunable]
            pool = free or candidates
            v = choose_variable(pool, context, self.parts, rng)
            self._elimination_order.append(v)
            chosen = next(c for c in pool if c.var == v)
            rels = chosen.rels
            rel_ids = {id(s) for s in rels}
            others = [s for s in subplans if id(s) not in rel_ids]

            if extended:
                outside = query_vars.union(*(s.variables for s in others)) \
                    if others else query_vars
                p = linear_dp(
                    rels, context, outside_needed=outside, use_groupbys=True
                )
            else:
                joined = linear_dp(rels, context, use_groupbys=False)
                needed = set(query_vars)
                for s in others:
                    needed |= s.variables
                keep = [
                    x for x in joined.stats.var_sizes
                    if x != v and x in needed
                ]
                p = context.group(joined, keep)

            subplans = others + [p]
            processed = processed | {v}
            # The GroupBy may have dropped additional locally-finished
            # variables; anything no longer live anywhere is done.
            still_live = set().union(
                *((s.variables - processed) for s in subplans)
            )
            remaining = [x for x in remaining if x != v and x in still_live]

        if len(subplans) > 1:
            final = linear_dp(
                subplans,
                context,
                outside_needed=query_vars,
                use_groupbys=extended,
            )
        else:
            final = subplans[0]
        return context.finalize(final)
