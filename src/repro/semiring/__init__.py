"""Commutative semirings for MPF measures (Section 2 of the paper)."""

from repro.semiring.base import Semiring
from repro.semiring.builtins import (
    ALL_SEMIRINGS,
    BOOLEAN,
    COUNTING,
    LOG_PROB,
    MAX_PRODUCT,
    MAX_SUM,
    MIN_PRODUCT,
    MIN_SUM,
    SUM_PRODUCT,
    by_name,
)

__all__ = [
    "Semiring",
    "SUM_PRODUCT",
    "MIN_SUM",
    "MAX_SUM",
    "MIN_PRODUCT",
    "MAX_PRODUCT",
    "BOOLEAN",
    "COUNTING",
    "LOG_PROB",
    "ALL_SEMIRINGS",
    "by_name",
]
