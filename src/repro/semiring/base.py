"""Commutative semiring abstraction underlying the MPF setting.

Section 2 of the paper defines MPF queries over measures drawn from an
arbitrary commutative semiring: a set closed under an additive and a
multiplicative operation, both associative and commutative, with the
additive operation distributing over the multiplicative one, and both
identity elements present.

The two operations appear in the relational algebra as:

* ``times`` — the measure combination used by the *product join*
  (Definition 2),
* ``plus`` — the aggregate ``AGG`` used by marginalization / GroupBy
  (Definition 3).

The *update semijoin* of Definition 6 additionally needs a division
operation (the inverse of ``times``); semirings that provide one set
``supports_division`` and implement :meth:`Semiring.divide`.

All operations are vectorized over numpy arrays so the physical
operators can process whole columns at once.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SemiringError

__all__ = ["Semiring"]


class Semiring:
    """A commutative semiring over numpy-representable values.

    Parameters
    ----------
    name:
        Human-readable identifier, e.g. ``"sum_product"``.
    plus:
        Vectorized binary additive operation (the marginalization
        aggregate).
    times:
        Vectorized binary multiplicative operation (the product-join
        combiner).
    zero:
        Additive identity (and multiplicative annihilator).
    one:
        Multiplicative identity.
    dtype:
        The numpy dtype measures are stored in.
    divide:
        Optional vectorized inverse of ``times``.  Required by the
        update semijoin (Definition 6) and Belief Propagation's
        backward pass.
    plus_at:
        Optional unbuffered scatter-reduce ``op.at(out, idx, vals)``
        used for fast grouped aggregation.  When omitted, grouped
        aggregation falls back to a sort-based segment reduction.
    plus_reduceat:
        Optional ufunc whose ``reduceat`` implements ``plus`` over
        contiguous segments.  When the caller supplies a precomputed
        sorted order (see :meth:`aggregate`'s ``segments``), the
        aggregation runs as one ``reduceat`` over the sorted values —
        no scatter, no re-sort.  Only safe for semirings where the
        segment fold is bit-identical to the scatter fold: idempotent
        ``plus`` (min/max/or — order-free and exact) and ``logaddexp``
        (``logaddexp(zero, v) == v`` exactly, and both folds apply the
        same operations in the same order over a stable sort).
    idempotent_plus:
        Whether ``plus(a, a) == a`` (true for min/max semirings).
        Idempotent aggregation tolerates duplicated propagation, which
        matters for Belief Propagation on cyclic schemas.
    idempotent_times:
        Whether ``times(a, a) == a`` (true for the boolean semiring).
        When a semiring lacks division but has idempotent times,
        Belief Propagation's backward pass can reuse the product
        semijoin: re-absorbing a message is a no-op.
    """

    def __init__(
        self,
        name: str,
        plus: Callable[[np.ndarray, np.ndarray], np.ndarray],
        times: Callable[[np.ndarray, np.ndarray], np.ndarray],
        zero,
        one,
        dtype=np.float64,
        divide: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
        plus_at: Callable[[np.ndarray, np.ndarray, np.ndarray], None] | None = None,
        plus_reduceat: np.ufunc | None = None,
        idempotent_plus: bool = False,
        idempotent_times: bool = False,
    ):
        self.name = name
        self._plus = plus
        self._times = times
        self.zero = zero
        self.one = one
        self.dtype = np.dtype(dtype)
        self._divide = divide
        self._plus_at = plus_at
        self._plus_reduceat = plus_reduceat
        self.idempotent_plus = idempotent_plus
        self.idempotent_times = idempotent_times

    # ------------------------------------------------------------------
    # Scalar / vector operations
    # ------------------------------------------------------------------
    def plus(self, a, b):
        """Additive operation (marginalization aggregate)."""
        return self._plus(a, b)

    def times(self, a, b):
        """Multiplicative operation (product-join combiner)."""
        return self._times(a, b)

    @property
    def supports_division(self) -> bool:
        """Whether :meth:`divide` is available (update semijoin needs it)."""
        return self._divide is not None

    def divide(self, a, b):
        """Inverse of ``times``; raises :class:`SemiringError` if undefined."""
        if self._divide is None:
            raise SemiringError(
                f"semiring {self.name!r} does not support division; the "
                "update semijoin (Definition 6) is unavailable on it"
            )
        return self._divide(a, b)

    # ------------------------------------------------------------------
    # Aggregation helpers
    # ------------------------------------------------------------------
    def zeros(self, n: int) -> np.ndarray:
        """A length-``n`` measure column of additive identities."""
        return np.full(n, self.zero, dtype=self.dtype)

    def ones(self, n: int) -> np.ndarray:
        """A length-``n`` measure column of multiplicative identities."""
        return np.full(n, self.one, dtype=self.dtype)

    def aggregate(
        self,
        values: np.ndarray,
        group_ids: np.ndarray,
        n_groups: int,
        segments: "tuple[np.ndarray, np.ndarray] | None" = None,
    ) -> np.ndarray:
        """Reduce ``values`` with ``plus`` within each group.

        ``group_ids`` assigns every value to a group in
        ``range(n_groups)``; the result has one reduced measure per
        group (groups with no members get the additive identity).

        ``segments`` optionally supplies a precomputed ``(order,
        starts)`` pair — a stable argsort of ``group_ids`` and the
        start offset of each group's run, with every group non-empty
        (the shape a cached :class:`~repro.algebra.groupindex
        .GroupIndex` provides).  Semirings with a ``plus_reduceat``
        ufunc then aggregate as one segment ``reduceat`` over the
        pre-sorted values, skipping both the scatter and any re-sort;
        the result is bit-identical to the scatter path.
        """
        values = np.asarray(values, dtype=self.dtype)
        out = self.zeros(n_groups)
        if len(values) == 0:
            return out
        if segments is not None and self._plus_reduceat is not None:
            order, starts = segments
            return self._plus_reduceat.reduceat(
                values[order], starts
            ).astype(self.dtype, copy=False)
        if self._plus_at is not None:
            self._plus_at(out, group_ids, values)
            return out
        # Sort-based segment reduction fallback for exotic semirings.
        order = np.argsort(group_ids, kind="stable")
        sorted_ids = group_ids[order]
        sorted_vals = values[order]
        boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(sorted_ids)]))
        for start, end in zip(starts, ends):
            acc = sorted_vals[start]
            for k in range(start + 1, end):
                acc = self._plus(acc, sorted_vals[k])
            out[sorted_ids[start]] = acc
        return out

    def reduce(self, values: np.ndarray):
        """Reduce a whole measure column to a single value with ``plus``."""
        values = np.asarray(values, dtype=self.dtype)
        if len(values) == 0:
            return self.dtype.type(self.zero)
        return self.aggregate(values, np.zeros(len(values), dtype=np.int64), 1)[0]

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def close(self, a, b, rtol: float = 1e-9, atol: float = 1e-12) -> bool:
        """Compare measure values with dtype-appropriate tolerance."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        if a.shape != b.shape:
            return False
        if self.dtype.kind == "f":
            return bool(np.allclose(a, b, rtol=rtol, atol=atol, equal_nan=True))
        return bool(np.array_equal(a, b))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Semiring({self.name!r})"
