"""The concrete semirings used throughout the paper.

* ``SUM_PRODUCT`` — probabilistic inference: product join multiplies
  local probabilities, marginalization sums them out (Section 4).
* ``MIN_SUM`` — tropical semiring: additive costs combined by ``+``,
  queries ask for minima ("What is the minimum investment on each
  part?", Section 3.1).
* ``MAX_SUM`` — mirror of ``MIN_SUM`` for maximization problems.
* ``MIN_PRODUCT`` / ``MAX_PRODUCT`` — multiplicative measures with
  min/max aggregation (``MAX_PRODUCT`` is the most-probable-explanation
  semiring on probabilities).
* ``SUM_SUM`` — both operations additive is *not* a semiring; what
  decision-support totals actually use is product-join ``*`` with
  aggregate ``SUM`` (``SUM_PRODUCT``) or ``+`` with ``MIN``/``MAX``.
  We therefore do not export a ``SUM_SUM``.
* ``BOOLEAN`` — ({0,1}, ∨, ∧): reachability / satisfiability style
  queries, explicitly called out as an allowable domain in Section 2.
* ``COUNTING`` — integer sum/product, used for deriving counts from
  data when estimating Bayesian network parameters (Section 4).

Division (needed by Definition 6's update semijoin and Belief
Propagation) follows the conventions of the junction-tree literature:
``0 / 0 = 0`` in sum-product, and ``∞ - ∞ = ∞`` in min-sum.
"""

from __future__ import annotations

import numpy as np

from repro.semiring.base import Semiring

__all__ = [
    "SUM_PRODUCT",
    "LOG_PROB",
    "MIN_SUM",
    "MAX_SUM",
    "MIN_PRODUCT",
    "MAX_PRODUCT",
    "BOOLEAN",
    "COUNTING",
    "ALL_SEMIRINGS",
    "by_name",
]


def _safe_divide(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Real division with the junction-tree convention ``0 / 0 = 0``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    out = np.zeros(np.broadcast(a, b).shape, dtype=np.float64)
    np.divide(a, b, out=out, where=(b != 0))
    return out


def _tropical_subtract(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Subtraction in (min, +), with ``inf - inf = inf`` (zero / zero = zero)."""
    a, b = np.broadcast_arrays(
        np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)
    )
    with np.errstate(invalid="ignore"):
        out = a - b
    both_inf = np.isinf(a) & np.isinf(b) & (np.sign(a) == np.sign(b))
    return np.where(both_inf, a, out)


SUM_PRODUCT = Semiring(
    name="sum_product",
    plus=np.add,
    times=np.multiply,
    zero=0.0,
    one=1.0,
    dtype=np.float64,
    divide=_safe_divide,
    plus_at=np.add.at,
)
"""(R≥0, +, ×): probability marginalization; ``SUM`` aggregate."""

MIN_SUM = Semiring(
    name="min_sum",
    plus=np.minimum,
    times=np.add,
    zero=np.inf,
    one=0.0,
    dtype=np.float64,
    divide=_tropical_subtract,
    plus_at=np.minimum.at,
    plus_reduceat=np.minimum,
    idempotent_plus=True,
)
"""(R∪{∞}, min, +): additive costs; ``MIN`` aggregate."""

MAX_SUM = Semiring(
    name="max_sum",
    plus=np.maximum,
    times=np.add,
    zero=-np.inf,
    one=0.0,
    dtype=np.float64,
    divide=_tropical_subtract,
    plus_at=np.maximum.at,
    plus_reduceat=np.maximum,
    idempotent_plus=True,
)
"""(R∪{-∞}, max, +): additive rewards; ``MAX`` aggregate."""

def _minprod_times(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Multiplication on [0, ∞] with the annihilator convention 0·∞ = ∞.

    The additive identity ∞ must absorb products for (min, ×) to be a
    semiring; IEEE's 0·∞ = NaN would break distributivity at
    (0, 0, ∞).
    """
    a, b = np.broadcast_arrays(
        np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)
    )
    with np.errstate(invalid="ignore"):
        out = a * b
    either_inf = np.isinf(a) | np.isinf(b)
    return np.where(either_inf, np.inf, out)


def _minprod_divide(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_minprod_times`: ∞/∞ = ∞ (zero/zero = zero)."""
    a, b = np.broadcast_arrays(
        np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)
    )
    with np.errstate(invalid="ignore", divide="ignore"):
        out = np.where(b != 0, a / b, np.where(a == 0, 0.0, np.inf))
    both_inf = np.isinf(a) & np.isinf(b)
    return np.where(both_inf, np.inf, out)


MIN_PRODUCT = Semiring(
    name="min_product",
    plus=np.minimum,
    times=_minprod_times,
    zero=np.inf,
    one=1.0,
    dtype=np.float64,
    divide=_minprod_divide,
    plus_at=np.minimum.at,
    plus_reduceat=np.minimum,
    idempotent_plus=True,
)
"""([0, ∞], min, ×): multiplicative overheads; ``MIN`` aggregate."""

MAX_PRODUCT = Semiring(
    name="max_product",
    plus=np.maximum,
    times=np.multiply,
    zero=0.0,
    one=1.0,
    dtype=np.float64,
    divide=_safe_divide,
    plus_at=np.maximum.at,
    plus_reduceat=np.maximum,
    idempotent_plus=True,
)
"""(R≥0, max, ×): most-probable-explanation queries; ``MAX`` aggregate."""

BOOLEAN = Semiring(
    name="boolean",
    plus=np.logical_or,
    times=np.logical_and,
    zero=False,
    one=True,
    dtype=np.bool_,
    divide=None,
    plus_at=np.logical_or.at,
    plus_reduceat=np.logical_or,
    idempotent_plus=True,
    idempotent_times=True,
)
"""({0,1}, ∨, ∧): the boolean allowable domain of Section 2."""

LOG_PROB = Semiring(
    name="log_prob",
    plus=np.logaddexp,
    times=np.add,
    zero=-np.inf,
    one=0.0,
    dtype=np.float64,
    divide=_tropical_subtract,
    plus_at=np.logaddexp.at,
    plus_reduceat=np.logaddexp,
)
"""(R∪{-∞}, logaddexp, +): sum-product in log space.

Isomorphic to ``SUM_PRODUCT`` under ``exp`` but numerically stable for
long products of small probabilities (deep chains, many-variable
networks); the aggregate is the log-sum-exp."""

COUNTING = Semiring(
    name="counting",
    plus=np.add,
    times=np.multiply,
    zero=0,
    one=1,
    dtype=np.int64,
    divide=None,
    plus_at=np.add.at,
)
"""(N, +, ×): joint counts for parameter estimation (Section 4)."""

ALL_SEMIRINGS = (
    SUM_PRODUCT,
    LOG_PROB,
    MIN_SUM,
    MAX_SUM,
    MIN_PRODUCT,
    MAX_PRODUCT,
    BOOLEAN,
    COUNTING,
)

_BY_NAME = {s.name: s for s in ALL_SEMIRINGS}
# Aggregate-name aliases used by the SQL-ish parser: the aggregate in an
# MPF query selects the semiring's additive operation.
_BY_NAME.update(
    {
        "sum": SUM_PRODUCT,
        "min": MIN_SUM,
        "max": MAX_SUM,
        "or": BOOLEAN,
        "count": COUNTING,
    }
)


def by_name(name: str) -> Semiring:
    """Look up a builtin semiring by name or aggregate alias."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown semiring {name!r}; known: {sorted(_BY_NAME)}"
        ) from None
