"""Functional relations (Definition 1 of the paper).

A functional relation (FR) is a relation with schema
``{A1, ..., Am, f}`` where the functional dependency
``A1 A2 ... Am -> f`` holds: the variables determine a single measure
value.  Any classical relation is an FR with an implicit measure equal
to the multiplicative identity of the semiring.

Storage is columnar: one int64 code array per variable plus one measure
array.  All physical operators (join, marginalize, select, semijoins)
are vectorized over these columns.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.data.domain import Variable, VariableSet, domain_product
from repro.data.encoding import encode_rows
from repro.errors import FunctionalDependencyError, SchemaError
from repro.semiring.base import Semiring

__all__ = ["FunctionalRelation"]

# Process-wide monotonic id source for relation fingerprints.  A
# fingerprint identifies one immutable relation *instance*: every
# construction path (including take/rename/with_measure/copy) mints a
# fresh one, so a rebuilt table can never be confused with the data it
# replaced — cache entries keyed on the old fingerprint simply age out.
_FINGERPRINTS = itertools.count(1)


class FunctionalRelation:
    """A disk-resident-style functional relation over coded variables.

    Parameters
    ----------
    variables:
        The non-measure attributes, ``Var(s)`` in the paper.
    columns:
        Mapping from variable name to an int64 code column; all columns
        must share one length.
    measure:
        The measure column ``s[f]``; same length as the variable
        columns.
    name:
        Optional relation name (used by the catalog and plan printer).
    measure_name:
        Name of the measure attribute (``f`` by default; the
        supply-chain schema uses e.g. ``price``, ``w_factor``).
    check_fd:
        Validate the defining FD on construction.  On by default;
        operators that construct provably-FD-preserving outputs skip
        the check.
    """

    __slots__ = (
        "variables", "columns", "measure", "name", "measure_name",
        "_fingerprint",
    )

    def __init__(
        self,
        variables: VariableSet | Sequence[Variable],
        columns: Mapping[str, np.ndarray],
        measure: np.ndarray,
        name: str | None = None,
        measure_name: str = "f",
        check_fd: bool = True,
    ):
        if not isinstance(variables, VariableSet):
            variables = VariableSet.of(variables)
        self.variables = variables
        self.measure = np.asarray(measure)
        self.name = name
        self.measure_name = measure_name
        self._fingerprint = next(_FINGERPRINTS)

        n = len(self.measure)
        coerced: dict[str, np.ndarray] = {}
        for v in variables:
            if v.name not in columns:
                raise SchemaError(f"missing column for variable {v.name!r}")
            col = np.asarray(columns[v.name], dtype=np.int64)
            if len(col) != n:
                raise SchemaError(
                    f"column {v.name!r} has {len(col)} rows, measure has {n}"
                )
            if n and (col.min() < 0 or col.max() >= v.size):
                raise SchemaError(
                    f"column {v.name!r} contains codes outside domain "
                    f"size {v.size}"
                )
            coerced[v.name] = col
        extra = set(columns) - set(variables.names)
        if extra:
            raise SchemaError(f"columns {sorted(extra)} not in variable set")
        self.columns = coerced

        if check_fd:
            self._validate_fd()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(
        cls,
        variables: Sequence[Variable],
        rows: Iterable[tuple],
        name: str | None = None,
        measure_name: str = "f",
        dtype=np.float64,
    ) -> "FunctionalRelation":
        """Build from ``(v1, ..., vm, f)`` tuples (labels or codes)."""
        variables = VariableSet.of(variables)
        rows = list(rows)
        cols: dict[str, list[int]] = {v.name: [] for v in variables}
        measure = []
        for row in rows:
            if len(row) != len(variables) + 1:
                raise SchemaError(
                    f"row {row!r} has {len(row)} fields, expected "
                    f"{len(variables) + 1}"
                )
            for v, value in zip(variables, row[:-1]):
                cols[v.name].append(v.domain.code_of(value))
            measure.append(row[-1])
        columns = {k: np.asarray(vals, dtype=np.int64) for k, vals in cols.items()}
        return cls(
            variables,
            columns,
            np.asarray(measure, dtype=dtype),
            name=name,
            measure_name=measure_name,
        )

    @classmethod
    def constant(
        cls,
        value,
        name: str | None = None,
        dtype=np.float64,
    ) -> "FunctionalRelation":
        """A zero-variable FR holding a single measure value.

        This is what marginalizing out *all* variables produces — the
        total mass of the function.
        """
        return cls(
            VariableSet(),
            {},
            np.asarray([value], dtype=dtype),
            name=name,
            check_fd=False,
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> int:
        """Process-unique id of this relation instance.

        Relations are treated as immutable once constructed; the
        fingerprint is the cache identity used by
        :mod:`repro.algebra.groupindex` — two relations with equal
        contents but separate construction histories never share one.
        """
        return self._fingerprint

    @property
    def ntuples(self) -> int:
        return len(self.measure)

    @property
    def arity(self) -> int:
        return len(self.variables)

    @property
    def var_names(self) -> tuple[str, ...]:
        return self.variables.names

    def domain_size(self) -> int:
        """Cross-product size of the variables' domains."""
        return domain_product(self.variables)

    def is_complete(self) -> bool:
        """Whether every combination of variable values is present.

        Probability functions are complete in principle (Section 2);
        the synthetic views of Section 7.3 are built complete.
        """
        return self.ntuples == self.domain_size()

    # ------------------------------------------------------------------
    # Keys and lookup
    # ------------------------------------------------------------------
    def key_codes(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Composite int64 keys over the named columns (all by default)."""
        if names is None:
            names = self.var_names
        if not names:
            return np.zeros(self.ntuples, dtype=np.int64)
        cols = [self.columns[n] for n in names]
        sizes = tuple(self.variables[n].size for n in names)
        return encode_rows(cols, sizes)

    def value_at(self, assignment: Mapping[str, object]):
        """Measure value for one full variable assignment.

        Raises ``KeyError`` when the assignment has no row (incomplete
        relations); this is a point lookup, not a query.
        """
        mask = np.ones(self.ntuples, dtype=bool)
        for name, value in assignment.items():
            code = self.variables[name].domain.code_of(value)
            mask &= self.columns[name] == code
        idx = np.flatnonzero(mask)
        if len(idx) == 0:
            raise KeyError(f"no row for {dict(assignment)!r}")
        if len(idx) > 1:
            raise FunctionalDependencyError(
                f"{len(idx)} rows for {dict(assignment)!r}"
            )
        return self.measure[idx[0]]

    # ------------------------------------------------------------------
    # Validation / comparison
    # ------------------------------------------------------------------
    def _validate_fd(self) -> None:
        if self.ntuples == 0 or self.arity == 0:
            if self.arity == 0 and self.ntuples > 1:
                raise FunctionalDependencyError(
                    "zero-variable relation with multiple rows"
                )
            return
        keys = self.key_codes()
        unique_keys, first_idx = np.unique(keys, return_index=True)
        if len(unique_keys) == len(keys):
            return
        # Find an offending pair for the error message.
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        dup_pos = np.flatnonzero(sorted_keys[1:] == sorted_keys[:-1])[0]
        i, j = order[dup_pos], order[dup_pos + 1]
        row = {n: int(self.columns[n][i]) for n in self.var_names}
        raise FunctionalDependencyError(
            f"FD violated: rows {i} and {j} share variables {row} with "
            f"measures {self.measure[i]!r} and {self.measure[j]!r}"
        )

    def sorted_snapshot(self) -> tuple[np.ndarray, np.ndarray]:
        """(keys, measures) sorted by key — canonical form for equality."""
        keys = self.key_codes()
        order = np.argsort(keys, kind="stable")
        return keys[order], self.measure[order]

    def equals(
        self,
        other: "FunctionalRelation",
        semiring: Semiring | None = None,
        ignore_zero_rows: bool = False,
    ) -> bool:
        """Equality as functions, up to row order.

        With ``ignore_zero_rows``, rows carrying the semiring's additive
        identity are treated as absent (an incomplete relation encodes
        the same function as its zero-padded completion).
        """
        if set(self.var_names) != set(other.var_names):
            return False
        other_aligned = other.reorder(self.var_names)
        left, right = self, other_aligned
        if ignore_zero_rows:
            if semiring is None:
                raise SchemaError("ignore_zero_rows requires a semiring")
            left = left.drop_zero_rows(semiring)
            right = right.drop_zero_rows(semiring)
        if left.ntuples != right.ntuples:
            return False
        k1, m1 = left.sorted_snapshot()
        k2, m2 = right.sorted_snapshot()
        if not np.array_equal(k1, k2):
            return False
        if semiring is not None:
            return semiring.close(m1, m2)
        return bool(np.allclose(m1, m2))

    def drop_zero_rows(self, semiring: Semiring) -> "FunctionalRelation":
        """Remove rows whose measure is the additive identity."""
        zero = semiring.dtype.type(semiring.zero)
        mask = self.measure != zero
        return self.take(np.flatnonzero(mask))

    # ------------------------------------------------------------------
    # Row / column manipulation
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "FunctionalRelation":
        """Row subset by positional indices (FD-preserving)."""
        return FunctionalRelation(
            self.variables,
            {n: self.columns[n][indices] for n in self.var_names},
            self.measure[indices],
            name=self.name,
            measure_name=self.measure_name,
            check_fd=False,
        )

    def reorder(self, names: Sequence[str]) -> "FunctionalRelation":
        """Reorder the variable list (no data movement)."""
        if set(names) != set(self.var_names):
            raise SchemaError(
                f"reorder needs a permutation of {self.var_names}, got {names}"
            )
        ordered = VariableSet.of([self.variables[n] for n in names])
        return FunctionalRelation(
            ordered,
            self.columns,
            self.measure,
            name=self.name,
            measure_name=self.measure_name,
            check_fd=False,
        )

    def rename(self, mapping: Mapping[str, str]) -> "FunctionalRelation":
        """Rename variables; domains are carried over unchanged."""
        new_vars = []
        new_cols = {}
        for v in self.variables:
            new_name = mapping.get(v.name, v.name)
            new_vars.append(Variable(new_name, v.domain))
            new_cols[new_name] = self.columns[v.name]
        return FunctionalRelation(
            VariableSet.of(new_vars),
            new_cols,
            self.measure,
            name=self.name,
            measure_name=self.measure_name,
            check_fd=False,
        )

    def with_name(self, name: str) -> "FunctionalRelation":
        return FunctionalRelation(
            self.variables,
            self.columns,
            self.measure,
            name=name,
            measure_name=self.measure_name,
            check_fd=False,
        )

    def with_measure(self, measure: np.ndarray) -> "FunctionalRelation":
        """Same rows, new measure column (FD trivially preserved)."""
        if len(measure) != self.ntuples:
            raise SchemaError("measure length mismatch")
        return FunctionalRelation(
            self.variables,
            self.columns,
            np.asarray(measure),
            name=self.name,
            measure_name=self.measure_name,
            check_fd=False,
        )

    def copy(self) -> "FunctionalRelation":
        return FunctionalRelation(
            self.variables,
            {n: self.columns[n].copy() for n in self.var_names},
            self.measure.copy(),
            name=self.name,
            measure_name=self.measure_name,
            check_fd=False,
        )

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def iter_rows(self, labels: bool = False):
        """Yield ``(v1, ..., vm, f)`` tuples; labels decodes domains."""
        for i in range(self.ntuples):
            values = []
            for v in self.variables:
                code = int(self.columns[v.name][i])
                values.append(v.domain.label_of(code) if labels else code)
            values.append(self.measure[i])
            yield tuple(values)

    def to_dict(self) -> dict[tuple, object]:
        """Mapping from variable-code tuples to measure values."""
        return {row[:-1]: row[-1] for row in self.iter_rows()}

    def head(self, n: int = 10, labels: bool = True) -> str:
        """Formatted preview of the first ``n`` rows."""
        header = list(self.var_names) + [self.measure_name]
        lines = ["\t".join(header)]
        for i, row in enumerate(self.iter_rows(labels=labels)):
            if i >= n:
                lines.append(f"... ({self.ntuples - n} more rows)")
                break
            lines.append("\t".join(str(x) for x in row))
        return "\n".join(lines)

    def __repr__(self) -> str:
        label = self.name or "<anonymous>"
        return (
            f"FunctionalRelation({label}: vars={list(self.var_names)}, "
            f"ntuples={self.ntuples})"
        )
