"""Row-key encoding shared by join and marginalization.

Both the product join and GroupBy need to treat a subset of columns as
a single composite key.  When the mixed-radix product of domain sizes
fits in an ``int64`` we encode directly (fast path); otherwise we fall
back to a lexicographic rank computed via ``np.unique`` over stacked
columns, which is slower but exact for arbitrarily large key spaces.
"""

from __future__ import annotations

import numpy as np

__all__ = ["encode_rows", "encode_rows_pair", "MIXED_RADIX_LIMIT"]

# Stay well below 2**63 so intermediate multiply-adds cannot overflow.
MIXED_RADIX_LIMIT = 2**62


def _fits_mixed_radix(sizes: tuple[int, ...]) -> bool:
    total = 1
    for s in sizes:
        total *= int(s)
        if total >= MIXED_RADIX_LIMIT:
            return False
    return True


def _mixed_radix(columns: list[np.ndarray], sizes: tuple[int, ...]) -> np.ndarray:
    n = len(columns[0]) if columns else 0
    keys = np.zeros(n, dtype=np.int64)
    for col, size in zip(columns, sizes):
        keys *= int(size)
        keys += col
    return keys


def encode_rows(columns: list[np.ndarray], sizes: tuple[int, ...]) -> np.ndarray:
    """Encode rows of the given columns into 1-D int64 keys.

    Keys preserve the lexicographic order of the columns.  With no
    columns, every row gets key 0 (a single group / full cross join).
    """
    if not columns:
        # Zero-column key: the caller supplies the row count separately,
        # so an empty list means "no key columns"; callers pass at least
        # the measure length via the first column otherwise.
        raise ValueError("encode_rows requires at least one column; "
                         "handle the empty-key case at the call site")
    if _fits_mixed_radix(sizes):
        return _mixed_radix(columns, sizes)
    stacked = np.column_stack(columns)
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    # NumPy 2.0 returned the inverse of an axis=0 unique with an extra
    # dimension (fixed in 2.1); flatten so every install agrees.
    return inverse.reshape(-1).astype(np.int64, copy=False)


def encode_rows_pair(
    left_columns: list[np.ndarray],
    right_columns: list[np.ndarray],
    sizes: tuple[int, ...],
) -> tuple[np.ndarray, np.ndarray]:
    """Encode two relations' key columns into one comparable key space.

    Used by the join: the i-th left column and i-th right column hold
    the same variable.  Returns ``(left_keys, right_keys)`` such that
    rows match iff their keys are equal.
    """
    if not left_columns:
        raise ValueError("encode_rows_pair requires at least one column")
    if _fits_mixed_radix(sizes):
        return _mixed_radix(left_columns, sizes), _mixed_radix(right_columns, sizes)
    n_left = len(left_columns[0])
    stacked = np.column_stack(
        [np.concatenate([lc, rc]) for lc, rc in zip(left_columns, right_columns)]
    )
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    # Same NumPy 2.0 inverse-shape hardening as encode_rows.
    inverse = inverse.reshape(-1).astype(np.int64, copy=False)
    return inverse[:n_left], inverse[n_left:]
