"""Durable serialization of functional relations.

Checkpoints persist relations in two layers so that structure and bulk
data can be validated independently:

* a JSON-safe **meta** dict (variables, domains, measure dtype, row
  count) that lives in the checkpoint manifest, and
* a raw **payload** — the packed column bytes, split into checksummed
  :class:`~repro.storage.page.PageImage` frames by the checkpoint
  writer.

A fully JSON form (:func:`relation_to_dict`) also exists for small
relations embedded in WAL records (durable per-query results).  Floats
survive JSON exactly: ``repr`` of a float64 is its shortest round-trip
representation, so ``json.dumps`` → ``json.loads`` is lossless.
"""

from __future__ import annotations

import numpy as np

from repro.data.domain import Domain, Variable, VariableSet
from repro.data.relation import FunctionalRelation
from repro.errors import RecoveryError

__all__ = [
    "relation_meta",
    "relation_payload",
    "relation_from_payload",
    "relation_to_dict",
    "relation_from_dict",
]


def _variable_to_dict(v: Variable) -> dict:
    labels = v.domain.labels
    return {
        "name": v.name,
        "domain": {
            "name": v.domain.name,
            "size": v.domain.size,
            "labels": list(labels) if labels is not None else None,
        },
    }


def _variable_from_dict(d: dict) -> Variable:
    dom = d["domain"]
    labels = dom["labels"]
    return Variable(
        d["name"],
        Domain(
            dom["name"],
            dom["size"],
            tuple(labels) if labels is not None else None,
        ),
    )


def relation_meta(relation: FunctionalRelation) -> dict:
    """JSON-safe structural description of a relation (no bulk data)."""
    return {
        "name": relation.name,
        "measure_name": relation.measure_name,
        "variables": [_variable_to_dict(v) for v in relation.variables],
        "ntuples": relation.ntuples,
        "dtype": str(relation.measure.dtype),
    }


def relation_payload(relation: FunctionalRelation) -> bytes:
    """Packed column bytes: each variable column in order, then measure."""
    parts = [relation.columns[n].tobytes() for n in relation.var_names]
    parts.append(relation.measure.tobytes())
    return b"".join(parts)


def relation_from_payload(meta: dict, payload: bytes) -> FunctionalRelation:
    """Rebuild a relation from its meta dict and packed payload bytes.

    Raises :class:`~repro.errors.RecoveryError` when the payload length
    does not match the meta's row count — a truncated or mismatched
    checkpoint, not a schema bug.
    """
    variables = VariableSet.of([_variable_from_dict(d) for d in meta["variables"]])
    n = int(meta["ntuples"])
    dtype = np.dtype(meta["dtype"])
    expected = 8 * len(variables) * n + dtype.itemsize * n
    if len(payload) != expected:
        raise RecoveryError(
            f"relation {meta['name']!r}: payload is {len(payload)} bytes, "
            f"expected {expected} for {n} rows"
        )
    columns: dict[str, np.ndarray] = {}
    offset = 0
    for v in variables:
        width = 8 * n
        columns[v.name] = np.frombuffer(
            payload, dtype=np.int64, count=n, offset=offset
        ).copy()
        offset += width
    measure = np.frombuffer(payload, dtype=dtype, count=n, offset=offset).copy()
    return FunctionalRelation(
        variables,
        columns,
        measure,
        name=meta["name"],
        measure_name=meta["measure_name"],
        check_fd=False,
    )


def _measure_scalar(value, kind: str):
    if kind == "f":
        return float(value)
    if kind == "b":
        return bool(value)
    return int(value)


def relation_to_dict(relation: FunctionalRelation) -> dict:
    """Fully-JSON form: meta plus explicit column and measure lists."""
    kind = relation.measure.dtype.kind
    return {
        "meta": relation_meta(relation),
        "columns": {
            n: [int(x) for x in relation.columns[n]]
            for n in relation.var_names
        },
        "measure": [_measure_scalar(x, kind) for x in relation.measure],
    }


def relation_from_dict(d: dict) -> FunctionalRelation:
    """Inverse of :func:`relation_to_dict` (bit-exact for float64)."""
    meta = d["meta"]
    variables = VariableSet.of([_variable_from_dict(v) for v in meta["variables"]])
    dtype = np.dtype(meta["dtype"])
    columns = {
        name: np.asarray(values, dtype=np.int64)
        for name, values in d["columns"].items()
    }
    return FunctionalRelation(
        variables,
        columns,
        np.asarray(d["measure"], dtype=dtype),
        name=meta["name"],
        measure_name=meta["measure_name"],
        check_fd=False,
    )
