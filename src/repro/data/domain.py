"""Domains and variables.

MPF queries operate over discrete variables (the non-measure attributes
of functional relations).  A :class:`Domain` is a finite categorical
set; values are stored as integer codes ``0..size-1``, with optional
human-readable labels.  A :class:`Variable` binds a name to a domain —
e.g. in the supply-chain schema of Figure 1, ``pid`` ranges over a
domain of 100K part identifiers (Table 1).

Two relations join on variables of the same *name*; we require those
variables to reference equal domains so the join is well defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.errors import SchemaError

__all__ = ["Domain", "Variable", "VariableSet", "domain_product"]


@dataclass(frozen=True)
class Domain:
    """A finite categorical domain of ``size`` values coded ``0..size-1``."""

    name: str
    size: int
    labels: tuple | None = None

    def __post_init__(self):
        if self.size <= 0:
            raise SchemaError(f"domain {self.name!r} must have positive size")
        if self.labels is not None and len(self.labels) != self.size:
            raise SchemaError(
                f"domain {self.name!r}: {len(self.labels)} labels for "
                f"size {self.size}"
            )

    def codes(self) -> np.ndarray:
        """All codes of the domain, in order."""
        return np.arange(self.size, dtype=np.int64)

    def label_of(self, code: int):
        """Human-readable label for ``code`` (the code itself if unlabeled)."""
        if self.labels is None:
            return int(code)
        return self.labels[int(code)]

    def code_of(self, value) -> int:
        """Integer code for a label or an already-coded value."""
        if self.labels is not None:
            try:
                return self.labels.index(value)
            except ValueError:
                pass
        code = int(value)
        if not 0 <= code < self.size:
            raise SchemaError(
                f"value {value!r} out of range for domain {self.name!r} "
                f"(size {self.size})"
            )
        return code

    def __repr__(self) -> str:
        return f"Domain({self.name!r}, size={self.size})"


@dataclass(frozen=True)
class Variable:
    """A named variable over a :class:`Domain`."""

    name: str
    domain: Domain

    @property
    def size(self) -> int:
        """Domain size of the variable (``σ_X`` in the paper's Eq. 1)."""
        return self.domain.size

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, |{self.domain.name}|={self.size})"


def var(name: str, size: int, labels: Iterable | None = None) -> Variable:
    """Shorthand constructor: a variable over a fresh same-named domain."""
    labels_tuple = tuple(labels) if labels is not None else None
    return Variable(name, Domain(name, size, labels_tuple))


@dataclass(frozen=True)
class VariableSet:
    """An ordered, name-unique collection of variables.

    ``Var(s)`` in the paper — the non-measure attributes of a functional
    relation.  Provides the set operations the algebra needs while
    keeping deterministic ordering for reproducible output.
    """

    variables: tuple[Variable, ...] = field(default_factory=tuple)

    def __post_init__(self):
        names = [v.name for v in self.variables]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate variable names in {names}")

    @classmethod
    def of(cls, variables: Iterable[Variable]) -> "VariableSet":
        return cls(tuple(variables))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.variables)

    def __iter__(self):
        return iter(self.variables)

    def __len__(self) -> int:
        return len(self.variables)

    def __contains__(self, item) -> bool:
        name = item.name if isinstance(item, Variable) else item
        return any(v.name == name for v in self.variables)

    def __getitem__(self, name: str) -> Variable:
        for v in self.variables:
            if v.name == name:
                return v
        raise KeyError(name)

    def union(self, other: "VariableSet") -> "VariableSet":
        """Name-union preserving self's order, then other's new variables."""
        merged = list(self.variables)
        for v in other.variables:
            if v.name in self:
                _check_same_domain(self[v.name], v)
            else:
                merged.append(v)
        return VariableSet(tuple(merged))

    def intersect(self, other: "VariableSet") -> "VariableSet":
        """Shared variables, validating domain agreement."""
        shared = []
        for v in self.variables:
            if v.name in other:
                _check_same_domain(v, other[v.name])
                shared.append(v)
        return VariableSet(tuple(shared))

    def minus(self, names: Iterable[str]) -> "VariableSet":
        """Variables whose names are not in ``names``."""
        drop = {n.name if isinstance(n, Variable) else n for n in names}
        return VariableSet(tuple(v for v in self.variables if v.name not in drop))

    def subset(self, names: Iterable[str]) -> "VariableSet":
        """Variables with the given names, in this set's order."""
        keep = {n.name if isinstance(n, Variable) else n for n in names}
        missing = keep - set(self.names)
        if missing:
            raise SchemaError(f"unknown variables {sorted(missing)}")
        return VariableSet(tuple(v for v in self.variables if v.name in keep))

    def sizes(self) -> tuple[int, ...]:
        return tuple(v.size for v in self.variables)

    def __repr__(self) -> str:
        return f"VariableSet({list(self.names)})"


def _check_same_domain(a: Variable, b: Variable) -> None:
    if a.domain.name != b.domain.name or a.domain.size != b.domain.size:
        raise SchemaError(
            f"variable {a.name!r} bound to conflicting domains "
            f"{a.domain!r} vs {b.domain!r}"
        )


def domain_product(variables: Iterable[Variable]) -> int:
    """Size of the cross product of the variables' domains.

    This is the size of a *complete* functional relation over the
    variables, and what the degree / width heuristics (Section 5.5)
    compute.
    """
    total = 1
    for v in variables:
        total *= v.size
    return total


def mapping_to_codes(predicate: Mapping[str, object], variables: VariableSet) -> dict[str, int]:
    """Convert a ``{var: value}`` predicate to integer codes."""
    coded = {}
    for name, value in predicate.items():
        coded[name] = variables[name].domain.code_of(value)
    return coded
