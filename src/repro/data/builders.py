"""Builders for functional relations.

Covers the construction patterns the paper's experiments need:

* *complete* relations — every combination of variable values present,
  as in the Section 7.3 synthetic views ("all functional relations were
  complete"),
* random sparse relations with a density knob — the Figure 7 experiment
  sweeps the density of ``ctdeals``,
* relations derived from measure tensors (used by the Bayesian-network
  substrate, where a CPT is a dense array over its scope).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.data.domain import Variable, VariableSet, domain_product
from repro.data.relation import FunctionalRelation
from repro.errors import SchemaError

__all__ = [
    "complete_relation",
    "random_relation",
    "relation_from_tensor",
    "identity_relation",
]


def _grid_columns(variables: VariableSet) -> dict[str, np.ndarray]:
    """Columns enumerating the full cross product in lexicographic order."""
    sizes = variables.sizes()
    total = domain_product(variables)
    columns: dict[str, np.ndarray] = {}
    repeat_inner = total
    for v, size in zip(variables, sizes):
        repeat_inner //= size
        tile = total // (size * repeat_inner)
        block = np.repeat(np.arange(size, dtype=np.int64), repeat_inner)
        columns[v.name] = np.tile(block, tile)
    return columns


def complete_relation(
    variables: Sequence[Variable],
    measure_fn: Callable[[dict[str, np.ndarray]], np.ndarray] | None = None,
    rng: np.random.Generator | None = None,
    name: str | None = None,
    measure_name: str = "f",
    low: float = 0.0,
    high: float = 1.0,
) -> FunctionalRelation:
    """A complete FR over the variables.

    Measures come from ``measure_fn(columns)`` when given, otherwise
    uniform random draws in ``[low, high)`` from ``rng`` (or a default
    generator).
    """
    variables = VariableSet.of(variables)
    columns = _grid_columns(variables)
    total = domain_product(variables)
    if measure_fn is not None:
        measure = np.asarray(measure_fn(columns), dtype=np.float64)
        if len(measure) != total:
            raise SchemaError(
                f"measure_fn returned {len(measure)} values, expected {total}"
            )
    else:
        rng = rng or np.random.default_rng(0)
        measure = rng.uniform(low, high, size=total)
    return FunctionalRelation(
        variables, columns, measure, name=name, measure_name=measure_name,
        check_fd=False,
    )


def random_relation(
    variables: Sequence[Variable],
    density: float,
    rng: np.random.Generator,
    name: str | None = None,
    measure_name: str = "f",
    low: float = 0.0,
    high: float = 1.0,
    min_rows: int = 1,
) -> FunctionalRelation:
    """A sparse FR containing a ``density`` fraction of the cross product.

    Rows are sampled without replacement so the FD holds by
    construction.  ``density`` in ``(0, 1]``; at least ``min_rows`` rows
    are kept so the relation never vanishes entirely.
    """
    if not 0 < density <= 1:
        raise SchemaError(f"density must be in (0, 1], got {density}")
    variables = VariableSet.of(variables)
    total = domain_product(variables)
    n_rows = max(min_rows, int(round(density * total)))
    n_rows = min(n_rows, total)
    chosen = rng.choice(total, size=n_rows, replace=False)
    chosen.sort()
    columns = _decode_grid_indices(chosen, variables)
    measure = rng.uniform(low, high, size=n_rows)
    return FunctionalRelation(
        variables, columns, measure, name=name, measure_name=measure_name,
        check_fd=False,
    )


def _decode_grid_indices(
    indices: np.ndarray, variables: VariableSet
) -> dict[str, np.ndarray]:
    """Decode flat cross-product indices into per-variable code columns."""
    columns: dict[str, np.ndarray] = {}
    remaining = indices.astype(np.int64, copy=True)
    sizes = variables.sizes()
    divisors = []
    acc = 1
    for size in reversed(sizes):
        divisors.append(acc)
        acc *= size
    divisors.reverse()
    for v, div in zip(variables, divisors):
        columns[v.name] = (remaining // div) % v.size
    return columns


def relation_from_tensor(
    variables: Sequence[Variable],
    tensor: np.ndarray,
    name: str | None = None,
    measure_name: str = "f",
) -> FunctionalRelation:
    """Build an FR from a dense measure tensor indexed by variable codes.

    ``tensor.shape`` must equal the tuple of domain sizes, axis order
    following ``variables``.  Used to import Bayesian-network CPTs.
    """
    variables = VariableSet.of(variables)
    tensor = np.asarray(tensor)
    if tensor.shape != variables.sizes():
        raise SchemaError(
            f"tensor shape {tensor.shape} != domain sizes {variables.sizes()}"
        )
    columns = _grid_columns(variables)
    return FunctionalRelation(
        variables,
        columns,
        tensor.reshape(-1),
        name=name,
        measure_name=measure_name,
        check_fd=False,
    )


def identity_relation(
    variables: Sequence[Variable],
    one,
    name: str | None = None,
    dtype=np.float64,
) -> FunctionalRelation:
    """A complete FR whose measure is the multiplicative identity.

    Section 2: "any relation can be considered an FR where f is implicit
    and assumed to take the value 1".
    """
    variables = VariableSet.of(variables)
    columns = _grid_columns(variables)
    measure = np.full(domain_product(variables), one, dtype=dtype)
    return FunctionalRelation(
        variables, columns, measure, name=name, check_fd=False
    )
