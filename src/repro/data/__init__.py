"""Functional relations, variables, and domains (Section 2)."""

from repro.data.builders import (
    complete_relation,
    identity_relation,
    random_relation,
    relation_from_tensor,
)
from repro.data.domain import Domain, Variable, VariableSet, domain_product
from repro.data.domain import var
from repro.data.relation import FunctionalRelation

__all__ = [
    "Domain",
    "Variable",
    "VariableSet",
    "var",
    "domain_product",
    "FunctionalRelation",
    "complete_relation",
    "random_relation",
    "relation_from_tensor",
    "identity_relation",
]
