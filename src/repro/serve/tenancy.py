"""Tenant policy: rate limits, queue bounds, priorities, guard budgets.

A :class:`TenantSpec` is the serving contract one tenant runs under —
how fast it may submit (token bucket), how much may wait (bounded
queue), how it competes when the queue is full (priority), and what
each admitted query may consume (a :class:`~repro.plans.guard.QueryGuard`
budget template).  Specs are frozen: the runtime treats them as policy
data, never as mutable state (mutable state lives in the
:class:`~repro.serve.admission.AdmissionController`).

Units: every ``TenantSpec`` time quantity (``slo``, token-bucket
``rate``) is in the *runtime's clock units* — simulated cost units
under the deterministic driver, seconds under the asyncio server.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import QueryError
from repro.plans.guard import QueryGuard

__all__ = ["TenantSpec", "TokenBucket", "parse_tenant_spec"]


@dataclass(frozen=True)
class TenantSpec:
    """Admission and budget policy for one tenant.

    Parameters
    ----------
    name:
        Tenant identity; the label on every ``serve.*`` metric.
    priority:
        Shedding/dispatch priority (higher wins).  An arrival whose
        queue is full evicts the lowest-priority queued request only
        when the arrival's priority is strictly higher.
    rate / burst:
        Token-bucket admission rate: ``rate`` tokens accrue per clock
        unit up to ``burst``; each submission spends one token.
        ``rate=None`` disables rate limiting.
    slots:
        Maximum queries of this tenant executing concurrently (the
        deterministic driver is a single server, so this bounds
        dispatch eligibility; the asyncio server may overlap tenants).
    queue_depth:
        Bound on *waiting* requests.  An arrival beyond the bound is
        shed or must win the priority comparison to evict a victim.
    slo:
        Per-request latency objective in clock units, measured from
        arrival.  Queue wait is subtracted from it before execution
        (deadline propagation); a request whose SLO is already blown
        at dispatch is shed, never executed.
    slo_objective:
        Target fraction of requests that should meet the SLO (the
        denominator of the error-budget burn rate published as
        ``serve.slo_burn_rate``; see :class:`repro.obs.slo.SLOMonitor`).
    cost_budget / memory_limit_pages / retry_budget:
        The :class:`QueryGuard` template every admitted query runs
        under (see :meth:`make_guard`).
    """

    name: str
    priority: int = 0
    rate: float | None = None
    burst: float = 1.0
    slots: int = 1
    queue_depth: int = 8
    slo: float | None = None
    slo_objective: float = 0.99
    cost_budget: float | None = None
    memory_limit_pages: int | None = None
    retry_budget: int = 64

    def __post_init__(self):
        if not self.name:
            raise QueryError("tenant needs a name")
        if self.slots < 1:
            raise QueryError(
                f"tenant {self.name!r}: slots must be >= 1, got {self.slots}"
            )
        if self.queue_depth < 0:
            raise QueryError(
                f"tenant {self.name!r}: queue_depth must be >= 0, "
                f"got {self.queue_depth}"
            )
        if self.rate is not None and self.rate <= 0:
            raise QueryError(
                f"tenant {self.name!r}: rate must be > 0, got {self.rate}"
            )
        if self.rate is not None and self.burst < 1:
            raise QueryError(
                f"tenant {self.name!r}: burst must be >= 1, got {self.burst}"
            )
        if not 0.0 < self.slo_objective < 1.0:
            raise QueryError(
                f"tenant {self.name!r}: slo_objective must be in (0, 1), "
                f"got {self.slo_objective}"
            )

    def make_guard(
        self,
        clock=None,
        remaining: float | None = None,
        wall: bool = False,
    ) -> QueryGuard:
        """Instantiate the guard template for one admitted request.

        ``remaining`` is the propagated deadline — the SLO minus the
        queue wait.  Under the deterministic driver (``wall=False``)
        it tightens the simulated *cost budget*, so deadline
        enforcement is reproducible; under the asyncio server
        (``wall=True``) it becomes the guard's wall-clock
        ``deadline_seconds``.
        """
        kwargs: dict = {
            "memory_limit_pages": self.memory_limit_pages,
            "retry_budget": self.retry_budget,
        }
        if clock is not None:
            kwargs["clock"] = clock
        if wall:
            kwargs["cost_budget"] = self.cost_budget
            kwargs["deadline_seconds"] = remaining
        else:
            budgets = [
                b for b in (self.cost_budget, remaining) if b is not None
            ]
            kwargs["cost_budget"] = min(budgets) if budgets else None
        return QueryGuard(**kwargs)


class TokenBucket:
    """Deterministic token-bucket rate limiter on an injectable clock.

    Tokens accrue continuously at ``rate`` per clock unit up to
    ``burst``; :meth:`try_take` spends one.  All refill arithmetic uses
    the caller-supplied ``now``, so the bucket is a pure function of
    the submission timestamps — no wall clock, no hidden state.
    """

    def __init__(self, rate: float | None, burst: float, now: float = 0.0):
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = float(now)

    def try_take(self, now: float) -> bool:
        """Spend one token at time ``now``; ``False`` when dry."""
        if self.rate is None:
            return True
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.updated = max(self.updated, now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


_FIELD_ALIASES = {
    "priority": ("priority", int),
    "rate": ("rate", float),
    "burst": ("burst", float),
    "slots": ("slots", int),
    "queue": ("queue_depth", int),
    "slo": ("slo", float),
    "objective": ("slo_objective", float),
    "cost": ("cost_budget", float),
    "mem": ("memory_limit_pages", int),
    "retries": ("retry_budget", int),
}


def parse_tenant_spec(text: str) -> TenantSpec:
    """Parse a CLI tenant spec: ``name[,key=value,...]``.

    Keys: ``priority``, ``rate``, ``burst``, ``slots``, ``queue``
    (queue depth), ``slo``, ``objective`` (SLO attainment target),
    ``cost`` (guard cost budget), ``mem``
    (guard page ceiling), ``retries`` (guard retry budget).  Raises
    :class:`ValueError` on malformed input so the CLI maps it to the
    usage exit code.
    """
    parts = [p.strip() for p in text.split(",") if p.strip()]
    if not parts or "=" in parts[0]:
        raise ValueError(
            f"tenant spec {text!r} must start with a tenant name"
        )
    kwargs: dict = {"name": parts[0]}
    for part in parts[1:]:
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(
                f"tenant spec {text!r}: expected key=value, got {part!r}"
            )
        alias = _FIELD_ALIASES.get(key.strip())
        if alias is None:
            raise ValueError(
                f"tenant spec {text!r}: unknown key {key.strip()!r} "
                f"(known: {', '.join(sorted(_FIELD_ALIASES))})"
            )
        field_name, cast = alias
        try:
            kwargs[field_name] = cast(value)
        except ValueError:
            raise ValueError(
                f"tenant spec {text!r}: bad value {value!r} for {key!r}"
            ) from None
    try:
        return TenantSpec(**kwargs)
    except QueryError as exc:
        raise ValueError(str(exc)) from None
