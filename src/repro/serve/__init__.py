"""Multi-tenant serving runtime: admission, backpressure, snapshots.

The paper's decision-support setting is a *workload* of MPF queries
arriving against a shared model.  This package turns the engine's
building blocks — :class:`~repro.plans.guard.QueryGuard` budgets, the
``stats_epoch``-versioned plan cache, the checkpoint machinery, the
deterministic :class:`~repro.obs.metrics.MetricsRegistry` — into a
serving front end that stays correct and predictable under overload:

* :mod:`repro.serve.tenancy` — per-tenant policy (:class:`TenantSpec`)
  and the token-bucket rate limiter;
* :mod:`repro.serve.admission` — bounded per-tenant queues with
  priority-aware load shedding (:class:`AdmissionController`);
* :mod:`repro.serve.snapshot` — refcounted epoch-pinned catalog
  snapshots so reloads never corrupt in-flight readers
  (:class:`SnapshotManager`);
* :mod:`repro.serve.runtime` — the deterministic single-server driver
  (:class:`ServingRuntime`) and the asyncio front end
  (:class:`AsyncServer`).

See ``docs/serving.md`` for the tenancy model, shedding policy,
deadline propagation, and drain semantics.
"""

from repro.obs.trace import RequestTrace, ServeTracer, TraceContext
from repro.serve.admission import (
    SHED_REASONS,
    AdmissionController,
    AdmissionDecision,
)
from repro.serve.runtime import (
    AsyncServer,
    RequestOutcome,
    ServeReport,
    ServeRequest,
    ServingRuntime,
    VirtualClock,
)
from repro.serve.snapshot import Snapshot, SnapshotManager
from repro.serve.tenancy import TenantSpec, TokenBucket, parse_tenant_spec

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AsyncServer",
    "RequestOutcome",
    "RequestTrace",
    "SHED_REASONS",
    "ServeReport",
    "ServeRequest",
    "ServeTracer",
    "ServingRuntime",
    "Snapshot",
    "SnapshotManager",
    "TenantSpec",
    "TokenBucket",
    "TraceContext",
    "VirtualClock",
    "parse_tenant_spec",
]
