"""Snapshot-isolated reloads: epoch-pinned catalogs with refcounts.

``reload_table`` swaps a table's relation, statistics, and heap file
under a fresh file id and advances the catalog's ``stats_epoch`` — it
never mutates the old objects.  The :class:`SnapshotManager` turns
that immutability into snapshot isolation for the serving runtime:

* :meth:`pin` hands a request a frozen
  :meth:`~repro.catalog.catalog.Catalog.snapshot_view` of the catalog
  at the current epoch (shared and refcounted per epoch, so pinning
  is O(1) after the first reader);
* a reload while readers are pinned simply creates the *next* epoch —
  in-flight readers keep planning and scanning against their pinned
  clone, untouched;
* :meth:`unpin` retires a stale epoch's clone when its last reader
  drains (``serve.snapshots_retired``), bounding memory.

With a :class:`~repro.storage.checkpoint.CheckpointManager` attached,
every reload also takes a durable checkpoint of the *new* state, so a
crash after a reload recovers to the post-reload catalog rather than
replaying into a mix of epochs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.obs.metrics import MetricsRegistry

__all__ = ["Snapshot", "SnapshotManager"]


@dataclass(frozen=True)
class Snapshot:
    """One pinned view: the epoch and its frozen catalog clone."""

    epoch: int
    catalog: Catalog


class _Entry:
    __slots__ = ("catalog", "refs")

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.refs = 0


class SnapshotManager:
    """Refcounted per-epoch catalog snapshots for one database."""

    def __init__(self, db, metrics: MetricsRegistry | None = None,
                 checkpointer=None, tracer=None):
        self.db = db
        if metrics is None:
            # Note: an *empty* registry is falsy, so this must be an
            # explicit None check, not an `or` chain.
            metrics = getattr(db, "metrics", None)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.checkpointer = checkpointer
        # Optional ServeTracer: reloads and retirements become
        # server-level trace events (pins are per-request spans).
        self.tracer = tracer
        self._entries: dict[int, _Entry] = {}

    def _trace_event(self, name: str, **attributes) -> None:
        hook = getattr(self.tracer, "event", None)
        if hook is not None:
            hook(name, **attributes)

    # ------------------------------------------------------------------
    # Pinning
    # ------------------------------------------------------------------
    def pin(self) -> Snapshot:
        """Pin the current epoch; readers of the snapshot are isolated
        from any subsequent reload."""
        epoch = self.db.catalog.stats_epoch
        entry = self._entries.get(epoch)
        if entry is None:
            entry = self._entries[epoch] = _Entry(
                self.db.catalog.snapshot_view()
            )
        entry.refs += 1
        self._publish()
        return Snapshot(epoch=epoch, catalog=entry.catalog)

    def unpin(self, snapshot: Snapshot) -> None:
        """Drop one reader; retire the epoch once stale and unread."""
        entry = self._entries.get(snapshot.epoch)
        if entry is None:
            return
        entry.refs -= 1
        self._retire()

    def _retire(self) -> None:
        current = self.db.catalog.stats_epoch
        stale = [
            epoch for epoch, entry in self._entries.items()
            if entry.refs <= 0 and epoch != current
        ]
        for epoch in stale:
            del self._entries[epoch]
            self._trace_event("snapshot_retire", epoch=epoch)
        if stale:
            self.metrics.counter("serve.snapshots_retired").inc(len(stale))
        self._publish()

    # ------------------------------------------------------------------
    # Reload
    # ------------------------------------------------------------------
    def reload(self, relation, name: str | None = None) -> int:
        """Reload a table without disturbing pinned readers.

        Delegates to ``Database.reload_table`` (which installs the new
        heap file under a fresh file id and prunes the engine's
        stats-epoch-keyed plan cache), checkpoints the new state when
        a checkpointer is attached, and retires any stale epochs whose
        readers have already drained.  Returns the new ``stats_epoch``.
        """
        self.db.reload_table(relation, name)
        if self.checkpointer is not None:
            self.checkpointer.checkpoint(self.db)
        self.metrics.counter("serve.reloads").inc()
        epoch = self.db.catalog.stats_epoch
        self._trace_event(
            "reload", table=name or getattr(relation, "name", None),
            epoch=epoch,
        )
        self._retire()
        return epoch

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        """Distinct epochs currently materialized (pinned or current)."""
        return len(self._entries)

    def readers(self, epoch: int) -> int:
        entry = self._entries.get(epoch)
        return 0 if entry is None else max(0, entry.refs)

    def _publish(self) -> None:
        self.metrics.gauge("serve.snapshots_active").set(len(self._entries))
