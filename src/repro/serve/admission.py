"""Admission control: bounded queues, backpressure, priority shedding.

The :class:`AdmissionController` holds all mutable per-tenant serving
state — token buckets, waiting queues, running-slot counts — and makes
every admit/shed decision.  The policy, in order:

1. **draining** — a draining server admits nothing
   (``reason="draining"``);
2. **rate** — the tenant's token bucket must yield a token
   (``reason="rate"``);
3. **backpressure** — with queue room the request waits its turn;
4. **load shedding** — with a full queue, a strictly higher-priority
   arrival evicts the lowest-priority waiting victim
   (victim ``reason="evicted"``); otherwise the arrival itself is shed
   (``reason="queue_full"``).

Dispatch order is priority-first, FIFO within a priority: the runtime
asks :meth:`AdmissionController.next_runnable` for the best queued
request whose tenant still has a free concurrency slot.

Every decision lands in ``serve.*`` metrics, labeled by tenant.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import OverloadError, QueryError
from repro.obs.export import SHED_REASONS
from repro.obs.metrics import MetricsRegistry
from repro.serve.tenancy import TenantSpec, TokenBucket

__all__ = ["AdmissionController", "AdmissionDecision", "SHED_REASONS"]


@dataclass
class AdmissionDecision:
    """Outcome of one :meth:`AdmissionController.offer` call.

    ``admitted`` requests are waiting in their tenant's queue;
    rejected ones carry the typed :class:`OverloadError`.  ``evicted``
    lists previously queued requests this admission displaced — the
    caller must finalize them as shed.
    """

    admitted: bool
    error: OverloadError | None = None
    evicted: list = field(default_factory=list)


class AdmissionController:
    """Per-tenant admission state machine on an external clock.

    The controller never reads a clock itself: callers pass ``now``
    into :meth:`offer`, which keeps the deterministic driver and the
    asyncio server on the exact same decision procedure.
    """

    def __init__(
        self,
        tenants: Iterable[TenantSpec],
        metrics: MetricsRegistry | None = None,
    ):
        self.specs: dict[str, TenantSpec] = {}
        for spec in tenants:
            if spec.name in self.specs:
                raise QueryError(f"duplicate tenant {spec.name!r}")
            self.specs[spec.name] = spec
        if not self.specs:
            raise QueryError("admission control needs at least one tenant")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._buckets = {
            name: TokenBucket(spec.rate, spec.burst)
            for name, spec in self.specs.items()
        }
        self._queues: dict[str, deque] = {
            name: deque() for name in self.specs
        }
        self._running: dict[str, int] = {name: 0 for name in self.specs}
        self.draining = False

    def spec(self, tenant: str) -> TenantSpec:
        try:
            return self.specs[tenant]
        except KeyError:
            raise QueryError(f"unknown tenant {tenant!r}") from None

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def offer(self, request, now: float) -> AdmissionDecision:
        """Admit ``request`` at time ``now``, or shed it (or a victim).

        ``request`` needs ``tenant``, ``priority``, and ``seq``
        attributes; admitted requests join their tenant's FIFO queue.
        """
        spec = self.spec(request.tenant)
        self.metrics.counter("serve.requests", tenant=spec.name).inc()
        if self.draining:
            return self._shed(request, "draining", "server is draining")
        if not self._buckets[spec.name].try_take(now):
            return self._shed(
                request, "rate",
                f"tenant {spec.name!r} is over its admission rate",
            )
        queue = self._queues[spec.name]
        if len(queue) < spec.queue_depth:
            return self._admit(request, queue)
        # Full queue: a strictly higher-priority arrival evicts the
        # lowest-priority victim (youngest within that priority — it
        # has waited least).  Everything else is shed on arrival.
        victim = None
        if queue:
            victim = min(queue, key=lambda r: (r.priority, -r.seq))
        if victim is None or victim.priority >= request.priority:
            return self._shed(
                request, "queue_full",
                f"tenant {spec.name!r} queue is full "
                f"({spec.queue_depth} waiting)",
            )
        queue.remove(victim)
        self._shed(victim, "evicted", (
            f"evicted from tenant {spec.name!r} queue by "
            f"higher-priority request #{request.seq}"
        ))
        decision = self._admit(request, queue)
        decision.evicted.append(victim)
        return decision

    def _admit(self, request, queue: deque) -> AdmissionDecision:
        queue.append(request)
        self.metrics.counter("serve.admitted", tenant=request.tenant).inc()
        self._set_depth(request.tenant)
        return AdmissionDecision(admitted=True)

    def _shed(
        self, request, reason: str, message: str
    ) -> AdmissionDecision:
        # Every shed reason is part of the typed vocabulary the trace
        # schema validates against — fail loudly, not in validation.
        if reason not in SHED_REASONS:
            raise QueryError(f"untyped shed reason {reason!r}")
        self.metrics.counter(
            "serve.shed", tenant=request.tenant, reason=reason
        ).inc()
        self._set_depth(request.tenant)
        return AdmissionDecision(
            admitted=False, error=OverloadError(message, reason=reason)
        )

    def shed_at_dispatch(self, request, reason: str, message: str):
        """Shed an already-dequeued request (deadline miss, drain)."""
        return self._shed(request, reason, message).error

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def next_runnable(self):
        """Pop the best dispatchable request, or ``None``.

        Considers each tenant's queue head (FIFO within a tenant),
        skips tenants at their concurrency-slot limit, and picks by
        priority (descending), then arrival, then submission order.
        """
        best = None
        for name, queue in self._queues.items():
            if not queue or self._running[name] >= self.specs[name].slots:
                continue
            head = queue[0]
            key = (-head.priority, head.arrival, head.seq)
            if best is None or key < best[0]:
                best = (key, name)
        if best is None:
            return None
        name = best[1]
        request = self._queues[name].popleft()
        self._running[name] += 1
        self._set_depth(name)
        return request

    def complete(self, request) -> None:
        """Release the concurrency slot a dispatched request held."""
        self._running[request.tenant] -= 1

    # ------------------------------------------------------------------
    # Drain and introspection
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop admitting; queued work is finished or shed by policy."""
        self.draining = True

    def drain_queues(self) -> list:
        """Remove and return every waiting request (drain ``shed`` policy)."""
        drained: list = []
        for name, queue in self._queues.items():
            drained.extend(queue)
            queue.clear()
            self._set_depth(name)
        drained.sort(key=lambda r: r.seq)
        return drained

    def queued(self, tenant: str | None = None) -> int:
        if tenant is not None:
            return len(self._queues[tenant])
        return sum(len(q) for q in self._queues.values())

    def running(self, tenant: str | None = None) -> int:
        if tenant is not None:
            return self._running[tenant]
        return sum(self._running.values())

    def _set_depth(self, tenant: str) -> None:
        self.metrics.gauge("serve.queue_depth", tenant=tenant).set(
            len(self._queues[tenant])
        )
