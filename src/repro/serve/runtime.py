"""The serving runtime: deterministic driver and asyncio front end.

One decision procedure, two clocks.  :class:`ServingRuntime` owns the
whole serving pipeline — admission (:mod:`repro.serve.admission`),
epoch pinning (:mod:`repro.serve.snapshot`), the shared prepared-plan
cache keyed ``(tenant, plan shape, stats_epoch)``, deadline
propagation, and execution against the pinned snapshot:

* Under a :class:`VirtualClock` (``wall=False``), :meth:`run_workload`
  is a deterministic single-server simulation: the clock advances by
  each executed query's simulated cost, deadlines are enforced as cost
  budgets, and two identical seeded runs produce byte-identical
  results and metrics.  This is what the overload soak and the
  benchmark drive.
* Under the process clock (``wall=True``), :class:`AsyncServer` wraps
  the same runtime in an asyncio dispatcher: ``submit`` applies the
  identical admission policy at call time, a single dispatcher task
  serializes execution, and deadlines become guard wall-clock budgets.

Deadline propagation: a request's remaining budget at dispatch is its
SLO minus the time it waited in queue.  If the SLO is already blown
the request is shed (``serve.deadline_misses``) — it never starts
executing.  Otherwise the remaining budget tightens the tenant's
:class:`~repro.plans.guard.QueryGuard` template.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.errors import MPFError, OverloadError, QueryError
from repro.obs.metrics import SECONDS_BUCKETS
from repro.obs.slo import SLOMonitor
from repro.obs.trace import RequestTrace, ServeTracer
from repro.plans.executor import Executor
from repro.serve.admission import AdmissionController
from repro.serve.snapshot import Snapshot, SnapshotManager
from repro.serve.tenancy import TenantSpec
from repro.storage.iostats import IOStats

__all__ = [
    "VirtualClock",
    "ServeRequest",
    "RequestOutcome",
    "ServeReport",
    "ServingRuntime",
    "AsyncServer",
]


class VirtualClock:
    """A callable clock that only moves when told to.

    The deterministic driver advances it by each executed query's
    simulated cost (:meth:`IOStats.elapsed` units), so queue waits,
    token-bucket refills, and SLO arithmetic are all pure functions of
    the workload — no real time anywhere.
    """

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, delta: float) -> float:
        if delta < 0:
            raise ValueError(f"clock cannot run backwards ({delta})")
        self.now += delta
        return self.now


@dataclass
class ServeRequest:
    """One query submission against the serving runtime."""

    tenant: str
    query: object
    arrival: float = 0.0
    seq: int = 0
    priority: int | None = None
    """Shedding/dispatch priority; ``None`` inherits the tenant's."""


@dataclass
class RequestOutcome:
    """What happened to one submitted request."""

    request: ServeRequest
    status: str
    """``"ok"``, ``"shed"``, or ``"error"``."""
    result: object | None = None
    error: MPFError | None = None
    queue_wait: float = 0.0
    latency: float | None = None
    """Arrival-to-completion time in clock units (executed requests
    only — a shed request never ran, so it has no latency)."""
    epoch: int | None = None
    """Catalog ``stats_epoch`` the request executed against."""
    plan_cached: bool = False
    stats: IOStats | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def shed(self) -> bool:
        return self.status == "shed"


@dataclass
class ServeReport:
    """Everything one :meth:`ServingRuntime.run_workload` produced."""

    outcomes: list[RequestOutcome] = field(default_factory=list)
    duration: float = 0.0
    """Final virtual-clock reading (total simulated serving time)."""

    @property
    def completed(self) -> list[RequestOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def shed(self) -> list[RequestOutcome]:
        return [o for o in self.outcomes if o.shed]

    @property
    def failed(self) -> list[RequestOutcome]:
        return [o for o in self.outcomes if o.status == "error"]

    def summary(self) -> str:
        return (
            f"served {len(self.outcomes)} requests: "
            f"{len(self.completed)} ok, {len(self.shed)} shed, "
            f"{len(self.failed)} failed, "
            f"duration {self.duration:.0f} clock units"
        )


class ServingRuntime:
    """Admission + snapshots + plan cache + guarded execution.

    ``wall=False`` (default) expects an advanceable clock
    (:class:`VirtualClock`) and maps SLOs to simulated cost budgets;
    ``wall=True`` reads a real clock and maps SLOs to guard
    ``deadline_seconds``.  All metrics flow into ``db.metrics``.
    """

    def __init__(
        self,
        db,
        tenants,
        clock=None,
        wall: bool = False,
        strategy: str = "auto",
        heuristic: str = "degree",
        seed: int | None = None,
        checkpointer=None,
        drain_policy: str = "finish",
        tracer: ServeTracer | None = None,
    ):
        if drain_policy not in ("finish", "shed"):
            raise QueryError(
                f"drain policy must be 'finish' or 'shed', got "
                f"{drain_policy!r}"
            )
        self.db = db
        self.wall = wall
        self.clock = clock or (time.monotonic if wall else VirtualClock())
        self.strategy = strategy
        self.heuristic = heuristic
        self.seed = seed
        self.drain_policy = drain_policy
        self.metrics = db.metrics
        self.tracer = tracer
        if tracer is not None:
            tracer.bind_clock(self.clock)
        self.controller = AdmissionController(tenants, metrics=self.metrics)
        self.snapshots = SnapshotManager(
            db, metrics=self.metrics, checkpointer=checkpointer,
            tracer=tracer,
        )
        # Per-tenant sliding-window SLO telemetry (serve.slo_* gauges).
        self.slo = SLOMonitor(
            self.controller.specs.values(), metrics=self.metrics
        )
        self._pinned: dict[int, Snapshot] = {}
        self._traces: dict[int, RequestTrace] = {}
        self._plans: dict[tuple, dict] = {}

    # ------------------------------------------------------------------
    # Admission (shared by both front ends)
    # ------------------------------------------------------------------
    def admit(self, request: ServeRequest) -> list[RequestOutcome]:
        """Offer one request; returns any outcomes finalized *now*.

        An admitted request yields no outcome yet (it waits in queue,
        pinned to the current epoch).  A shed arrival yields its own
        shed outcome; an admission that evicted a queued victim yields
        the victim's.
        """
        if request.priority is None:
            request.priority = self.controller.spec(request.tenant).priority
        now = request.arrival if not self.wall else self.clock()
        trace = None
        if self.tracer is not None:
            trace = self.tracer.begin_request(
                f"req-{request.seq:05d}", request.tenant, request.arrival
            )
            self._traces[request.seq] = trace
        decision = self.controller.offer(request, now)
        finalized: list[RequestOutcome] = []
        for victim in decision.evicted:
            snap = self._pinned.pop(victim.seq, None)
            if snap is not None:
                self.snapshots.unpin(snap)
            victim_trace = self._traces.pop(victim.seq, None)
            if victim_trace is not None:
                victim_trace.shed_now(now, "evicted")
            self.slo.record(victim.tenant, "shed")
            finalized.append(
                RequestOutcome(
                    request=victim,
                    status="shed",
                    error=OverloadError(
                        f"evicted by higher-priority request "
                        f"#{request.seq}",
                        reason="evicted",
                    ),
                    queue_wait=max(0.0, now - victim.arrival),
                )
            )
        if not decision.admitted:
            if trace is not None:
                self._traces.pop(request.seq, None)
                trace.admission(now, False, reason=decision.error.reason)
            self.slo.record(request.tenant, "shed")
            finalized.append(
                RequestOutcome(
                    request=request, status="shed", error=decision.error
                )
            )
        else:
            snap = self.snapshots.pin()
            self._pinned[request.seq] = snap
            if trace is not None:
                trace.admission(now, True, epoch=snap.epoch)
        return finalized

    def next_runnable(self) -> ServeRequest | None:
        return self.controller.next_runnable()

    @property
    def queued(self) -> int:
        return self.controller.queued()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def dispatch(self, request: ServeRequest) -> RequestOutcome:
        """Execute one dequeued request end to end.

        Checks the propagated deadline, builds the tenant guard with
        the remaining budget, plans via the shared cache against the
        pinned snapshot, executes, and (under a virtual clock)
        advances the clock by the execution's simulated cost —
        including the partial cost of a failed run.
        """
        spec = self.controller.spec(request.tenant)
        wait = max(0.0, self.clock() - request.arrival)
        self.metrics.histogram(
            "serve.queue_wait", tenant=spec.name
        ).observe(wait)
        trace = self._traces.pop(request.seq, None)
        if trace is not None:
            trace.begin_dispatch(self.clock(), wait)
        try:
            remaining = None
            if spec.slo is not None:
                remaining = spec.slo - wait
                if remaining <= 0:
                    self.metrics.counter(
                        "serve.deadline_misses", tenant=spec.name
                    ).inc()
                    error = self.controller.shed_at_dispatch(
                        request, "deadline",
                        f"SLO of {spec.slo:g} blown in queue "
                        f"(waited {wait:g})",
                    )
                    if trace is not None:
                        trace.shed_now(self.clock(), "deadline")
                    self.slo.record(
                        request.tenant, "shed", queue_wait=wait
                    )
                    return RequestOutcome(
                        request=request, status="shed", error=error,
                        queue_wait=wait,
                    )
            outcome = self._execute(request, spec, wait, remaining, trace)
            if trace is not None:
                trace.close(self.clock(), outcome.status)
            self.slo.record(
                request.tenant, outcome.status,
                latency=outcome.latency, queue_wait=wait,
            )
            return outcome
        finally:
            snap = self._pinned.pop(request.seq, None)
            if snap is not None:
                self.snapshots.unpin(snap)
            self.controller.complete(request)

    def _execute(
        self,
        request: ServeRequest,
        spec: TenantSpec,
        wait: float,
        remaining: float | None,
        trace: RequestTrace | None = None,
    ) -> RequestOutcome:
        snap = self._pinned[request.seq]
        guard = spec.make_guard(
            clock=self.clock, remaining=remaining, wall=self.wall
        )
        db = self.db
        stats = IOStats()
        status = "error"
        result = None
        error: MPFError | None = None
        cached = False
        qt = trace.tracer if trace is not None else None
        if trace is not None and not self.wall:
            # Execution accrues simulated cost before the serving clock
            # advances (below); source the operator spans from the
            # dispatch instant plus the run's accrued cost so they land
            # on the serving timeline.  (Under a wall clock the serving
            # clock itself is the right time source.)
            base = self.clock()
            trace.set_time(lambda: base + stats.elapsed())
        try:
            plan_span = (
                qt.span("plan", epoch=snap.epoch)
                if qt is not None else nullcontext()
            )
            with plan_span as ps:
                plan, cached = self._plan(request, snap)
                if ps is not None:
                    ps.attributes["cached"] = cached
            executor = Executor(
                snap.catalog, request.query.view.semiring, pool=db.pool,
                metrics=db.metrics, workers=db.workers,
                task_policy=db.task_policy, worker_faults=db.worker_faults,
                fuse_select_scan=db.fuse_select_scan, tracer=qt,
            )
            execute_span = (
                qt.span("execute") if qt is not None else nullcontext()
            )
            with execute_span:
                raw, stats = executor.run(plan, stats=stats, guard=guard)
        except MPFError as exc:
            error = exc
        else:
            status = "ok"
            result = request.query.finish(raw).with_name(
                request.query.view.name
            )
        finally:
            if trace is not None:
                trace.reset_time()
        if not self.wall:
            # The engine was busy for the query's simulated cost —
            # partial cost too, when the guard or a fault killed it.
            self.clock.advance(stats.elapsed())
        self.metrics.counter(
            "serve.completed", tenant=spec.name, status=status
        ).inc()
        return RequestOutcome(
            request=request, status=status, result=result, error=error,
            queue_wait=wait,
            latency=max(0.0, self.clock() - request.arrival),
            epoch=snap.epoch, plan_cached=cached,
            stats=stats,
        )

    def _plan(self, request: ServeRequest, snap: Snapshot):
        """Plan against the pinned snapshot, via the shared cache.

        The cache key is the query's full shape plus the *tenant* and
        the snapshot's *stats epoch*: tenants never share cache
        entries (their guard budgets and priorities are their own
        failure domain), and a reload retires every prior epoch's
        entries automatically because no new request pins them.
        """
        from repro.plans.serialize import plan_from_dict, plan_to_dict

        query = request.query
        spec = query.to_spec(snap.catalog)
        key = (
            request.tenant,
            spec.tables,
            spec.query_vars,
            tuple(sorted(spec.selections.items())),
            self.strategy,
            self.heuristic,
            snap.epoch,
        )
        hit = self._plans.get(key)
        if hit is not None:
            self.metrics.counter(
                "serve.plan_cache.hits", tenant=request.tenant
            ).inc()
            return plan_from_dict(hit), True
        self.metrics.counter(
            "serve.plan_cache.misses", tenant=request.tenant
        ).inc()
        optimizer = self.db.make_optimizer(
            self.strategy, self.heuristic, self.seed
        )
        optimization = optimizer.optimize(
            spec, snap.catalog, self.db.cost_model, clock=self.clock
        )
        self.metrics.histogram(
            "optimizer.elapsed", buckets=SECONDS_BUCKETS,
            tenant=request.tenant,
        ).observe(optimization.planning_seconds)
        self._plans[key] = plan_to_dict(optimization.plan)
        return optimization.plan, False

    def cached_plans(self) -> list[tuple]:
        """The live plan-cache keys (tests pin epoch hygiene on this)."""
        return sorted(self._plans)

    # ------------------------------------------------------------------
    # Reload and drain
    # ------------------------------------------------------------------
    def reload_table(self, relation, name: str | None = None) -> int:
        """Snapshot-isolated reload; in-flight readers are untouched."""
        return self.snapshots.reload(relation, name)

    def shed_queued(self, reason: str = "draining") -> list[RequestOutcome]:
        """Shed every waiting request (drain ``shed`` policy)."""
        outcomes = []
        now = self.clock()
        for victim in self.controller.drain_queues():
            snap = self._pinned.pop(victim.seq, None)
            if snap is not None:
                self.snapshots.unpin(snap)
            error = self.controller.shed_at_dispatch(
                victim, reason, "request shed: server is draining"
            )
            trace = self._traces.pop(victim.seq, None)
            if trace is not None:
                trace.shed_now(now, reason)
            self.slo.record(victim.tenant, "shed")
            outcomes.append(
                RequestOutcome(
                    request=victim, status="shed", error=error,
                    queue_wait=max(0.0, now - victim.arrival),
                )
            )
        return outcomes

    def flush(self) -> None:
        """Record the drain; gauges already reflect the empty queues."""
        self.metrics.counter("serve.drains").inc()

    # ------------------------------------------------------------------
    # Deterministic workload driver
    # ------------------------------------------------------------------
    def run_workload(self, requests, reloads=()) -> ServeReport:
        """Simulate serving a whole workload on the virtual clock.

        ``requests`` is an iterable of :class:`ServeRequest` (``seq``
        is assigned in submission order).  ``reloads`` is an iterable
        of ``(at, relation)`` or ``(at, relation, name)`` tuples: at
        virtual time ``at`` the table is reloaded snapshot-isolated,
        exactly as a live operator would mid-serving.

        Event order is strictly by timestamp: arrivals and reloads are
        interleaved as they would occur in real time, and execution
        advances the clock by each query's simulated cost.  After the
        last event the server drains: queued work is finished
        (``drain_policy="finish"``) or shed (``"shed"``), and metrics
        are flushed.
        """
        if self.wall:
            raise QueryError(
                "run_workload needs a virtual clock (wall=False)"
            )
        submissions = list(requests)
        for i, req in enumerate(submissions):
            req.seq = i
        events: list[tuple] = [
            # (time, kind, order, payload): arrivals (kind 0) before
            # reloads (kind 1) at the same instant.
            (req.arrival, 0, req.seq, req) for req in submissions
        ]
        for j, entry in enumerate(reloads):
            at, relation, name = (
                entry if len(entry) == 3 else (*entry, None)
            )
            events.append((float(at), 1, j, (relation, name)))
        events.sort(key=lambda e: e[:3])

        outcomes: dict[int, RequestOutcome] = {}

        def finalize(batch):
            for outcome in batch:
                outcomes[outcome.request.seq] = outcome

        i = 0
        while True:
            while i < len(events) and events[i][0] <= self.clock():
                _, kind, _, payload = events[i]
                i += 1
                if kind == 0:
                    finalize(self.admit(payload))
                else:
                    self.reload_table(*payload)
            if i >= len(events) and self.drain_policy == "shed":
                break
            request = self.next_runnable()
            if request is not None:
                outcomes[request.seq] = self.dispatch(request)
                continue
            if i < len(events):
                self.clock.advance(events[i][0] - self.clock())
                continue
            break

        self.controller.begin_drain()
        finalize(self.shed_queued("draining"))
        self.flush()
        report = ServeReport(
            outcomes=[outcomes[req.seq] for req in submissions],
            duration=self.clock(),
        )
        if len(report.outcomes) != len(submissions):
            raise QueryError("request lost by the serving runtime")
        return report


class AsyncServer:
    """Asyncio front end over a wall-clock :class:`ServingRuntime`.

    A single dispatcher task serializes execution (the engine is not
    thread-safe); queries run in the default executor so the event
    loop stays responsive.  ``submit`` resolves to the request's
    :class:`RequestOutcome` — shed requests resolve immediately with
    their :class:`OverloadError` attached rather than raising, so
    callers choose their own failure handling.

    Usage::

        async with AsyncServer(db, tenants) as server:
            outcome = await server.submit("analytics", query)
    """

    def __init__(self, db, tenants, **runtime_options):
        runtime_options.setdefault("clock", time.monotonic)
        self.runtime = ServingRuntime(db, tenants, wall=True,
                                      **runtime_options)
        self._seq = 0
        self._futures: dict = {}
        self._wakeup = None
        self._dispatcher = None
        self._closed = False

    async def __aenter__(self):
        await self.start()
        return self

    async def __aexit__(self, *exc):
        await self.drain()

    async def start(self) -> None:
        import asyncio

        if self._dispatcher is not None:
            return
        self._wakeup = asyncio.Event()
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    async def submit(self, tenant: str, query, priority=None):
        """Admit and eventually execute one query; returns its outcome."""
        import asyncio

        if self._dispatcher is None:
            raise QueryError("server not started (use 'async with')")
        seq = self._seq
        self._seq += 1
        request = ServeRequest(
            tenant=tenant, query=query, arrival=self.runtime.clock(),
            seq=seq, priority=priority,
        )
        shed_now = None
        for outcome in self.runtime.admit(request):
            if outcome.request.seq == seq:
                shed_now = outcome
            else:
                self._resolve(outcome)
        if shed_now is not None:
            return shed_now
        future = asyncio.get_running_loop().create_future()
        self._futures[seq] = future
        self._wakeup.set()
        return await future

    def _resolve(self, outcome) -> None:
        future = self._futures.pop(outcome.request.seq, None)
        if future is not None and not future.done():
            future.set_result(outcome)

    async def _dispatch_loop(self):
        import asyncio

        loop = asyncio.get_running_loop()
        while True:
            request = self.runtime.next_runnable()
            if request is None:
                if self._closed and not self.runtime.queued:
                    return
                self._wakeup.clear()
                if self._closed:
                    # Re-check after clearing: drain raced a dequeue.
                    if not self.runtime.queued:
                        return
                await self._wakeup.wait()
                continue
            outcome = await loop.run_in_executor(
                None, self.runtime.dispatch, request
            )
            self._resolve(outcome)

    async def drain(self, shed: bool = False):
        """Stop admitting; finish (or shed) the queue; flush metrics."""
        drained = []
        self._closed = True
        self.runtime.controller.begin_drain()
        if shed:
            for outcome in self.runtime.shed_queued("draining"):
                self._resolve(outcome)
                drained.append(outcome)
        if self._wakeup is not None:
            self._wakeup.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        self.runtime.flush()
        return drained
