"""Group-index cache: memoized sort/inverse structure of composite keys.

Marginalization, the Proposition-1 projection, and the join's probe
side all need the same derived structure over a relation's key columns:
the stable sorted order of the composite keys, the segment boundaries
of equal-key runs, the first-occurrence row of each distinct key, and
the row→group inverse.  Building it costs an ``argsort`` — the dominant
kernel cost for the repeated marginalizations a VE/BP workload performs
over the same relations and key sets (the FAQ framing: a factor is a
tensor, marginalization an axis reduction, and the axis layout is
reusable).

:class:`GroupIndexCache` memoizes one :class:`GroupIndex` per
``(relation fingerprint, key-name tuple)``.  Fingerprints are
per-instance (see :attr:`FunctionalRelation.fingerprint`), so a
rebuilt or reloaded table can never be served a stale index — entries
keyed on the dead instance age out of the LRU.  The cache is bounded
both by entry count and by total retained array elements; eviction is
strict LRU and fully deterministic, so hit/miss/eviction sequences are
identical across worker counts (the differential-suite contract).

The derivation is byte-compatible with
``np.unique(keys, return_index=True, return_inverse=True)``: a stable
argsort makes ``order[starts]`` the first-occurrence indices and the
segment ranks the same inverse ``np.unique`` returns, so cached and
uncached operator paths produce bit-identical results.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Sequence

import numpy as np

from repro.data.relation import FunctionalRelation

__all__ = [
    "GroupIndex",
    "GroupIndexCache",
    "DEFAULT_GROUP_INDEX_CACHE",
    "group_index",
]

# Defaults sized so the pinned differential suites never evict (their
# eviction counters must not depend on how warm the process-wide cache
# is when a sweep starts) while still bounding memory on big workloads.
DEFAULT_CAPACITY = 4096
DEFAULT_ELEMENT_BUDGET = 16_000_000  # int64 elements across all entries


class GroupIndex:
    """The reusable group structure of one relation + key-name tuple.

    ``order``
        Stable argsort of the composite keys.
    ``starts``
        Start offset of each equal-key run in ``order`` (ascending).
    ``first_idx``
        First-occurrence row index of each distinct key, in sorted key
        order — exactly ``np.unique``'s ``return_index``.
    ``inverse``
        Row → group id (position in the sorted distinct keys) —
        exactly ``np.unique``'s ``return_inverse``.
    ``unique_keys``
        The distinct composite keys, ascending.
    """

    __slots__ = (
        "order", "starts", "first_idx", "inverse", "unique_keys", "n_groups"
    )

    def __init__(self, keys: np.ndarray):
        n = len(keys)
        if n == 0:
            self.order = np.empty(0, dtype=np.int64)
            self.starts = np.empty(0, dtype=np.int64)
            self.first_idx = np.empty(0, dtype=np.int64)
            self.inverse = np.empty(0, dtype=np.int64)
            self.unique_keys = np.empty(0, dtype=keys.dtype)
            self.n_groups = 0
            return
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        boundaries = np.flatnonzero(sorted_keys[1:] != sorted_keys[:-1]) + 1
        starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), boundaries.astype(np.int64))
        )
        group_of_sorted = np.zeros(n, dtype=np.int64)
        group_of_sorted[boundaries] = 1
        np.cumsum(group_of_sorted, out=group_of_sorted)
        inverse = np.empty(n, dtype=np.int64)
        inverse[order] = group_of_sorted
        self.order = order
        self.starts = starts
        self.first_idx = order[starts]
        self.inverse = inverse
        self.unique_keys = sorted_keys[starts]
        self.n_groups = len(starts)

    @property
    def nbytes_elements(self) -> int:
        """Retained element count (the cache's size-budget unit)."""
        return 4 * len(self.order) + 2 * self.n_groups


class GroupIndexCache:
    """Bounded LRU of :class:`GroupIndex` entries with hit accounting."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        element_budget: int = DEFAULT_ELEMENT_BUDGET,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.element_budget = element_budget
        self._entries: OrderedDict[tuple, GroupIndex] = OrderedDict()
        self._elements = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def counters(self) -> tuple[int, int, int]:
        """``(hits, misses, evictions)`` — for delta-based publication."""
        return (self.hits, self.misses, self.evictions)

    def clear(self) -> None:
        """Drop every entry; counters are reset too."""
        self._entries.clear()
        self._elements = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def contains(self, relation: FunctionalRelation,
                 names: Sequence[str]) -> bool:
        """Whether :meth:`get` would hit — no counters, no LRU motion.

        The cost-clock peek: operators consult this *before* running
        the kernel so a cached group structure is charged as a linear
        gather rather than a sort, without perturbing the hit/miss
        accounting of the actual lookup.
        """
        return (relation.fingerprint, tuple(names)) in self._entries

    def get(
        self, relation: FunctionalRelation, names: Sequence[str]
    ) -> GroupIndex:
        """The group index for ``relation``'s ``names`` columns.

        Served from cache when present (LRU refresh), built and
        inserted otherwise.  An oversized single index (beyond the
        element budget) is still returned but never retained.
        """
        key = (relation.fingerprint, tuple(names))
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        self.misses += 1
        entry = GroupIndex(relation.key_codes(names))
        size = entry.nbytes_elements
        if size > self.element_budget:
            return entry
        self._entries[key] = entry
        self._elements += size
        while (
            len(self._entries) > self.capacity
            or self._elements > self.element_budget
        ):
            _, evicted = self._entries.popitem(last=False)
            self._elements -= evicted.nbytes_elements
            self.evictions += 1
        return entry


DEFAULT_GROUP_INDEX_CACHE = GroupIndexCache()
"""The process-wide cache the algebra kernels use by default.

Module-level on purpose: executors and contexts are short-lived (one
per query in the facade), but base relations persist — a shared cache
is what lets the second query over a table skip the argsort the first
one paid for."""


def group_index(
    relation: FunctionalRelation,
    names: Sequence[str],
    cache: GroupIndexCache | None = None,
) -> GroupIndex:
    """Cached group structure of ``relation`` over ``names``.

    ``cache=None`` uses :data:`DEFAULT_GROUP_INDEX_CACHE`.
    """
    if cache is None:
        cache = DEFAULT_GROUP_INDEX_CACHE
    return cache.get(relation, names)
