"""Product and update semijoins (Definition 6).

These are the message-passing primitives of the workload-optimization
machinery (Section 6 / Appendix A):

* **product semijoin** ``t ⋉* s`` — reduce ``t`` by the marginal of
  ``s`` on their shared variables ``U``:

      t ⋉* s = t ⋈* GroupBy_{U, AGG(s[f])}(s)

  This is Belief Propagation's forward message: information about the
  joint function flows from ``s`` into ``t``.

* **update semijoin** ``t ⋉ s`` — the backward message, which must not
  re-propagate what ``t`` already sent forward.  The paper's expanded
  example (the ``t ⋉ ct`` step of Figure 11) shows the realized form:

      t ⋉ s = t ⋈* ( GroupBy_U(s)  ⋈÷  GroupBy_U(t) )

  i.e. multiply ``t`` by the *new* marginal of ``s`` divided by ``t``'s
  own current marginal, cancelling the echo.  (Definition 6's displayed
  formula lists the operands of the ⋈÷ in the opposite order to the
  worked example; the example is the semantically correct one — it is
  what makes Theorem 6 hold — so we follow it.)

The update semijoin needs semiring division and is therefore available
only on semirings with ``supports_division``.
"""

from __future__ import annotations

from repro.algebra.aggregate import marginalize
from repro.algebra.join import product_join, quotient_join
from repro.data.relation import FunctionalRelation
from repro.errors import SemiringError
from repro.semiring.base import Semiring

__all__ = ["product_semijoin", "update_semijoin", "shared_variable_names"]


def shared_variable_names(
    t: FunctionalRelation, s: FunctionalRelation
) -> tuple[str, ...]:
    """``U = Var(t) ∩ Var(s)``."""
    return t.variables.intersect(s.variables).names


def product_semijoin(
    t: FunctionalRelation,
    s: FunctionalRelation,
    semiring: Semiring,
    name: str | None = None,
) -> FunctionalRelation:
    """``t ⋉* s``: absorb the marginal of ``s`` into ``t``."""
    shared = shared_variable_names(t, s)
    message = marginalize(s, shared, semiring)
    return product_join(t, message, semiring, name=name or t.name)


def update_semijoin(
    t: FunctionalRelation,
    s: FunctionalRelation,
    semiring: Semiring,
    name: str | None = None,
) -> FunctionalRelation:
    """``t ⋉ s``: absorb ``s``'s marginal while dividing out ``t``'s own.

    Requires semiring division (Definition 6's ⋈÷ operator).
    """
    if not semiring.supports_division:
        raise SemiringError(
            f"update semijoin requires division, which semiring "
            f"{semiring.name!r} does not provide"
        )
    shared = shared_variable_names(t, s)
    incoming = marginalize(s, shared, semiring)
    outgoing = marginalize(t, shared, semiring)
    correction = quotient_join(incoming, outgoing, semiring)
    return product_join(t, correction, semiring, name=name or t.name)
