"""Marginalization: the GroupBy / additive-aggregate operator.

The MPF problem (Definition 3) computes

    π_{X, AGG(r[f])} GroupBy_X (r)

where ``AGG`` is the semiring's additive operation.  Marginalizing is
"summing out" the variables not in ``X``.  Grouping on all variables is
the identity; grouping on none reduces the relation to a single total.

Proposition 1 of the paper shows that when a variable is not needed to
determine the measure (it is outside every base relation's determining
FD), marginalizing it out equals plain duplicate-eliminating projection
— :func:`project_fd` implements that cheaper path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.algebra.groupindex import GroupIndexCache, group_index
from repro.data.relation import FunctionalRelation
from repro.errors import FunctionalDependencyError, SchemaError
from repro.semiring.base import Semiring

__all__ = ["marginalize", "total", "project_fd"]


def marginalize(
    relation: FunctionalRelation,
    group_names: Sequence[str],
    semiring: Semiring,
    name: str | None = None,
    cache: GroupIndexCache | None = None,
) -> FunctionalRelation:
    """GroupBy ``group_names`` aggregating the measure with ``plus``.

    The result contains one row per distinct combination of the group
    variables present in the input (lexicographically ordered), so it
    is a functional relation by construction.

    The group structure (sorted order / first occurrences / inverse)
    comes from the group-index cache: a repeat marginalization over the
    same relation instance and key set skips the argsort entirely, and
    semirings with a segment-``reduceat`` fast path aggregate straight
    over the cached sorted order.  Results are bit-identical either
    way.  ``cache=None`` uses the process-wide default cache.
    """
    group_names = tuple(group_names)
    unknown = set(group_names) - set(relation.var_names)
    if unknown:
        raise SchemaError(
            f"cannot group by unknown variables {sorted(unknown)}; "
            f"relation has {relation.var_names}"
        )
    out_vars = relation.variables.subset(group_names)

    if not group_names:
        return FunctionalRelation(
            out_vars,
            {},
            np.asarray([semiring.reduce(relation.measure)], dtype=semiring.dtype),
            name=name,
            check_fd=False,
        )
    # Note: grouping on *all* variables is usually the identity (the FD
    # makes every row its own group), but callers may deliberately feed
    # a key-colliding relation to plus-merge duplicates (alter_domain's
    # transfer semantics), so the general path runs unconditionally.
    gidx = group_index(relation, out_vars.names, cache=cache)
    measure = semiring.aggregate(
        relation.measure,
        gidx.inverse,
        gidx.n_groups,
        segments=(gidx.order, gidx.starts),
    )
    columns = {
        n: relation.columns[n][gidx.first_idx] for n in out_vars.names
    }
    return FunctionalRelation(
        out_vars, columns, measure, name=name, check_fd=False
    )


def total(relation: FunctionalRelation, semiring: Semiring):
    """The measure of the whole function: marginalize everything out."""
    return semiring.reduce(relation.measure)


def project_fd(
    relation: FunctionalRelation,
    group_names: Sequence[str],
    name: str | None = None,
    cache: GroupIndexCache | None = None,
) -> FunctionalRelation:
    """Duplicate-eliminating projection (Proposition 1 fast path).

    Valid only when the FD ``group_names -> f`` holds on the input, i.e.
    every group has a single measure value; we verify this cheaply and
    raise if the precondition fails, because silently projecting would
    corrupt measures.
    """
    group_names = tuple(group_names)
    out_vars = relation.variables.subset(group_names)
    gidx = group_index(relation, out_vars.names, cache=cache)
    if gidx.n_groups != relation.ntuples:
        # Duplicate keys: the projection is only valid when every
        # duplicate carries the same measure (one value per group).
        spread = relation.measure[gidx.first_idx][gidx.inverse]
        bad = np.flatnonzero(spread != relation.measure)
        if len(bad):
            i = int(gidx.first_idx[gidx.inverse[bad[0]]])
            j = int(bad[0])
            row = {n: int(relation.columns[n][j]) for n in out_vars.names}
            raise FunctionalDependencyError(
                f"project_fd precondition violated: FD "
                f"{group_names} -> {relation.measure_name} does not hold "
                f"(rows {i} and {j} share group {row} with measures "
                f"{relation.measure[i]!r} and {relation.measure[j]!r})"
            )
    columns = {
        n: relation.columns[n][gidx.first_idx] for n in out_vars.names
    }
    projected = FunctionalRelation(
        out_vars,
        columns,
        relation.measure[gidx.first_idx],
        name=name,
        check_fd=False,
    )
    return projected
