"""Marginalization: the GroupBy / additive-aggregate operator.

The MPF problem (Definition 3) computes

    π_{X, AGG(r[f])} GroupBy_X (r)

where ``AGG`` is the semiring's additive operation.  Marginalizing is
"summing out" the variables not in ``X``.  Grouping on all variables is
the identity; grouping on none reduces the relation to a single total.

Proposition 1 of the paper shows that when a variable is not needed to
determine the measure (it is outside every base relation's determining
FD), marginalizing it out equals plain duplicate-eliminating projection
— :func:`project_fd` implements that cheaper path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.relation import FunctionalRelation
from repro.errors import SchemaError
from repro.semiring.base import Semiring

__all__ = ["marginalize", "total", "project_fd"]


def marginalize(
    relation: FunctionalRelation,
    group_names: Sequence[str],
    semiring: Semiring,
    name: str | None = None,
) -> FunctionalRelation:
    """GroupBy ``group_names`` aggregating the measure with ``plus``.

    The result contains one row per distinct combination of the group
    variables present in the input (lexicographically ordered), so it
    is a functional relation by construction.
    """
    group_names = tuple(group_names)
    unknown = set(group_names) - set(relation.var_names)
    if unknown:
        raise SchemaError(
            f"cannot group by unknown variables {sorted(unknown)}; "
            f"relation has {relation.var_names}"
        )
    out_vars = relation.variables.subset(group_names)

    if not group_names:
        return FunctionalRelation(
            out_vars,
            {},
            np.asarray([semiring.reduce(relation.measure)], dtype=semiring.dtype),
            name=name,
            check_fd=False,
        )
    # Note: grouping on *all* variables is usually the identity (the FD
    # makes every row its own group), but callers may deliberately feed
    # a key-colliding relation to plus-merge duplicates (alter_domain's
    # transfer semantics), so the general path runs unconditionally.
    keys = relation.key_codes(out_vars.names)
    unique_keys, first_idx, inverse = np.unique(
        keys, return_index=True, return_inverse=True
    )
    measure = semiring.aggregate(
        relation.measure, inverse.astype(np.int64, copy=False), len(unique_keys)
    )
    columns = {
        n: relation.columns[n][first_idx] for n in out_vars.names
    }
    return FunctionalRelation(
        out_vars, columns, measure, name=name, check_fd=False
    )


def total(relation: FunctionalRelation, semiring: Semiring):
    """The measure of the whole function: marginalize everything out."""
    return semiring.reduce(relation.measure)


def project_fd(
    relation: FunctionalRelation,
    group_names: Sequence[str],
    name: str | None = None,
) -> FunctionalRelation:
    """Duplicate-eliminating projection (Proposition 1 fast path).

    Valid only when the FD ``group_names -> f`` holds on the input, i.e.
    every group has a single measure value; we verify this cheaply and
    raise if the precondition fails, because silently projecting would
    corrupt measures.
    """
    group_names = tuple(group_names)
    out_vars = relation.variables.subset(group_names)
    keys = relation.key_codes(out_vars.names)
    unique_keys, first_idx = np.unique(keys, return_index=True)
    columns = {n: relation.columns[n][first_idx] for n in out_vars.names}
    projected = FunctionalRelation(
        out_vars,
        columns,
        relation.measure[first_idx],
        name=name,
        check_fd=False,
    )
    return projected
