"""Selection on functional relations.

Two MPF query forms carry equality predicates (Section 3.1):

* *restricted answer set* — ``where X = c`` for a query variable
  ``X``: only part of the answer is wanted;
* *constrained domain* — ``where Y = c`` for a non-query variable
  ``Y``: the function is conditioned on the given value (probabilistic
  evidence in the Section 4 reading).

Both are plain relational selections on variable columns; measure
predicates (the *constrained range* form, ``having f < c``) are a
different operator, :func:`restrict_range`.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.data.relation import FunctionalRelation
from repro.errors import SchemaError

__all__ = ["restrict", "restrict_range"]


def restrict(
    relation: FunctionalRelation,
    predicate: Mapping[str, object],
    name: str | None = None,
) -> FunctionalRelation:
    """Keep rows matching every ``{variable: value}`` equality.

    Values may be labels or codes.  The selected variables remain in
    the schema (with a single value), matching the paper's queries such
    as ``select wid, sum(inv) ... where wid = w1 group by wid``.
    """
    mask = np.ones(relation.ntuples, dtype=bool)
    for var_name, value in predicate.items():
        if var_name not in relation.variables:
            raise SchemaError(
                f"selection on unknown variable {var_name!r}; relation "
                f"has {relation.var_names}"
            )
        code = relation.variables[var_name].domain.code_of(value)
        mask &= relation.columns[var_name] == code
    selected = relation.take(np.flatnonzero(mask))
    return selected.with_name(name) if name else selected


def restrict_range(
    relation: FunctionalRelation,
    op: str,
    threshold,
    name: str | None = None,
) -> FunctionalRelation:
    """Constrained-range filter on the measure (``having f <op> c``).

    Applied to a *result* relation; the paper notes this form restricts
    function values in the answer (e.g. only investments below a
    threshold).
    """
    ops = {
        "<": np.less,
        "<=": np.less_equal,
        ">": np.greater,
        ">=": np.greater_equal,
        "=": np.equal,
        "==": np.equal,
        "!=": np.not_equal,
    }
    if op not in ops:
        raise SchemaError(f"unsupported range operator {op!r}")
    mask = ops[op](relation.measure, threshold)
    selected = relation.take(np.flatnonzero(mask))
    return selected.with_name(name) if name else selected
