"""The extended relational algebra over functional relations.

Operators: product join ``⋈*`` (Definition 2), marginalization /
GroupBy (Definition 3), selection (restricted answer / constrained
domain), FD-projection (Proposition 1), and the product / update
semijoins (Definition 6).
"""

from repro.algebra.aggregate import marginalize, project_fd, total
from repro.algebra.hypothetical import (
    alter_domain,
    alter_measure,
    apply_patch,
    measure_ratio_relation,
)
from repro.algebra.join import join_match_indices, product_join, quotient_join
from repro.algebra.select import restrict, restrict_range
from repro.algebra.semijoin import (
    product_semijoin,
    shared_variable_names,
    update_semijoin,
)

__all__ = [
    "product_join",
    "quotient_join",
    "join_match_indices",
    "marginalize",
    "total",
    "project_fd",
    "restrict",
    "restrict_range",
    "product_semijoin",
    "update_semijoin",
    "shared_variable_names",
    "alter_measure",
    "alter_domain",
    "apply_patch",
    "measure_ratio_relation",
]
