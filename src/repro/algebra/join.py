"""The product join (Definition 2).

``s1 ⋈* s2`` joins two functional relations on their shared variables
and multiplies their measures in the semiring:

    s1 ⋈* s2 = π_{Var(s1) ∪ Var(s2), s1[f] * s2[f]} (s1 ⋈ s2)

Measure attributes never participate in the join condition, and the
result is itself a functional relation.  With no shared variables the
product join degenerates to a cross product (required when an MPF view
joins disconnected components).

The implementation is a vectorized sort-probe join: the right side's
composite keys are sorted once, each left key locates its matching run
via binary search, and the matching index pairs are materialized with
``repeat``/``arange`` arithmetic — no Python-level per-row loop.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.groupindex import GroupIndexCache, group_index
from repro.data.relation import FunctionalRelation
from repro.data.encoding import _fits_mixed_radix, _mixed_radix, encode_rows_pair
from repro.semiring.base import Semiring

__all__ = ["product_join", "quotient_join", "join_match_indices"]


def join_match_indices(
    left: FunctionalRelation,
    right: FunctionalRelation,
    shared_names: tuple[str, ...],
    cache: GroupIndexCache | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """All matching row-index pairs ``(i_left, i_right)`` on shared keys.

    On the mixed-radix key path the probe side's sorted order comes
    from the group-index cache: each side's pair keys equal its own
    ``key_codes`` there (shared variables have one domain), so a sort
    built by an earlier join or marginalization over the same relation
    and key set is reused and the per-join argsort disappears.  The
    ``np.unique`` fallback for oversized key spaces keys the two sides
    jointly and stays uncached.
    """
    n_left, n_right = left.ntuples, right.ntuples
    if not shared_names:
        # Cross product.
        i_left = np.repeat(np.arange(n_left, dtype=np.int64), n_right)
        i_right = np.tile(np.arange(n_right, dtype=np.int64), n_left)
        return i_left, i_right
    sizes = tuple(left.variables[n].size for n in shared_names)
    right_sizes = tuple(right.variables[n].size for n in shared_names)
    if _fits_mixed_radix(sizes) and right_sizes == sizes:
        left_keys = _mixed_radix(
            [left.columns[n] for n in shared_names], sizes
        )
        gidx = group_index(right, shared_names, cache=cache)
        order = gidx.order
        # Locate each probe key's run via the distinct sorted keys:
        # starts[j]..starts[j+1] is exactly the searchsorted lo..hi
        # over the full sorted key column.
        starts_ext = np.concatenate(
            (gidx.starts, np.asarray([n_right], dtype=np.int64))
        )
        pos = np.searchsorted(gidx.unique_keys, left_keys, side="left")
        found = pos < gidx.n_groups
        matched = np.zeros(n_left, dtype=bool)
        matched[found] = gidx.unique_keys[pos[found]] == left_keys[found]
        lo = np.where(matched, starts_ext[np.minimum(pos, gidx.n_groups)], 0)
        hi = np.where(
            matched, starts_ext[np.minimum(pos + 1, gidx.n_groups)], 0
        )
    else:
        left_keys, right_keys = encode_rows_pair(
            [left.columns[n] for n in shared_names],
            [right.columns[n] for n in shared_names],
            sizes,
        )
        order = np.argsort(right_keys, kind="stable")
        sorted_keys = right_keys[order]
        lo = np.searchsorted(sorted_keys, left_keys, side="left")
        hi = np.searchsorted(sorted_keys, left_keys, side="right")
    counts = hi - lo
    total = int(counts.sum())
    i_left = np.repeat(np.arange(n_left, dtype=np.int64), counts)
    if total == 0:
        return i_left, np.empty(0, dtype=np.int64)
    run_starts = np.repeat(np.cumsum(counts) - counts, counts)
    offsets = np.arange(total, dtype=np.int64) - run_starts
    i_right = order[np.repeat(lo, counts) + offsets]
    return i_left, i_right


def _combined_join(
    left: FunctionalRelation,
    right: FunctionalRelation,
    combine,
    name: str | None,
) -> FunctionalRelation:
    shared = left.variables.intersect(right.variables)
    out_vars = left.variables.union(right.variables)
    i_left, i_right = join_match_indices(left, right, shared.names)
    columns: dict[str, np.ndarray] = {}
    for v in out_vars:
        if v.name in left.variables:
            columns[v.name] = left.columns[v.name][i_left]
        else:
            columns[v.name] = right.columns[v.name][i_right]
    measure = combine(left.measure[i_left], right.measure[i_right])
    return FunctionalRelation(
        out_vars, columns, measure, name=name, check_fd=False
    )


def product_join(
    left: FunctionalRelation,
    right: FunctionalRelation,
    semiring: Semiring,
    name: str | None = None,
) -> FunctionalRelation:
    """``left ⋈* right`` with measures combined by ``semiring.times``."""
    return _combined_join(left, right, semiring.times, name)


def quotient_join(
    left: FunctionalRelation,
    right: FunctionalRelation,
    semiring: Semiring,
    name: str | None = None,
) -> FunctionalRelation:
    """``left ⋈÷ right``: like the product join but dividing measures.

    Definition 6 uses this inside the update semijoin; it requires the
    semiring to support division.
    """
    return _combined_join(left, right, semiring.divide, name)
