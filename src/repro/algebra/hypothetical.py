"""Hypothetical updates: the alternate-measure / alternate-domain
query forms (Section 3.1).

The paper sketches two "what if" MPF query variants and leaves their
optimization as future work:

* **alternate measure** — "how much money would contractor c1 lose if
  warehouse w1 went off-line if, hypothetically, part p1 was a
  different price?": one base relation's measure value is changed
  before evaluating the query;
* **alternate domain** — "... under a hypothetical transfer of c1's
  contractor-transporter deal with t1 to t2": variable values of some
  base rows are rewritten before evaluating.

These relation-level rewrites implement both; the engine exposes them
as per-query overrides (re-evaluate against patched relations), and
:class:`~repro.workload.vecache.VECache` additionally supports the
*incremental* alternate-measure path — patch one calibrated table and
re-propagate, instead of recomputing the cache.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.algebra.aggregate import marginalize
from repro.data.relation import FunctionalRelation
from repro.errors import SchemaError
from repro.semiring.base import Semiring

__all__ = ["alter_measure", "alter_domain", "measure_ratio_relation"]


def _match_mask(
    relation: FunctionalRelation, assignment: Mapping[str, object]
) -> np.ndarray:
    if not assignment:
        raise SchemaError("hypothetical update needs a row assignment")
    mask = np.ones(relation.ntuples, dtype=bool)
    for name, value in assignment.items():
        if name not in relation.variables:
            raise SchemaError(
                f"unknown variable {name!r}; relation has "
                f"{relation.var_names}"
            )
        code = relation.variables[name].domain.code_of(value)
        mask &= relation.columns[name] == code
    return mask


def alter_measure(
    relation: FunctionalRelation,
    assignment: Mapping[str, object],
    new_value,
) -> FunctionalRelation:
    """Alternate-measure update: set the measure of the matching rows.

    ``assignment`` selects rows by equality (a full key selects one
    row; a partial key updates every matching row — e.g. repricing a
    part across all its suppliers).  Raises if nothing matches, since a
    silent no-op would make the hypothetical meaningless.
    """
    mask = _match_mask(relation, assignment)
    if not mask.any():
        raise SchemaError(
            f"no row matches {dict(assignment)!r} in "
            f"{relation.name or '<relation>'}"
        )
    measure = relation.measure.copy()
    measure[mask] = new_value
    return relation.with_measure(measure)


def alter_domain(
    relation: FunctionalRelation,
    assignment: Mapping[str, object],
    transfer: Mapping[str, object],
    semiring: Semiring,
) -> FunctionalRelation:
    """Alternate-domain update: move matching rows to new variable values.

    Rows matching ``assignment`` get the variables in ``transfer``
    rewritten (e.g. moving a ctdeals row from ``tid=t1`` to
    ``tid=t2``).  If a moved row collides with an existing row, the
    measures are combined with the semiring's additive operation —
    transferring a deal onto an existing deal accumulates, which is
    the only FD-respecting semantics.
    """
    mask = _match_mask(relation, assignment)
    if not mask.any():
        raise SchemaError(
            f"no row matches {dict(assignment)!r} in "
            f"{relation.name or '<relation>'}"
        )
    columns = {n: relation.columns[n].copy() for n in relation.var_names}
    for name, value in transfer.items():
        if name not in relation.variables:
            raise SchemaError(f"unknown transfer variable {name!r}")
        code = relation.variables[name].domain.code_of(value)
        columns[name][mask] = code
    moved = FunctionalRelation(
        relation.variables,
        columns,
        relation.measure,
        name=relation.name,
        measure_name=relation.measure_name,
        check_fd=False,
    )
    # Plus-merge any collisions the move created.
    return marginalize(
        moved, moved.var_names, semiring, name=relation.name
    ).with_name(relation.name)


def apply_patch(
    target: FunctionalRelation,
    patch: FunctionalRelation,
    semiring: Semiring,
) -> FunctionalRelation:
    """Multiply the rows of ``target`` matching ``patch`` by its measure.

    A left-outer product join against a small patch relation: rows
    without a patch partner keep their measure.  Used to rewrite a
    calibrated cache table in place for an alternate-measure update.
    """
    from repro.algebra.join import join_match_indices

    shared = target.variables.intersect(patch.variables).names
    if set(shared) != set(patch.var_names):
        raise SchemaError(
            f"patch variables {patch.var_names} must all appear in the "
            f"target (has {target.var_names})"
        )
    i_target, i_patch = join_match_indices(target, patch, tuple(shared))
    measure = target.measure.copy()
    measure[i_target] = semiring.times(
        measure[i_target], patch.measure[i_patch]
    )
    return target.with_measure(measure)


def measure_ratio_relation(
    relation: FunctionalRelation,
    assignment: Mapping[str, object],
    new_value,
    semiring: Semiring,
) -> FunctionalRelation:
    """The multiplicative patch ``new / old`` for the matching rows.

    Joining this single-row (or few-row) relation into any table that
    already absorbed the old measure rewrites it in place — the
    incremental alternate-measure path used by the VE-cache.  Requires
    semiring division.
    """
    mask = _match_mask(relation, assignment)
    if not mask.any():
        raise SchemaError(
            f"no row matches {dict(assignment)!r} in "
            f"{relation.name or '<relation>'}"
        )
    indices = np.flatnonzero(mask)
    old = relation.measure[indices]
    new = np.full(len(indices), new_value, dtype=semiring.dtype)
    ratio = semiring.divide(new, old)
    return FunctionalRelation(
        relation.variables,
        {n: relation.columns[n][indices] for n in relation.var_names},
        ratio,
        name=f"patch_{relation.name}",
        check_fd=False,
    )
