"""The supply-chain decision-support schema (Figure 1, Table 1).

Five functional relations drawn from diverse sources:

* ``contracts(pid, sid; price)`` — terms for a part's purchase from a
  supplier;
* ``warehouses(wid, cid; w_factor)`` — each warehouse is operated by a
  contractor and has a storage-overhead factor (key: ``wid``);
* ``transporters(tid; t_overhead)`` — per-part transport overhead
  (key: ``tid``);
* ``location(pid, wid; quantity)`` — quantity of each part sent to a
  warehouse;
* ``ctdeals(cid, tid; ct_discount)`` — contractor–transporter deals.

The ``invest`` MPF view is their product join; its measure is the
per-supply-chain investment.  Table 1's cardinalities and domain sizes
are reproduced at ``scale=1.0``; smaller scales shrink both
proportionally (with floors so the schema stays meaningful), which is
how the Figure 8/9 scale sweeps are driven.  ``ctdeals_density``
controls what fraction of the contractor×transporter grid has a deal —
the Figure 7 sweep.

``include_stdeals`` adds ``stdeals(sid, tid; st_discount)``, the
supplier–transporter deals table that makes the schema *cyclic*
(Figures 12–15): its variable graph gains an ``sid``–``tid`` edge
creating a chordless 5-cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.catalog import Catalog
from repro.data.domain import Variable, var
from repro.data.relation import FunctionalRelation

__all__ = ["SupplyChain", "supply_chain", "TABLE1_CARDINALITIES", "TABLE1_DOMAINS"]

TABLE1_CARDINALITIES = {
    "contracts": 100_000,
    "warehouses": 5_000,
    "transporters": 500,
    "location": 1_000_000,
    "ctdeals": 500_000,
}
"""Paper Table 1 (left): tuples per table at scale 1.0."""

TABLE1_DOMAINS = {
    "pid": 100_000,
    "sid": 10_000,
    "wid": 5_000,
    "cid": 1_000,
    "tid": 500,
}
"""Paper Table 1 (right): ids per variable at scale 1.0."""

_DOMAIN_FLOORS = {"pid": 40, "sid": 20, "wid": 10, "cid": 6, "tid": 4}


def _sample_distinct(total: int, k: int, rng: np.random.Generator) -> np.ndarray:
    """``k`` distinct integers from ``range(total)`` without materializing it."""
    k = min(k, total)
    if total <= 4 * k or total <= 1_000_000:
        return rng.choice(total, size=k, replace=False)
    chosen = np.unique(rng.integers(0, total, size=int(k * 1.2) + 16))
    while len(chosen) < k:
        extra = rng.integers(0, total, size=k)
        chosen = np.unique(np.concatenate([chosen, extra]))
    return rng.permutation(chosen)[:k]


def _pair_relation(
    name: str,
    v1: Variable,
    v2: Variable,
    n_rows: int,
    measure_name: str,
    low: float,
    high: float,
    rng: np.random.Generator,
) -> FunctionalRelation:
    """A sparse FR over two variables with ``n_rows`` distinct pairs."""
    total = v1.size * v2.size
    n_rows = max(1, min(n_rows, total))
    flat = _sample_distinct(total, n_rows, rng)
    columns = {
        v1.name: (flat // v2.size).astype(np.int64),
        v2.name: (flat % v2.size).astype(np.int64),
    }
    measure = rng.uniform(low, high, size=n_rows)
    return FunctionalRelation(
        [v1, v2], columns, measure, name=name, measure_name=measure_name,
        check_fd=False,
    )


@dataclass
class SupplyChain:
    """A generated instance: catalog plus metadata the benches need."""

    catalog: Catalog
    tables: tuple[str, ...]
    variables: dict[str, Variable]
    scale: float
    ctdeals_density: float
    seed: int
    table_keys: dict[str, tuple[str, ...]] = field(default_factory=dict)

    @property
    def view_tables(self) -> tuple[str, ...]:
        return self.tables


def supply_chain(
    scale: float = 0.01,
    ctdeals_density: float = 1.0,
    seed: int = 0,
    include_stdeals: bool = False,
    stdeals_density: float = 0.5,
    domain_scale: float | None = None,
) -> SupplyChain:
    """Generate the Figure 1 schema at the given scale.

    ``scale=1.0`` reproduces Table 1 exactly; the default 0.01 keeps the
    test suite fast while preserving every relative size relationship
    (contracts ≈ domain(pid), location = 10×contracts, etc.).

    ``domain_scale`` scales the id domains separately from the table
    cardinalities (default: same as ``scale``).  Pass
    ``sqrt(scale)`` to keep *pair-grid* tables (ctdeals at density 1 is
    the full cid×tid grid) in the same proportion to the other tables
    as at full scale — the Figure 7 density sweep needs that, since
    grids shrink quadratically in the domain scale while list tables
    shrink linearly.
    """
    rng = np.random.default_rng(seed)
    if domain_scale is None:
        domain_scale = scale
    domains = {
        name: max(_DOMAIN_FLOORS[name], int(round(size * domain_scale)))
        for name, size in TABLE1_DOMAINS.items()
    }
    pid = var("pid", domains["pid"])
    sid = var("sid", domains["sid"])
    wid = var("wid", domains["wid"])
    cid = var("cid", domains["cid"])
    tid = var("tid", domains["tid"])

    def card(table: str) -> int:
        return max(10, int(round(TABLE1_CARDINALITIES[table] * scale)))

    contracts = _pair_relation(
        "contracts", pid, sid, card("contracts"), "price", 1.0, 100.0, rng
    )
    location = _pair_relation(
        "location", pid, wid, card("location"), "quantity", 1.0, 50.0, rng
    )

    # Warehouses: every warehouse exists, operated by one contractor.
    w_columns = {
        "wid": np.arange(wid.size, dtype=np.int64),
        "cid": rng.integers(0, cid.size, size=wid.size, dtype=np.int64),
    }
    warehouses = FunctionalRelation(
        [wid, cid],
        w_columns,
        rng.uniform(1.0, 1.5, size=wid.size),
        name="warehouses",
        measure_name="w_factor",
        check_fd=False,
    )

    # Transporters: one overhead per transporter id.
    transporters = FunctionalRelation(
        [tid],
        {"tid": np.arange(tid.size, dtype=np.int64)},
        rng.uniform(1.0, 2.0, size=tid.size),
        name="transporters",
        measure_name="t_overhead",
        check_fd=False,
    )

    n_deals = max(1, int(round(ctdeals_density * cid.size * tid.size)))
    ctdeals = _pair_relation(
        "ctdeals", cid, tid, n_deals, "ct_discount", 0.5, 1.0, rng
    )

    relations = [contracts, warehouses, transporters, location, ctdeals]
    table_keys = {
        "warehouses": ("wid",),
        "transporters": ("tid",),
    }
    variables = {v.name: v for v in (pid, sid, wid, cid, tid)}

    if include_stdeals:
        n_st = max(1, int(round(stdeals_density * sid.size * tid.size)))
        stdeals = _pair_relation(
            "stdeals", sid, tid, n_st, "st_discount", 0.5, 1.0, rng
        )
        relations.append(stdeals)

    catalog = Catalog()
    catalog.register_all(relations)
    return SupplyChain(
        catalog=catalog,
        tables=tuple(r.name for r in relations),
        variables=variables,
        scale=scale,
        ctdeals_density=ctdeals_density,
        seed=seed,
        table_keys=table_keys,
    )
