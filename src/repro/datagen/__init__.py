"""Workload generators: the supply-chain schema and Section 7.3 views."""

from repro.datagen.supply_chain import (
    TABLE1_CARDINALITIES,
    TABLE1_DOMAINS,
    SupplyChain,
    supply_chain,
)
from repro.datagen.synthetic import (
    SyntheticView,
    linear_view,
    multistar_view,
    star_view,
)

__all__ = [
    "SupplyChain",
    "supply_chain",
    "TABLE1_CARDINALITIES",
    "TABLE1_DOMAINS",
    "SyntheticView",
    "linear_view",
    "star_view",
    "multistar_view",
]
