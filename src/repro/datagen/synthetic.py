"""The synthetic star / linear / multistar views of Section 7.3.

All three share a *linear section*: a chain of tables
``t1(v0, v1), t2(v1, v2), ..., tN(v{N-1}, vN)``.

* **linear** — just the chain ("the variable connecting all tables is
  removed");
* **star** (Figure 6) — every chain table additionally contains one
  common hub variable ``h0``, giving it connectivity N;
* **multistar** — "instead of a single common variable there are
  several common variables each connecting to three different tables":
  hub ``h_k`` appears in tables ``t_{2k+1}, t_{2k+2}, t_{2k+3}``
  (overlapping windows of three), capping maximum variable
  connectivity at 3.

As in the paper: N tables, every variable of domain size
``domain_size`` (10), and every functional relation *complete* —
which makes the cardinality estimates of the cost model exact, so the
Table 2 / Table 3 plan costs are deterministic properties of the plan
shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.catalog import Catalog
from repro.data.builders import complete_relation
from repro.data.domain import Variable, var

__all__ = ["SyntheticView", "linear_view", "star_view", "multistar_view"]


@dataclass
class SyntheticView:
    """A generated synthetic view and the metadata benches need."""

    kind: str
    catalog: Catalog
    tables: tuple[str, ...]
    chain_variables: tuple[str, ...]
    """``v0..vN`` — "the linear part"; queries target these."""
    hub_variables: tuple[str, ...]

    @property
    def view_tables(self) -> tuple[str, ...]:
        return self.tables


def _build(
    kind: str,
    n_tables: int,
    domain_size: int,
    hubs_for_table,
    n_hubs: int,
    seed: int,
) -> SyntheticView:
    rng = np.random.default_rng(seed)
    chain = [var(f"v{i}", domain_size) for i in range(n_tables + 1)]
    hubs = [var(f"h{k}", domain_size) for k in range(n_hubs)]

    catalog = Catalog()
    names = []
    for i in range(n_tables):
        scope: list[Variable] = [chain[i], chain[i + 1]]
        scope.extend(hubs[k] for k in hubs_for_table(i))
        relation = complete_relation(
            scope, rng=rng, name=f"t{i + 1}", low=0.1, high=1.0
        )
        catalog.register(relation)
        names.append(relation.name)
    return SyntheticView(
        kind=kind,
        catalog=catalog,
        tables=tuple(names),
        chain_variables=tuple(v.name for v in chain),
        hub_variables=tuple(h.name for h in hubs),
    )


def linear_view(
    n_tables: int = 5, domain_size: int = 10, seed: int = 0
) -> SyntheticView:
    """Chain ``t_i(v_{i-1}, v_i)`` — maximum variable connectivity 2."""
    return _build("linear", n_tables, domain_size, lambda i: (), 0, seed)


def star_view(
    n_tables: int = 5, domain_size: int = 10, seed: int = 0
) -> SyntheticView:
    """Chain plus one hub ``h0`` in every table (Figure 6) —
    maximum variable connectivity N."""
    return _build("star", n_tables, domain_size, lambda i: (0,), 1, seed)


def multistar_view(
    n_tables: int = 5, domain_size: int = 10, seed: int = 0
) -> SyntheticView:
    """Chain plus hubs each shared by three consecutive tables —
    maximum variable connectivity 3."""
    if n_tables < 3:
        return linear_view(n_tables, domain_size, seed)
    n_hubs = (n_tables - 1) // 2

    def hubs_for_table(i: int):
        out = []
        for k in range(n_hubs):
            first = 2 * k
            if first <= i <= first + 2:
                out.append(k)
        return tuple(out)

    return _build("multistar", n_tables, domain_size, hubs_for_table, n_hubs, seed)
