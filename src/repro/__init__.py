"""repro — a reproduction of *Optimizing MPF Queries: Decision Support
and Probabilistic Inference* (Corrada Bravo & Ramakrishnan, SIGMOD
2007).

The public API re-exports the pieces a downstream user reaches for
first; each subpackage carries the full machinery:

* :mod:`repro.data` — functional relations, variables, domains;
* :mod:`repro.semiring` — the measure algebras;
* :mod:`repro.algebra` — product join, marginalization, semijoins;
* :mod:`repro.optimizer` — CS / CS+ / VE / VE+ and the heuristics;
* :mod:`repro.workload` — BP, junction trees, VE-cache;
* :mod:`repro.bayes` — Bayesian networks and MPF-backed inference;
* :mod:`repro.query` + :mod:`repro.engine` — views, SQL parsing, and
  the ``Database`` facade;
* :mod:`repro.datagen` — the paper's experimental schemas.
"""

from repro.bayes import BayesianNetwork, BruteForceInference, MPFInference
from repro.catalog import Catalog, TableStats
from repro.data import (
    Domain,
    FunctionalRelation,
    Variable,
    complete_relation,
    random_relation,
    var,
)
from repro.engine import Database, QueryReport
from repro.optimizer import (
    CSOptimizer,
    CSPlusLinear,
    CSPlusNonlinear,
    QuerySpec,
    VariableElimination,
    linearity_test,
)
from repro.query import MPFQuery, MPFView
from repro.semiring import (
    BOOLEAN,
    MAX_PRODUCT,
    MIN_SUM,
    SUM_PRODUCT,
    Semiring,
)
from repro.workload import MPFWorkload, VECache, build_ve_cache

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "Database",
    "QueryReport",
    "FunctionalRelation",
    "Variable",
    "Domain",
    "var",
    "complete_relation",
    "random_relation",
    "Catalog",
    "TableStats",
    "Semiring",
    "SUM_PRODUCT",
    "MIN_SUM",
    "MAX_PRODUCT",
    "BOOLEAN",
    "QuerySpec",
    "CSOptimizer",
    "CSPlusLinear",
    "CSPlusNonlinear",
    "VariableElimination",
    "linearity_test",
    "MPFView",
    "MPFQuery",
    "MPFWorkload",
    "VECache",
    "build_ve_cache",
    "BayesianNetwork",
    "MPFInference",
    "BruteForceInference",
]
