"""The ``Database`` facade: the paper's modified server, end to end.

Ties the layers together the way the modified PostgreSQL of Section 7
does: register base functional relations, define MPF views with the
``create mpfview`` extension, and run MPF queries under a chosen
evaluation strategy —

* ``"cs"`` — unmodified aggregate optimizer (single root GroupBy);
* ``"cs+"`` — linear CS+ (Algorithm 1);
* ``"cs+nonlinear"`` — bushy CS+ with the four-candidate rule;
* ``"ve"`` / ``"ve+"`` — Variable Elimination, optionally in the
  extended space, with any Section 5.5 heuristic;
* ``"auto"`` — VE+ with the degree heuristic, falling back to linear
  plans when the Eq. 1 admissibility test says they suffice.

Every query returns a :class:`QueryReport` carrying the result, the
chosen plan, its estimated cost, and the simulated execution stats.
"""

from __future__ import annotations

from contextlib import nullcontext as _nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.catalog.catalog import Catalog
from repro.cost.model import CostModel, SimpleCostModel
from repro.data.relation import FunctionalRelation
from repro.errors import MPFError, QueryError
from repro.obs.export import explain_document, metrics_document
from repro.obs.metrics import SECONDS_BUCKETS, MetricsRegistry
from repro.optimizer.base import OptimizationResult, Optimizer
from repro.optimizer.cs import CSOptimizer
from repro.optimizer.csplus import CSPlusLinear, CSPlusNonlinear
from repro.optimizer.linearity import LinearityTest, linearity_test
from repro.optimizer.ve import VariableElimination
from repro.plans.executor import Executor
from repro.plans.guard import QueryGuard
from repro.plans.lower import PlanDAG, lower
from repro.plans.printer import explain
from repro.plans.runtime import ExecutionContext, evaluate_dag
from repro.plans.scheduler import ScheduleReport
from repro.query.parser import (
    CreateIndexStatement,
    CreateViewStatement,
    SelectStatement,
    parse_statement,
)
from repro.query.query import HavingClause, MPFQuery
from repro.query.view import MPFView
from repro.semiring.base import Semiring
from repro.semiring.builtins import (
    BOOLEAN,
    COUNTING,
    MAX_PRODUCT,
    MAX_SUM,
    MIN_PRODUCT,
    MIN_SUM,
    SUM_PRODUCT,
)
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStats
from repro.workload.vecache import VECache, build_ve_cache

if TYPE_CHECKING:
    from repro.obs.calib import PlanAudit, PlanCalibration
    from repro.plans.profile import ExecutionProfile

__all__ = ["Database", "QueryReport", "BatchReport", "AnalyzeReport"]

# (multiplicative op of the view, additive aggregate of the query)
_SEMIRINGS: dict[tuple[str, str], Semiring] = {
    ("*", "sum"): SUM_PRODUCT,
    ("*", "min"): MIN_PRODUCT,
    ("*", "max"): MAX_PRODUCT,
    ("*", "count"): COUNTING,
    ("+", "min"): MIN_SUM,
    ("+", "max"): MAX_SUM,
    ("and", "or"): BOOLEAN,
}


@dataclass
class QueryReport:
    """Everything a query execution produced.

    A failed query (inside a partial-failure-safe batch) carries its
    ``error`` and a ``None`` result; ``ok`` distinguishes the cases.
    ``recovered`` marks a report reconstructed from a durable WAL
    record on resume (its result bytes are exact, but no plan was
    chosen and no execution work was done this run).
    """

    result: FunctionalRelation | None
    query: MPFQuery
    optimization: OptimizationResult | None
    exec_stats: IOStats
    semiring: Semiring
    linearity: LinearityTest | None = None
    error: MPFError | None = None
    recovered: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def plan_text(self) -> str:
        if self.optimization is None:
            raise QueryError("query failed before a plan was chosen")
        return explain(self.optimization.plan)

    def to_explain_dict(self) -> dict:
        """``EXPLAIN (FORMAT JSON)``-style document with executed stats."""
        if self.optimization is None:
            raise QueryError("query failed before a plan was chosen")
        return explain_document(
            self.optimization, query=self.query, execution=self.exec_stats
        )

    def summary(self) -> str:
        lines = [f"query: {self.query!r}"]
        if self.optimization is not None:
            lines.append(
                f"algorithm: {self.optimization.algorithm} "
                f"(est cost {self.optimization.cost:.4g}, "
                f"{self.optimization.plans_considered} plans, "
                f"{self.optimization.planning_seconds * 1e3:.2f} ms planning)"
            )
        lines.append(f"execution: {self.exec_stats.summary()}")
        if self.error is not None:
            lines.append(f"error: {type(self.error).__name__}: {self.error}")
        else:
            lines.append(f"rows: {self.result.ntuples}")
        if self.linearity is not None:
            lines.append(f"linearity: {self.linearity}")
        return "\n".join(lines)


@dataclass
class BatchReport:
    """What :meth:`Database.run_batch` produced.

    ``reports`` align with the submitted queries; each carries the
    *incremental* stats its evaluation added on top of earlier queries
    in the batch (shared subplans are paid for by the first query that
    needs them).  ``stats`` is the whole batch's combined clock and
    ``dag`` the shared plan DAG, whose ``shared_nodes`` counts subplan
    occurrences eliminated by cross-query CSE.
    """

    reports: list[QueryReport]
    stats: IOStats
    dag: PlanDAG
    schedule: "ScheduleReport | None" = None
    """Modeled task schedule of the batch (serial elapsed, makespan,
    speedup on the configured worker count); ``None`` only for
    historical callers that construct reports by hand."""

    @property
    def shared_subplans(self) -> int:
        return self.dag.shared_nodes

    @property
    def memo_hits(self) -> int:
        return self.stats.memo_hits

    @property
    def succeeded(self) -> list[QueryReport]:
        return [r for r in self.reports if r.ok]

    @property
    def failed(self) -> list[QueryReport]:
        return [r for r in self.reports if not r.ok]

    @property
    def errors(self) -> list[MPFError | None]:
        """Per-query errors, aligned with the submitted queries."""
        return [r.error for r in self.reports]

    def summary(self) -> str:
        text = (
            f"batch of {len(self.reports)} queries: "
            f"{self.dag.tree_nodes} plan nodes → "
            f"{self.dag.unique_nodes} unique "
            f"({self.shared_subplans} shared), "
            f"{self.stats.summary()}"
        )
        if self.schedule is not None and self.schedule.tasks:
            text += f", schedule: {self.schedule.summary()}"
        if self.failed:
            text += f", {len(self.failed)} failed"
        return text


@dataclass
class AnalyzeReport:
    """What :meth:`Database.explain_analyze` produced.

    Wraps the profiled run with the estimate→actual calibration
    (:class:`~repro.obs.calib.PlanCalibration`) and, when requested,
    the plan-choice audit (:class:`~repro.obs.calib.PlanAudit`).
    """

    profile: "ExecutionProfile"
    query: MPFQuery
    optimization: OptimizationResult
    calibration: "PlanCalibration | None"
    audit: "PlanAudit | None"
    stats_epoch: int

    @property
    def result(self) -> FunctionalRelation:
        return self.profile.result

    @property
    def plan_text(self) -> str:
        """The plan tree with estimates, actuals, and Q-errors."""
        return explain(self.optimization.plan, calibration=self.calibration)

    def formatted(self) -> str:
        """The per-operator breakdown with est.rows / q-err columns."""
        return self.profile.formatted()

    def to_calibration_dict(self) -> dict:
        """The schema-tagged ``repro.calibration.v1`` document."""
        if self.calibration is None:
            raise QueryError("explain_analyze ran with calibrate=False")
        return self.calibration.document(
            query=self.query,
            algorithm=self.optimization.algorithm,
            audit=self.audit,
        )

    def to_explain_dict(self) -> dict:
        """The ANALYZE explain document with per-node actuals."""
        return explain_document(
            self.optimization,
            query=self.query,
            execution=self.profile.total,
            operators=self.profile.operators,
            calibration=self.calibration,
        )


@dataclass
class _ViewEntry:
    view_tables: tuple[str, ...]
    multiplicative_op: str


class Database:
    """An in-process MPF query engine over simulated storage."""

    def __init__(
        self,
        cost_model: CostModel | None = None,
        pool: BufferPool | None = None,
        metrics: MetricsRegistry | None = None,
        workers: int = 1,
        task_policy=None,
        worker_faults=None,
        fuse_select_scan: bool = False,
        clock=None,
    ):
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        self.catalog = Catalog()
        self.workers = workers
        """Worker count for partition-parallel execution: shard tasks
        of one batch/query are scheduled over this many modeled
        executors (``docs/parallelism.md``).  Results and structural
        counters are worker-count independent by construction."""
        self.task_policy = task_policy
        """Retry/timeout/hedging policy
        (:class:`~repro.plans.scheduler.TaskPolicy`) applied to every
        scheduled task; ``None`` uses the default policy."""
        self.worker_faults = worker_faults
        """Optional seeded
        :class:`~repro.storage.faults.WorkerFaultInjector` consulted
        before every task dispatch.  Injected faults never change
        results or structural counters — only the modeled schedule and
        the ``scheduler.task_*`` metrics (``docs/robustness.md``)."""
        self.fuse_select_scan = fuse_select_scan
        """Lower plans with the Select→Scan fusion rewrite (see
        ``docs/internals.md``).  Results are byte-identical fused or
        not; only the modeled CPU charges differ."""
        self.cost_model = cost_model or SimpleCostModel()
        self.pool = pool or BufferPool()
        # Explicit None check: an empty registry is falsy (len() == 0)
        # but still the caller's registry — `or` would drop it.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        """The engine-wide registry every layer reports into; see
        ``docs/observability.md`` for the metric catalog."""
        if self.pool.metrics is None:
            self.pool.metrics = self.metrics
        self.clock = clock
        """Optional wall-clock callable (``() -> float`` seconds) the
        engine threads into every timing-sensitive component it
        constructs: guards built by :meth:`make_guard` and the
        optimizer's ``planning_seconds`` stopwatch.  ``None`` keeps the
        real process clocks (``time.monotonic`` / ``time.perf_counter``).
        The serving runtime and guard tests inject a controlled clock
        here so deadline behavior is reproducible without real sleeps."""
        self._views: dict[str, _ViewEntry] = {}
        self._caches: dict[str, VECache] = {}
        self._plan_cache: dict[tuple, dict] = {}
        self.plan_cache_hits = 0

    def make_guard(self, **kwargs) -> QueryGuard:
        """Build a :class:`QueryGuard` on the database's clock.

        Accepts every ``QueryGuard`` constructor argument; the guard's
        wall-clock defaults to :attr:`clock` when one was injected, so
        callers get deadline enforcement on the same (possibly virtual)
        timebase as the rest of the engine without threading ``clock``
        themselves.
        """
        if self.clock is not None:
            kwargs.setdefault("clock", self.clock)
        return QueryGuard(**kwargs)

    def metrics_snapshot(self):
        """Deterministic snapshot of the engine-wide registry."""
        return self.metrics.snapshot()

    def metrics_document(self, name: str | None = None) -> dict:
        """Schema-tagged flat metrics JSON document."""
        return metrics_document(self.metrics.snapshot(), name=name)

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def register(self, relation: FunctionalRelation, name: str | None = None) -> str:
        """Register a base functional relation."""
        return self.catalog.register(relation, name)

    def reload_table(
        self, relation: FunctionalRelation, name: str | None = None
    ) -> str:
        """Reload a base table's data (a bulk refresh / re-ANALYZE).

        Replaces the relation, its statistics, and its heap file in the
        catalog, and drops the now-stale plan-cache entries: cache keys
        are versioned by :attr:`Catalog.stats_epoch`, so a plan costed
        against the old statistics can never be served as ``+cached``
        against the new data.
        """
        name = self.catalog.replace(relation, name)
        stale = [
            key for key in self._plan_cache
            if key[-1] != self.catalog.stats_epoch
        ]
        for key in stale:
            del self._plan_cache[key]
        if stale:
            self.metrics.counter("plan_cache.invalidations").inc(len(stale))
        return name

    def create_view(
        self,
        name: str,
        tables: tuple[str, ...] | list[str],
        multiplicative_op: str = "*",
    ) -> None:
        """Define an MPF view over registered tables."""
        if name in self._views or name in self.catalog:
            raise QueryError(f"name {name!r} already in use")
        for t in tables:
            if t not in self.catalog:
                raise QueryError(f"view {name!r} references unknown table {t!r}")
        if not any(multiplicative_op == op for op, _ in _SEMIRINGS):
            raise QueryError(
                f"unsupported multiplicative op {multiplicative_op!r}"
            )
        self._views[name] = _ViewEntry(tuple(tables), multiplicative_op)

    # ------------------------------------------------------------------
    # SQL entry point
    # ------------------------------------------------------------------
    def execute(self, sql: str, strategy: str = "auto", **options):
        """Parse and run one statement.

        ``create mpfview`` returns the view name; ``select`` returns a
        :class:`QueryReport`.
        """
        statement = parse_statement(sql)
        if isinstance(statement, CreateViewStatement):
            self._check_view_statement(statement)
            self.create_view(
                statement.name,
                statement.tables,
                statement.multiplicative_op,
            )
            return statement.name
        if isinstance(statement, CreateIndexStatement):
            self.catalog.create_index(statement.table, statement.variable)
            return f"{statement.table}({statement.variable})"
        return self._run_select(statement, strategy, **options)

    def _check_view_statement(self, statement: CreateViewStatement) -> None:
        for ref in statement.measure_refs:
            table = ref.split(".")[0]
            if table not in statement.tables:
                raise QueryError(
                    f"measure reference {ref!r} names table {table!r} not "
                    "in the from list"
                )
        for left, right in statement.join_predicates:
            lcol = left.split(".")[-1]
            rcol = right.split(".")[-1]
            if lcol != rcol:
                raise QueryError(
                    f"join predicate {left} = {right} equates different "
                    "variable names; MPF joins are natural joins on "
                    "shared variables"
                )

    def _run_select(
        self, statement: SelectStatement, strategy: str, **options
    ) -> QueryReport:
        entry = self._views.get(statement.view)
        if entry is None:
            raise QueryError(f"unknown view {statement.view!r}")
        key = (entry.multiplicative_op, statement.aggregate)
        semiring = _SEMIRINGS.get(key)
        if semiring is None:
            raise QueryError(
                f"aggregate {statement.aggregate!r} does not form a "
                f"semiring with the view's {entry.multiplicative_op!r}"
            )
        view = MPFView(statement.view, entry.view_tables, semiring)
        having = None
        if statement.having is not None:
            having = HavingClause(*statement.having)
        query = MPFQuery(
            view=view,
            group_by=statement.group_by,
            selections=dict(statement.selections),
            having=having,
        )
        return self.run_query(query, strategy=strategy, **options)

    # ------------------------------------------------------------------
    # Programmatic query execution
    # ------------------------------------------------------------------
    def make_optimizer(
        self,
        strategy: str,
        heuristic: str = "degree",
        seed: int | None = None,
    ) -> Optimizer:
        strategy = strategy.lower()
        if strategy == "cs":
            return CSOptimizer()
        if strategy in ("cs+", "cs+linear", "csplus"):
            return CSPlusLinear()
        if strategy in ("cs+nonlinear", "nonlinear"):
            return CSPlusNonlinear()
        if strategy == "ve":
            return VariableElimination(heuristic, seed=seed)
        if strategy in ("ve+", "ve-ext"):
            return VariableElimination(heuristic, extended=True, seed=seed)
        if strategy == "auto":
            return VariableElimination(heuristic, extended=True, seed=seed)
        raise QueryError(f"unknown evaluation strategy {strategy!r}")

    def _optimize_query(
        self,
        query: MPFQuery,
        strategy: str,
        heuristic: str,
        seed: int | None,
        use_plan_cache: bool,
    ) -> OptimizationResult:
        """Plan one query, consulting the plan cache when enabled."""
        spec = query.to_spec(self.catalog)

        cache_key = None
        if use_plan_cache:
            # Constants matter to the plan (pushed-down Select /
            # IndexScan leaves embed them), so the key is the full
            # selection mapping — two queries differing only in a
            # constant get distinct cache entries.  The catalog's
            # stats epoch (kept last: reload_table prunes on it)
            # versions the key, so reloading a table or changing
            # statistics retires every previously cached plan instead
            # of serving a stale plan with a stale cost forever.
            cache_key = (
                spec.tables,
                spec.query_vars,
                tuple(sorted(spec.selections.items())),
                strategy,
                heuristic,
                self.catalog.stats_epoch,
            )
        cached = self._plan_cache.get(cache_key) if cache_key else None
        if cached is not None:
            from repro.plans.serialize import plan_from_dict

            self.plan_cache_hits += 1
            self.metrics.counter("plan_cache.hits").inc()
            return OptimizationResult(
                plan=plan_from_dict(cached["plan"]),
                cost=cached["cost"],
                algorithm=cached["algorithm"] + "+cached",
                planning_seconds=0.0,
                plans_considered=0,
            )

        if cache_key is not None:
            self.metrics.counter("plan_cache.misses").inc()
        optimizer = self.make_optimizer(strategy, heuristic, seed)
        optimization = optimizer.optimize(
            spec, self.catalog, self.cost_model, clock=self.clock
        )
        self.metrics.counter("optimizer.plans_considered").inc(
            optimization.plans_considered
        )
        if self.clock is not None:
            # Planning elapsed enters the registry only under an
            # injected clock: the default wall clock would make metric
            # snapshots differ between identical seeded runs, and the
            # determinism suite treats that as a bug.
            self.metrics.histogram(
                "optimizer.elapsed", buckets=SECONDS_BUCKETS
            ).observe(optimization.planning_seconds)
        if cache_key is not None:
            from repro.plans.serialize import plan_to_dict

            self._plan_cache[cache_key] = {
                "plan": plan_to_dict(optimization.plan),
                "cost": optimization.cost,
                "algorithm": optimization.algorithm,
            }
        return optimization

    def _finish_report(
        self,
        query: MPFQuery,
        optimization: OptimizationResult,
        result: FunctionalRelation,
        stats: IOStats,
    ) -> QueryReport:
        result = query.finish(result).with_name(query.view.name)
        linearity = None
        if len(query.group_by) == 1:
            linearity = linearity_test(self.catalog, query.group_by[0])
        return QueryReport(
            result=result,
            query=query,
            optimization=optimization,
            exec_stats=stats,
            semiring=query.view.semiring,
            linearity=linearity,
        )

    def run_query(
        self,
        query: MPFQuery,
        strategy: str = "auto",
        heuristic: str = "degree",
        seed: int | None = None,
        use_plan_cache: bool = False,
        guard: QueryGuard | None = None,
        tracer=None,
    ) -> QueryReport:
        """Optimize and execute one MPF query.

        ``use_plan_cache`` turns on prepared-statement behavior: the
        chosen plan is memoized by the query's full shape — tables,
        group-by list, and the complete selection mapping including
        constants (plans embed constants in pushed-down Select /
        IndexScan predicates, so the constants are part of the plan's
        identity) — plus strategy, so exact repeats skip optimization.

        ``guard`` bounds the execution (deadline, simulated cost
        budget, memory ceiling, cancellation, fault-retry budget); a
        violation raises the corresponding
        :class:`~repro.errors.ResourceError`.

        ``tracer``, when given (a
        :class:`~repro.obs.trace.QueryTracer`), is bound to the run's
        cost clock and records the planning event plus an ``execute``
        span wrapping the per-operator spans.
        """
        optimization = self._optimize_query(
            query, strategy, heuristic, seed, use_plan_cache
        )
        run_stats = IOStats()
        if tracer is not None:
            tracer.bind_stats(run_stats)
            tracer.event(
                "planned",
                algorithm=optimization.algorithm,
                plans_considered=optimization.plans_considered,
            )
        executor = Executor(
            self.catalog, query.view.semiring, pool=self.pool,
            metrics=self.metrics, workers=self.workers,
            task_policy=self.task_policy, worker_faults=self.worker_faults,
            fuse_select_scan=self.fuse_select_scan, tracer=tracer,
        )
        span = (
            tracer.span("execute") if tracer is not None
            else _nullcontext()
        )
        try:
            with span:
                result, stats = executor.run(
                    optimization.plan, stats=run_stats, guard=guard
                )
        except MPFError:
            self.metrics.counter("queries.total", status="error").inc()
            raise
        self.metrics.counter("queries.total", status="ok").inc()
        self._publish_guard(guard, stats)
        return self._finish_report(query, optimization, result, stats)

    def _publish_guard(
        self, guard: QueryGuard | None, stats: IOStats | None = None
    ) -> None:
        """Expose the guard's last query window as gauges."""
        if guard is None:
            return
        self.metrics.gauge("guard.pages_admitted").set(guard.pages_admitted)
        self.metrics.gauge("guard.retries_used").set(guard.retries_used)
        if stats is not None:
            self.metrics.gauge("guard.budget_consumed").set(stats.elapsed())

    @staticmethod
    def batch_query_key(index: int, query: MPFQuery) -> str:
        """Durable journal key of one batch query.

        The position *and* the query's deterministic repr identify the
        unit, so a resumed batch must resubmit the same query list —
        a changed query at the same slot simply re-executes.
        """
        return f"query:{index}:{query!r}"

    def _record_query_unit(
        self, wal, key: str, before, result=None, error=None
    ) -> None:
        """Append one query's durable WAL record with its metric delta."""
        if wal is None:
            return
        from repro.storage.journal import encode_unit
        from repro.storage.wal import WAL_QUERY

        delta = self.metrics.snapshot().diff(before).to_dict()
        wal.log_unit(
            WAL_QUERY,
            encode_unit(
                key,
                "error" if error is not None else "ok",
                result=result,
                error=error,
                delta=delta,
            ),
        )

    def _recovered_report(
        self, query: MPFQuery, record: dict, semiring: Semiring
    ) -> QueryReport:
        """Rebuild a report from a durable unit record (no execution)."""
        from repro.data.serialize import relation_from_dict
        from repro.storage.journal import reconstruct_error

        self.metrics.counter(
            "checkpoint.steps_skipped", unit="query"
        ).inc()
        if record["status"] == "error":
            return QueryReport(
                result=None,
                query=query,
                optimization=None,
                exec_stats=IOStats(),
                semiring=semiring,
                error=reconstruct_error(record["error"]),
                recovered=True,
            )
        result = (
            relation_from_dict(record["result"])
            if record["result"] is not None
            else None
        )
        return QueryReport(
            result=result,
            query=query,
            optimization=None,
            exec_stats=IOStats(),
            semiring=semiring,
            recovered=True,
        )

    def run_batch(
        self,
        queries: Sequence[MPFQuery],
        strategy: str = "auto",
        heuristic: str = "degree",
        seed: int | None = None,
        use_plan_cache: bool = False,
        guard: QueryGuard | None = None,
        stop_on_error: bool = False,
        wal=None,
        resume_from=None,
        checkpointer=None,
        checkpoint_every: int = 1,
        workers: int | None = None,
        task_policy=None,
        worker_faults=None,
    ) -> BatchReport:
        """Optimize and execute a batch of queries with shared subplans.

        The physical counterpart of Section 6's workload sharing: all
        chosen plans are lowered into one common-subexpression-
        eliminated DAG and evaluated through a single
        :class:`ExecutionContext`, so structurally identical subplans
        across the batch — repeated scans, shared join/aggregation
        prefixes, even whole repeated queries — execute once and are
        served to later queries from the runtime memo.  All queries
        must agree on the semiring (one view, or views with the same
        operator pair).

        The batch is **partial-failure-safe**: a query that fails
        (storage fault, guard violation, planning error) poisons only
        its own DAG nodes — its report carries the ``error``, later
        queries keep running, and because the runtime memo only admits
        results of *completed* operators, a failed or cancelled
        subplan's partial work is never served to a later query.
        ``stop_on_error=True`` restores fail-fast behavior: the first
        error propagates.  ``guard`` applies per
        query — its window (deadline, memory quota, retry budget)
        restarts before each query in the batch.

        The batch is also **resumable**: with a ``wal``
        (:class:`~repro.storage.wal.WriteAheadLog`) every finished
        query — success or failure — is durably recorded with its
        result and metrics delta before the batch moves on.  Pass the
        :class:`~repro.storage.recovery.RecoveredState` of a crashed
        run (or its ``queries`` mapping) as ``resume_from`` to skip
        every recorded query: skipped queries are not re-planned or
        re-executed, their reports are rebuilt from the records
        (``recovered=True``), and their counters were already restored
        by recovery.  ``checkpointer`` (a
        :class:`~repro.storage.checkpoint.CheckpointManager`) takes a
        full database checkpoint after every ``checkpoint_every``
        freshly executed queries.

        ``workers`` overrides the database's worker count for this
        batch.  Queries whose plan roots are independent (and, over
        partitioned tables, the per-shard tasks inside each plan) are
        scheduled over the modeled worker pool; the returned report's
        ``schedule`` carries the critical-path makespan and speedup.
        Results, counters, and WAL records are identical for every
        worker count (``docs/parallelism.md``).
        """
        queries = list(queries)
        if not queries:
            raise QueryError("run_batch needs at least one query")
        semiring = queries[0].view.semiring
        for query in queries[1:]:
            if query.view.semiring is not semiring:
                raise QueryError(
                    "batch mixes semirings "
                    f"({semiring.name!r} vs {query.view.semiring.name!r}); "
                    "split it into per-semiring batches"
                )

        recovered_units: dict = {}
        if resume_from is not None:
            recovered_units = getattr(resume_from, "queries", resume_from)
        keys = [self.batch_query_key(i, q) for i, q in enumerate(queries)]

        optimizations: list[OptimizationResult | None] = []
        plan_errors: list[MPFError | None] = []
        recovered: list[dict | None] = []
        for key, q in zip(keys, queries):
            record = recovered_units.get(key)
            recovered.append(record)
            if record is not None:
                # Recovered queries are never re-planned: their outcome
                # is already durable, so planning them would only burn
                # optimizer work (and skew nothing — plan metrics are
                # outside the recovery identity).
                optimizations.append(None)
                plan_errors.append(None)
                continue
            try:
                optimizations.append(
                    self._optimize_query(
                        q, strategy, heuristic, seed, use_plan_cache
                    )
                )
                plan_errors.append(None)
            except MPFError as exc:
                if stop_on_error:
                    raise
                optimizations.append(None)
                plan_errors.append(exc)
        dag = lower(
            [opt.plan for opt in optimizations if opt is not None],
            fuse_select_scan=self.fuse_select_scan,
        )
        ctx = ExecutionContext(
            self.catalog, semiring, pool=self.pool, guard=guard,
            metrics=self.metrics,
            workers=self.workers if workers is None else workers,
            task_policy=(
                self.task_policy if task_policy is None else task_policy
            ),
            worker_faults=(
                self.worker_faults if worker_faults is None else worker_faults
            ),
            fuse_select_scan=self.fuse_select_scan,
        )
        if resume_from is not None and hasattr(resume_from, "seed_context"):
            resume_from.seed_context(ctx)
        self.metrics.counter("batches.total").inc()
        self.metrics.counter("batch.shared_subplans").inc(dag.shared_nodes)

        crash = getattr(wal, "crash", None)
        previous_wal = self.pool.wal
        if wal is not None:
            self.pool.wal = wal
        completed = 0
        reports = []
        roots = iter(dag.roots)
        try:
            for key, query, optimization, plan_error, record in zip(
                keys, queries, optimizations, plan_errors, recovered
            ):
                if record is not None:
                    reports.append(
                        self._recovered_report(query, record, semiring)
                    )
                    continue
                if optimization is None:
                    before = self.metrics.snapshot() if wal is not None else None
                    self.metrics.counter(
                        "queries.total", status="error"
                    ).inc()
                    reports.append(
                        QueryReport(
                            result=None,
                            query=query,
                            optimization=None,
                            exec_stats=IOStats(),
                            semiring=semiring,
                            error=plan_error,
                        )
                    )
                    self._record_query_unit(
                        wal, key, before, error=plan_error
                    )
                    continue
                root = next(roots)
                if crash is not None:
                    crash.reach("batch.query")
                before = self.metrics.snapshot() if wal is not None else None
                snapshot = ctx.stats.snapshot()
                if guard is not None:
                    guard.restart(ctx.stats)
                try:
                    (result,) = evaluate_dag(dag, ctx, roots=[root])
                except MPFError as exc:
                    if stop_on_error:
                        self.metrics.counter(
                            "queries.total", status="error"
                        ).inc()
                        raise
                    self.metrics.counter("queries.total", status="error").inc()
                    reports.append(
                        QueryReport(
                            result=None,
                            query=query,
                            optimization=optimization,
                            exec_stats=ctx.stats.since(snapshot),
                            semiring=semiring,
                            error=exc,
                        )
                    )
                    self._record_query_unit(wal, key, before, error=exc)
                    continue
                stats = ctx.stats.since(snapshot)
                self.metrics.counter("queries.total", status="ok").inc()
                report = self._finish_report(query, optimization, result, stats)
                reports.append(report)
                self._record_query_unit(wal, key, before, result=report.result)
                completed += 1
                if (
                    checkpointer is not None
                    and checkpoint_every
                    and completed % checkpoint_every == 0
                ):
                    checkpointer.checkpoint(self, context=ctx)
        finally:
            self.pool.wal = previous_wal
        self._publish_guard(guard, ctx.stats)
        return BatchReport(
            reports=reports, stats=ctx.stats, dag=dag,
            schedule=ctx.publish_schedule(),
        )

    def _select_query(self, sql: str, what: str = "profile") -> MPFQuery:
        """Parse a ``select`` statement into an :class:`MPFQuery`."""
        statement = parse_statement(sql)
        if not isinstance(statement, SelectStatement):
            raise QueryError(f"{what} expects a select statement")
        entry = self._views.get(statement.view)
        if entry is None:
            raise QueryError(f"unknown view {statement.view!r}")
        semiring = _SEMIRINGS[(entry.multiplicative_op, statement.aggregate)]
        view = MPFView(statement.view, entry.view_tables, semiring)
        return MPFQuery(
            view, statement.group_by, dict(statement.selections)
        )

    def profile(
        self, sql: str, strategy: str = "auto",
        guard: QueryGuard | None = None, **options
    ):
        """EXPLAIN ANALYZE: plan, execute, and break down per operator.

        Returns an :class:`~repro.plans.profile.ExecutionProfile`; its
        ``formatted()`` is the human-readable table.  With a ``guard``,
        resource limits apply and any hash→sort degradations the guard
        forces are visible in the breakdown.
        """
        from repro.plans.profile import profile_execution

        query = self._select_query(sql)
        spec = query.to_spec(self.catalog)
        optimizer = self.make_optimizer(strategy, **options)
        optimization = optimizer.optimize(
            spec, self.catalog, self.cost_model, clock=self.clock
        )
        return profile_execution(
            optimization.plan, self.catalog, query.view.semiring,
            pool=self.pool, guard=guard, metrics=self.metrics,
        )

    # ------------------------------------------------------------------
    # Cost-model calibration (EXPLAIN ANALYZE + estimate→actual join)
    # ------------------------------------------------------------------
    def explain_analyze(
        self,
        sql: str,
        strategy: str = "auto",
        calibrate: bool = True,
        audit_plans: bool = False,
        audit_max_tables: int = 6,
        guard: QueryGuard | None = None,
        **options,
    ) -> "AnalyzeReport":
        """Plan, execute, and calibrate the cost model against actuals.

        Beyond :meth:`profile`, the chosen plan is annotated with the
        estimator's per-node cardinalities and joined (by structural
        plan key) with the actual per-node counts the run produced —
        yielding per-node Q-errors, misestimate attribution, and the
        ``calib.*`` metrics (see :mod:`repro.obs.calib`).

        ``audit_plans`` additionally replays the candidate plans of
        every optimizer family (CS, CS+, CS+nonlinear, VE, VE+) under
        the cost clock and reports the plan regret of the chosen plan;
        the replay is quadratic-ish in plan count, so it only runs for
        queries over at most ``audit_max_tables`` relations.  Replays
        use fresh cold buffer pools and do not touch the engine-wide
        ``query.*`` metrics.
        """
        from repro.obs.calib import calibrate_plan
        from repro.plans.annotate import annotate
        from repro.plans.profile import profile_execution

        query = self._select_query(sql, what="explain_analyze")
        spec = query.to_spec(self.catalog)
        optimizer = self.make_optimizer(strategy, **options)
        optimization = optimizer.optimize(
            spec, self.catalog, self.cost_model, clock=self.clock
        )
        # Optimizers keep estimates in their own search structures;
        # re-annotate so every plan node carries the estimator's
        # cardinality/cost for the calibration join.
        annotate(optimization.plan, self.catalog, self.cost_model)
        profile = profile_execution(
            optimization.plan, self.catalog, query.view.semiring,
            pool=self.pool, guard=guard, metrics=self.metrics,
        )
        self._publish_guard(guard, profile.total)
        calibration = None
        if calibrate:
            calibration = calibrate_plan(
                optimization.plan,
                profile.operators,
                stats_epoch=self.catalog.stats_epoch,
            )
            calibration.publish(self.metrics)
            profile.calibration = calibration
        audit = None
        if audit_plans and len(query.view.tables) <= audit_max_tables:
            audit = self._audit_plan_choice(
                spec, query.view.semiring, optimization, **options
            )
            audit.publish(self.metrics)
        return AnalyzeReport(
            profile=profile,
            query=query,
            optimization=optimization,
            calibration=calibration,
            audit=audit,
            stats_epoch=self.catalog.stats_epoch,
        )

    def _audit_plan_choice(
        self,
        spec,
        semiring: Semiring,
        optimization: OptimizationResult,
        heuristic: str = "degree",
        seed: int | None = None,
    ):
        """Replay every optimizer family's plan; measure actual costs.

        Candidates are deduplicated by root structural key (two
        strategies picking the same plan replay once), and each replay
        runs on a fresh cold buffer pool so the comparison is
        apples-to-apples and independent of the engine pool's state.
        """
        from repro.obs.calib import CandidateReplay, PlanAudit

        chosen_key = optimization.plan.structural_key()
        candidates: dict[tuple, tuple[str, float, object]] = {
            chosen_key: (
                optimization.algorithm,
                float(optimization.cost),
                optimization.plan,
            )
        }
        for strat in ("cs", "cs+", "cs+nonlinear", "ve", "ve+"):
            alt = self.make_optimizer(strat, heuristic, seed).optimize(
                spec, self.catalog, self.cost_model
            )
            candidates.setdefault(
                alt.plan.structural_key(),
                (alt.algorithm, float(alt.cost), alt.plan),
            )
        replays = []
        for key, (algorithm, estimated, plan) in candidates.items():
            ctx = ExecutionContext(
                self.catalog,
                semiring,
                pool=BufferPool(self.pool.capacity_pages),
            )
            evaluate_dag(lower(plan), ctx)
            replays.append(
                CandidateReplay(
                    algorithm=algorithm,
                    estimated_cost=estimated,
                    actual_cost=ctx.stats.elapsed(),
                    chosen=key == chosen_key,
                )
            )
        return PlanAudit(candidates=replays)

    def explain_query(
        self, sql_or_query, strategy: str = "auto", **options
    ) -> str:
        """Plan a query without executing it; returns the plan text."""
        if isinstance(sql_or_query, str):
            statement = parse_statement(sql_or_query)
            if not isinstance(statement, SelectStatement):
                raise QueryError("explain expects a select statement")
            entry = self._views[statement.view]
            semiring = _SEMIRINGS[
                (entry.multiplicative_op, statement.aggregate)
            ]
            view = MPFView(statement.view, entry.view_tables, semiring)
            query = MPFQuery(
                view, statement.group_by, dict(statement.selections)
            )
        else:
            query = sql_or_query
        spec = query.to_spec(self.catalog)
        optimizer = self.make_optimizer(strategy, **options)
        optimization = optimizer.optimize(
            spec, self.catalog, self.cost_model, clock=self.clock
        )
        return explain(optimization.plan)

    # ------------------------------------------------------------------
    # Hypothetical queries (Section 3.1's alternate measure / domain)
    # ------------------------------------------------------------------
    def run_hypothetical(
        self,
        query: MPFQuery,
        measure_updates: Mapping[str, tuple[Mapping[str, object], object]] | None = None,
        domain_updates: Mapping[str, tuple[Mapping[str, object], Mapping[str, object]]] | None = None,
        strategy: str = "auto",
        **options,
    ) -> QueryReport:
        """Evaluate a query against hypothetically patched base tables.

        ``measure_updates`` maps a base table to ``(row assignment, new
        measure)`` — the *alternate measure* form ("what if part p1 was
        a different price?").  ``domain_updates`` maps a base table to
        ``(row assignment, {variable: new value})`` — the *alternate
        domain* form ("what if c1's deal with t1 transferred to t2?").
        The real catalog is untouched; the query runs against a
        shadow catalog holding the patched relations.
        """
        from repro.algebra.hypothetical import alter_domain, alter_measure

        measure_updates = dict(measure_updates or {})
        domain_updates = dict(domain_updates or {})
        for table in (*measure_updates, *domain_updates):
            if table not in query.view.tables:
                raise QueryError(
                    f"hypothetical update on {table!r}, which is not a "
                    f"base table of view {query.view.name!r}"
                )

        shadow = Catalog()
        for table in query.view.tables:
            relation = self.catalog.relation(table)
            if table in measure_updates:
                assignment, new_value = measure_updates[table]
                relation = alter_measure(relation, assignment, new_value)
            if table in domain_updates:
                assignment, transfer = domain_updates[table]
                relation = alter_domain(
                    relation, assignment, transfer, query.view.semiring
                )
            shadow.register(relation, table)

        spec = query.to_spec(shadow)
        optimizer = self.make_optimizer(strategy, **options)
        optimization = optimizer.optimize(spec, shadow, self.cost_model)
        executor = Executor(shadow, query.view.semiring)
        result, stats = executor.run(optimization.plan)
        result = query.finish(result).with_name(query.view.name)
        return QueryReport(
            result=result,
            query=query,
            optimization=optimization,
            exec_stats=stats,
            semiring=query.view.semiring,
        )

    # ------------------------------------------------------------------
    # Workload cache (Section 6)
    # ------------------------------------------------------------------
    def build_cache(
        self, view_name: str, heuristic: str = "degree"
    ) -> VECache:
        """Build and remember a VE-cache for the named view."""
        entry = self._views.get(view_name)
        if entry is None:
            raise QueryError(f"unknown view {view_name!r}")
        semiring = _SEMIRINGS.get((entry.multiplicative_op, "sum"))
        if semiring is None:
            semiring = SUM_PRODUCT
        relations = [self.catalog.relation(t) for t in entry.view_tables]
        context = ExecutionContext(
            self.catalog, semiring, pool=self.pool, metrics=self.metrics,
            workers=self.workers,
        )
        cache = build_ve_cache(
            relations, semiring, heuristic=heuristic, context=context
        )
        self._caches[view_name] = cache
        return cache

    def cache_for(self, view_name: str) -> VECache:
        try:
            return self._caches[view_name]
        except KeyError:
            raise QueryError(
                f"no cache built for view {view_name!r}; call build_cache()"
            ) from None

    def query_cached(
        self,
        view_name: str,
        variable: str,
        evidence: Mapping[str, object] | None = None,
    ) -> FunctionalRelation:
        """Answer a single-variable query from the view's VE-cache."""
        cache = self.cache_for(view_name)
        if evidence:
            cache = cache.absorb_evidence(evidence)
        return cache.answer(variable)
