"""Structured exporters and their schemas.

Three JSON document shapes, each carrying an explicit ``schema`` tag
and validated strictly (unknown or missing keys fail — the CI
benchmark-smoke job depends on that):

* **metrics document** (:data:`METRICS_SCHEMA`) — a flat map of
  canonical metric keys (``name`` or ``name{label=value,...}``) to
  instrument dumps.  Metric names must appear in
  :data:`METRIC_CATALOG` (the documented catalog, mirrored in
  ``docs/observability.md``); the ``bench.`` prefix is reserved for
  benchmark-local metrics.

* **explain document** (:data:`EXPLAIN_SCHEMA`) — ``EXPLAIN (FORMAT
  JSON)`` for this engine: the chosen plan as a nested node tree with
  per-node estimated cardinality/cost, the optimizer verdict, and
  (for ``EXPLAIN ANALYZE``) executed totals plus the per-operator
  breakdown.

* **bench document** (:data:`BENCH_SCHEMA`) — one reproduced paper
  table/figure with its rows *and* an embedded metrics document, so
  ``benchmarks/out/*.json`` trajectories are self-describing.

* **calibration document** (:data:`CALIBRATION_SCHEMA`) — the
  estimate→actual join for one executed plan: per-node estimated vs
  actual rows, Q-error, misestimate attribution, and (optionally) the
  plan-choice audit.  Built by
  :meth:`repro.obs.calib.PlanCalibration.document`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.obs.metrics import MetricsRegistry, MetricsSnapshot, base_name
from repro.obs.trace import SPAN_KINDS, TRACE_SCHEMA, OperatorProfile
from repro.storage.iostats import IOStats

# NOTE: this module must not import repro.plans — repro.plans.profile
# imports repro.obs.trace, so a module-level dependency here would be
# a circular import.  Plan nodes are dispatched by class name.
# (TRACE_SCHEMA and SPAN_KINDS live in repro.obs.trace for the same
# reason, in the other direction: trace cannot import this module.)

__all__ = [
    "METRICS_SCHEMA",
    "EXPLAIN_SCHEMA",
    "BENCH_SCHEMA",
    "CALIBRATION_SCHEMA",
    "TRACE_SCHEMA",
    "METRIC_CATALOG",
    "SPAN_KINDS",
    "SHED_REASONS",
    "iostats_dict",
    "plan_explain_dict",
    "explain_document",
    "metrics_document",
    "bench_document",
    "trace_document",
    "validate_metrics_document",
    "validate_explain_document",
    "validate_bench_document",
    "validate_calibration_document",
    "validate_trace_document",
]

METRICS_SCHEMA = "repro.metrics.v1"
EXPLAIN_SCHEMA = "repro.explain.v1"
BENCH_SCHEMA = "repro.bench.v1"
CALIBRATION_SCHEMA = "repro.calibration.v1"

# The typed load-shedding vocabulary: every shed outcome — the
# ``serve.shed`` counter's ``reason`` label, an OverloadError's
# ``reason``, and a trace entry's ``reason`` field — draws from this
# set.  Defined here (not in repro.serve) so trace validation needs no
# serve import; repro.serve.admission imports it back.
SHED_REASONS = frozenset(
    {"rate", "queue_full", "evicted", "deadline", "draining"}
)

# The documented metric catalog: base instrument name -> kind.  Every
# name a registry may contain must be listed here (or carry the
# ``bench.`` prefix); validation fails on anything else so the catalog
# in docs/observability.md cannot silently drift from the code.
METRIC_CATALOG: dict[str, str] = {
    # storage substrate
    "bufferpool.reads": "counter",
    "bufferpool.writes": "counter",
    "bufferpool.hits": "counter",
    "faults.transient": "counter",
    "faults.permanent": "counter",
    # runtime, per evaluated operator (labels: operator=<node type>)
    "query.operator_runs": "counter",
    "query.page_reads": "counter",
    "query.page_writes": "counter",
    "query.buffer_hits": "counter",
    "query.tuples": "counter",
    "query.memo_hits": "counter",
    "query.retries": "counter",
    "query.retry_wait": "counter",
    "query.degradations": "counter",
    "query.operator_elapsed": "histogram",
    # guard accounting for the most recent guarded window
    "guard.pages_admitted": "gauge",
    "guard.retries_used": "gauge",
    "guard.budget_consumed": "gauge",
    # engine facade (labels on queries.total: status=ok|error)
    "plan_cache.hits": "counter",
    "plan_cache.misses": "counter",
    "plan_cache.invalidations": "counter",
    "optimizer.plans_considered": "counter",
    "optimizer.elapsed": "histogram",
    "queries.total": "counter",
    "batches.total": "counter",
    "batch.shared_subplans": "counter",
    # workload layer (labels on bp.messages: kind=product|update)
    "bp.messages": "counter",
    "bp.failures": "counter",
    "vecache.steps": "counter",
    "vecache.evidence_absorptions": "counter",
    "vecache.tables": "gauge",
    "junction.cliques": "counter",
    # durability: write-ahead log, checkpoints, and crash recovery
    # (labels on checkpoint.steps_skipped: unit=query|step)
    "wal.appends": "counter",
    "wal.bytes": "counter",
    "checkpoint.taken": "counter",
    "checkpoint.pages": "counter",
    "checkpoint.memo_entries": "counter",
    "checkpoint.steps_recorded": "counter",
    "checkpoint.steps_skipped": "counter",
    "recovery.runs": "counter",
    "recovery.replayed_pages": "counter",
    "recovery.replayed_records": "counter",
    "recovery.torn_tails": "counter",
    "recovery.checkpoints_discarded": "counter",
    # partition-parallel execution: per-shard work (worker-count
    # independent structural counters) and the modeled schedule
    # (worker-count dependent gauges; see docs/parallelism.md)
    "shard.tasks": "counter",
    "shard.repartitions": "counter",
    "shard.shuffle_pages": "counter",
    "shard.partial_aggregates": "counter",
    "scheduler.workers": "gauge",
    "scheduler.tasks": "gauge",
    "scheduler.serial_elapsed": "gauge",
    "scheduler.makespan": "gauge",
    "scheduler.speedup": "gauge",
    # fault-tolerant task execution (labels on scheduler.degraded:
    # reason=retry_budget|breaker; on faults.worker_injected:
    # kind=crash|hang|slow|lost|poison).  Counters, not gauges: they
    # accumulate across the batch and appear only when faults fire.
    "scheduler.task_retries": "counter",
    "scheduler.task_timeouts": "counter",
    "scheduler.hedges": "counter",
    "scheduler.degraded": "counter",
    "faults.worker_injected": "counter",
    # kernel acceleration: group-index cache traffic of the executed
    # operators (deltas of the process-wide cache, published per node;
    # see docs/internals.md)
    "kernel.groupindex_hits": "counter",
    "kernel.groupindex_misses": "counter",
    "kernel.groupindex_evictions": "counter",
    # cost-model calibration (labels: calib.q_error operator=<op>,
    # calib.misestimates source=<estimator step>)
    "calib.runs": "counter",
    "calib.q_error": "histogram",
    "calib.misestimates": "counter",
    "calib.plan_regret": "histogram",
    "calib.plans_replayed": "counter",
    # multi-tenant serving runtime (labels: tenant=<name> on all;
    # serve.shed additionally reason=rate|queue_full|evicted|deadline|
    # draining; serve.completed additionally status=ok|error).
    # serve.queue_wait records the runtime's clock units: simulated
    # cost units under the deterministic driver, seconds under the
    # asyncio server (see docs/serving.md).
    "serve.requests": "counter",
    "serve.admitted": "counter",
    "serve.shed": "counter",
    "serve.completed": "counter",
    "serve.deadline_misses": "counter",
    "serve.queue_depth": "gauge",
    "serve.queue_wait": "histogram",
    "serve.plan_cache.hits": "counter",
    "serve.plan_cache.misses": "counter",
    "serve.reloads": "counter",
    "serve.snapshots_active": "gauge",
    "serve.snapshots_retired": "counter",
    "serve.drains": "counter",
    # per-tenant SLO telemetry (all labelled tenant=; sliding-window
    # nearest-rank quantiles and the SRE burn-rate ratio — see
    # repro.obs.slo).  Latency/queue-wait gauges are in the serving
    # clock's units: simulated cost under the deterministic driver.
    "serve.slo_latency_p50": "gauge",
    "serve.slo_latency_p95": "gauge",
    "serve.slo_latency_p99": "gauge",
    "serve.slo_queue_wait_p50": "gauge",
    "serve.slo_queue_wait_p95": "gauge",
    "serve.slo_queue_wait_p99": "gauge",
    "serve.slo_attainment": "gauge",
    "serve.slo_burn_rate": "gauge",
}

_IOSTATS_KEYS = (
    "page_reads",
    "page_writes",
    "buffer_hits",
    "tuples",
    "operators_run",
    "memo_hits",
    "retries",
    "retry_wait",
    "elapsed",
)

_OPERATOR_KEYS = frozenset(
    OperatorProfile(
        label="", out_rows=0, tuples=0, page_reads=0, page_writes=0,
        elapsed=0.0,
    ).to_dict()
)

_ENTRY_KEYS = {
    "counter": frozenset({"kind", "value"}),
    "gauge": frozenset({"kind", "value"}),
    "histogram": frozenset({"kind", "count", "sum", "bounds", "counts"}),
}


def iostats_dict(stats: IOStats) -> dict:
    """Flat JSON view of one :class:`IOStats` clock."""
    return {
        "page_reads": stats.page_reads,
        "page_writes": stats.page_writes,
        "buffer_hits": stats.buffer_hits,
        "tuples": stats.tuples_processed,
        "operators_run": stats.operators_run,
        "memo_hits": stats.memo_hits,
        "retries": stats.retries,
        "retry_wait": stats.retry_wait,
        "elapsed": stats.elapsed(),
    }


# ----------------------------------------------------------------------
# EXPLAIN (FORMAT JSON)
# ----------------------------------------------------------------------
def plan_explain_dict(plan, calibration=None) -> dict:
    """Nested plan-node document with per-node estimates when annotated.

    With ``calibration`` (a :class:`~repro.obs.calib.PlanCalibration`
    from the same plan's execution), every matched node additionally
    carries an ``actual`` block and its ``q_error``.

    Iterative post-order build: deep plans (long Select/GroupBy
    chains) must not hit the recursion limit.
    """
    done: dict[int, dict] = {}
    stack: list = [plan]
    while stack:
        node = stack[-1]
        pending = [c for c in node.children() if id(c) not in done]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        if id(node) in done:
            continue
        done[id(node)] = _node_dict(
            node, [done[id(c)] for c in node.children()], calibration
        )
    return done[id(plan)]


def _node_dict(node, inputs: list[dict], calibration=None) -> dict:
    op = _OP_NAMES.get(type(node).__name__)
    if op is None:
        raise ValueError(f"unknown plan node {type(node).__name__}")
    out: dict = {"op": op, "label": node.label()}
    if op in ("scan", "index_scan"):
        out["table"] = node.table
    if op in ("index_scan", "select"):
        out["predicate"] = dict(node.predicate)
    if op in ("product_join", "group_by"):
        out["method"] = node.method
    if op == "group_by":
        out["group_names"] = list(node.group_names)
    if op == "semijoin":
        out["semijoin_kind"] = node.kind
    if node.stats is not None:
        estimated: dict = {"cardinality": node.stats.cardinality}
        if node.op_cost is not None:
            estimated["op_cost"] = node.op_cost
        if node.total_cost is not None:
            estimated["cost"] = node.total_cost
        out["estimated"] = estimated
    if calibration is not None:
        row = calibration.lookup(node.structural_key())
        if row is not None and row.actual_rows is not None:
            out["actual"] = {
                "rows": row.actual_rows,
                "elapsed": row.actual_elapsed,
            }
            if row.q_error is not None:
                out["q_error"] = row.q_error
    if inputs:
        out["inputs"] = inputs
    return out


_OP_NAMES: dict[str, str] = {
    "Scan": "scan",
    "IndexScan": "index_scan",
    "Select": "select",
    "ProductJoin": "product_join",
    "GroupBy": "group_by",
    "SemiJoin": "semijoin",
}

_NODE_REQUIRED: dict[str, frozenset] = {
    "scan": frozenset({"table"}),
    "index_scan": frozenset({"table", "predicate"}),
    "select": frozenset({"predicate", "inputs"}),
    "product_join": frozenset({"method", "inputs"}),
    "group_by": frozenset({"method", "group_names", "inputs"}),
    "semijoin": frozenset({"semijoin_kind", "inputs"}),
}
_NODE_CHILDREN: dict[str, int] = {
    "scan": 0,
    "index_scan": 0,
    "select": 1,
    "product_join": 2,
    "group_by": 1,
    "semijoin": 2,
}


def explain_document(
    optimization,
    query=None,
    execution: IOStats | None = None,
    operators: Sequence[OperatorProfile] | None = None,
    calibration=None,
) -> dict:
    """The full EXPLAIN (FORMAT JSON) document for one planned query.

    ``optimization`` is an
    :class:`~repro.optimizer.base.OptimizationResult`; pass
    ``execution`` (and optionally the per-operator ``operators``
    breakdown from a :class:`~repro.obs.trace.QueryTracer`) to produce
    the ANALYZE form.  ``calibration`` adds per-node ``actual`` blocks
    and Q-errors to the plan tree (see :func:`plan_explain_dict`).
    """
    doc: dict = {
        "schema": EXPLAIN_SCHEMA,
        "query": None if query is None else str(query),
        "algorithm": optimization.algorithm,
        "estimated_cost": optimization.cost,
        "plans_considered": optimization.plans_considered,
        "planning_seconds": optimization.planning_seconds,
        "plan": plan_explain_dict(optimization.plan, calibration),
        "execution": None,
    }
    if execution is not None or operators is not None:
        doc["execution"] = {
            "totals": None if execution is None else iostats_dict(execution),
            "operators": [
                op.to_dict() for op in (operators or [])
            ],
        }
    return doc


# ----------------------------------------------------------------------
# Metrics / bench documents
# ----------------------------------------------------------------------
def metrics_document(
    metrics: MetricsRegistry | MetricsSnapshot,
    name: str | None = None,
) -> dict:
    """Flat metrics document from a registry or snapshot."""
    snapshot = (
        metrics.snapshot() if isinstance(metrics, MetricsRegistry) else metrics
    )
    return {
        "schema": METRICS_SCHEMA,
        "name": name,
        "metrics": snapshot.to_dict(),
    }


def bench_document(
    name: str,
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence],
    metrics: MetricsRegistry | MetricsSnapshot | None = None,
    git_sha: str | None = None,
    suite: str | None = None,
) -> dict:
    """Self-describing benchmark table with embedded metrics.

    ``git_sha`` and ``suite`` stamp provenance into the document so
    the benchmark-history store (:mod:`repro.obs.history`) can record
    which commit produced each run without out-of-band bookkeeping.
    """
    doc = {
        "schema": BENCH_SCHEMA,
        "name": name,
        "title": title,
        "columns": list(columns),
        "rows": [list(r) for r in rows],
        "metrics": metrics_document(
            metrics if metrics is not None else MetricsSnapshot({}),
            name=name,
        ),
    }
    if git_sha is not None:
        doc["git_sha"] = git_sha
    if suite is not None:
        doc["suite"] = suite
    return doc


def trace_document(
    requests: Sequence,
    events: Sequence[Mapping] = (),
    name: str | None = None,
    clock: str = "virtual",
) -> dict:
    """Build a ``repro.trace.v1`` document from request trace entries.

    ``requests`` may hold ready entry dicts or objects exposing
    ``entry()`` (:class:`~repro.obs.trace.RequestTrace`).  ``clock``
    names the timestamp domain: ``virtual`` (simulated cost units —
    deterministic) or ``wall`` (seconds — best effort).
    """
    entries = [
        r if isinstance(r, Mapping) else r.entry() for r in requests
    ]
    return {
        "schema": TRACE_SCHEMA,
        "name": name,
        "clock": clock,
        "requests": [dict(e) for e in entries],
        "events": [dict(e) for e in events],
    }


# ----------------------------------------------------------------------
# Strict validation
# ----------------------------------------------------------------------
def _fail(problems: list[str]) -> None:
    if problems:
        raise ValueError("; ".join(problems))


def _check_keys(
    what: str, data, required: frozenset, problems: list[str],
    optional: frozenset = frozenset(),
) -> bool:
    if not isinstance(data, Mapping):
        problems.append(f"{what}: expected an object, got {type(data).__name__}")
        return False
    keys = set(data)
    missing = sorted(required - keys)
    unknown = sorted(keys - required - optional)
    if missing:
        problems.append(f"{what}: missing keys {missing}")
    if unknown:
        problems.append(f"{what}: unknown keys {unknown}")
    return not missing and not unknown


def validate_metrics_document(doc) -> None:
    """Raise :class:`ValueError` unless ``doc`` matches the schema."""
    problems: list[str] = []
    if _check_keys(
        "metrics document", doc, frozenset({"schema", "name", "metrics"}),
        problems,
    ):
        if doc["schema"] != METRICS_SCHEMA:
            problems.append(
                f"metrics document: schema {doc['schema']!r} != "
                f"{METRICS_SCHEMA!r}"
            )
        _validate_metrics_map(doc["metrics"], problems)
    _fail(problems)


def _validate_metrics_map(metrics, problems: list[str]) -> None:
    if not isinstance(metrics, Mapping):
        problems.append("metrics: expected an object")
        return
    for key in sorted(metrics):
        entry = metrics[key]
        name = base_name(key)
        expected_kind = METRIC_CATALOG.get(name)
        if expected_kind is None and not name.startswith("bench."):
            problems.append(f"metric {key!r}: name not in the catalog")
            continue
        if not isinstance(entry, Mapping) or "kind" not in entry:
            problems.append(f"metric {key!r}: malformed entry")
            continue
        kind = entry["kind"]
        if expected_kind is not None and kind != expected_kind:
            problems.append(
                f"metric {key!r}: kind {kind!r}, catalog says "
                f"{expected_kind!r}"
            )
            continue
        allowed = _ENTRY_KEYS.get(kind)
        if allowed is None:
            problems.append(f"metric {key!r}: unknown kind {kind!r}")
            continue
        _check_keys(f"metric {key!r}", entry, allowed, problems)
        if kind == "histogram" and set(entry) == set(allowed):
            if len(entry["counts"]) != len(entry["bounds"]) + 1:
                problems.append(
                    f"metric {key!r}: counts/bounds length mismatch"
                )


def validate_explain_document(doc) -> None:
    """Raise :class:`ValueError` unless ``doc`` matches the schema."""
    problems: list[str] = []
    top = frozenset({
        "schema", "query", "algorithm", "estimated_cost",
        "plans_considered", "planning_seconds", "plan", "execution",
    })
    if _check_keys("explain document", doc, top, problems):
        if doc["schema"] != EXPLAIN_SCHEMA:
            problems.append(
                f"explain document: schema {doc['schema']!r} != "
                f"{EXPLAIN_SCHEMA!r}"
            )
        _validate_plan_node(doc["plan"], problems, path="plan")
        execution = doc["execution"]
        if execution is not None and _check_keys(
            "execution", execution, frozenset({"totals", "operators"}),
            problems,
        ):
            if execution["totals"] is not None:
                _check_keys(
                    "execution.totals", execution["totals"],
                    frozenset(_IOSTATS_KEYS), problems,
                )
            if isinstance(execution["operators"], list):
                for i, op in enumerate(execution["operators"]):
                    _check_keys(
                        f"execution.operators[{i}]", op, _OPERATOR_KEYS,
                        problems,
                    )
            else:
                problems.append("execution.operators: expected a list")
    _fail(problems)


def _validate_plan_node(node, problems: list[str], path: str) -> None:
    pending = [(node, path)]
    while pending:
        node, path = pending.pop()
        if not isinstance(node, Mapping):
            problems.append(f"{path}: expected an object")
            continue
        op = node.get("op")
        if op not in _NODE_REQUIRED:
            problems.append(f"{path}: unknown op {op!r}")
            continue
        required = _NODE_REQUIRED[op] | {"op", "label"}
        _check_keys(
            path, node, required, problems,
            optional=frozenset({"estimated", "actual", "q_error"}),
        )
        estimated = node.get("estimated")
        if estimated is not None:
            _check_keys(
                f"{path}.estimated", estimated,
                frozenset({"cardinality"}), problems,
                optional=frozenset({"cost", "op_cost"}),
            )
        actual = node.get("actual")
        if actual is not None:
            _check_keys(
                f"{path}.actual", actual, frozenset({"rows"}), problems,
                optional=frozenset({"elapsed"}),
            )
        inputs = node.get("inputs", [])
        if len(inputs) != _NODE_CHILDREN[op]:
            problems.append(
                f"{path}: op {op!r} expects {_NODE_CHILDREN[op]} inputs, "
                f"got {len(inputs)}"
            )
        for i, child in enumerate(inputs):
            pending.append((child, f"{path}.inputs[{i}]"))


def validate_bench_document(doc) -> None:
    """Raise :class:`ValueError` unless ``doc`` matches the schema."""
    problems: list[str] = []
    top = frozenset({"schema", "name", "title", "columns", "rows", "metrics"})
    if _check_keys(
        "bench document", doc, top, problems,
        optional=frozenset({"git_sha", "suite"}),
    ):
        if doc["schema"] != BENCH_SCHEMA:
            problems.append(
                f"bench document: schema {doc['schema']!r} != "
                f"{BENCH_SCHEMA!r}"
            )
        if not isinstance(doc["columns"], list):
            problems.append("bench document: columns must be a list")
        elif not isinstance(doc["rows"], list) or any(
            not isinstance(r, list) or len(r) != len(doc["columns"])
            for r in doc["rows"]
        ):
            problems.append(
                "bench document: rows must be lists matching columns"
            )
        try:
            validate_metrics_document(doc["metrics"])
        except ValueError as exc:
            problems.append(f"bench document metrics: {exc}")
    _fail(problems)


_CALIB_SOURCES = frozenset({
    "exact", "inherited", "base_table_stats", "selection",
    "join_selectivity", "group_by_collapse", "semijoin", "unknown",
})
_CALIB_NODE_KEYS = frozenset({
    "op", "label", "estimated_rows", "estimated_cost",
    "actual_rows", "actual_elapsed", "q_error", "source",
})


def validate_calibration_document(doc) -> None:
    """Raise :class:`ValueError` unless ``doc`` matches the schema."""
    problems: list[str] = []
    top = frozenset({
        "schema", "query", "algorithm", "stats_epoch", "nodes",
        "plan_q_error", "mean_q_error", "dominant", "audit",
    })
    if _check_keys("calibration document", doc, top, problems):
        if doc["schema"] != CALIBRATION_SCHEMA:
            problems.append(
                f"calibration document: schema {doc['schema']!r} != "
                f"{CALIBRATION_SCHEMA!r}"
            )
        nodes = doc["nodes"]
        if not isinstance(nodes, list) or not nodes:
            problems.append(
                "calibration document: nodes must be a non-empty list"
            )
        else:
            for i, node in enumerate(nodes):
                if not _check_keys(
                    f"nodes[{i}]", node, _CALIB_NODE_KEYS, problems
                ):
                    continue
                if node["op"] not in frozenset(_OP_NAMES.values()):
                    problems.append(
                        f"nodes[{i}]: unknown op {node['op']!r}"
                    )
                q = node["q_error"]
                if q is not None and (
                    not isinstance(q, (int, float)) or q < 1.0
                ):
                    problems.append(
                        f"nodes[{i}]: q_error must be >= 1.0, got {q!r}"
                    )
                source = node["source"]
                if source is not None and source not in _CALIB_SOURCES:
                    problems.append(
                        f"nodes[{i}]: unknown source {source!r}"
                    )
                if (q is None) != (node["actual_rows"] is None):
                    problems.append(
                        f"nodes[{i}]: q_error and actual_rows must be "
                        "both present or both absent"
                    )
        for field in ("plan_q_error", "mean_q_error"):
            value = doc[field]
            if not isinstance(value, (int, float)) or value < 1.0:
                problems.append(
                    f"calibration document: {field} must be >= 1.0, "
                    f"got {value!r}"
                )
        dominant = doc["dominant"]
        if dominant is not None:
            _check_keys(
                "dominant", dominant,
                frozenset({"label", "q_error", "source"}), problems,
            )
        audit = doc["audit"]
        if audit is not None and _check_keys(
            "audit", audit, frozenset({"candidates", "plan_regret"}),
            problems,
        ):
            if not isinstance(audit["candidates"], list):
                problems.append("audit.candidates: expected a list")
            else:
                for i, cand in enumerate(audit["candidates"]):
                    _check_keys(
                        f"audit.candidates[{i}]", cand,
                        frozenset({
                            "algorithm", "estimated_cost", "actual_cost",
                            "chosen",
                        }),
                        problems,
                    )
            regret = audit["plan_regret"]
            if not isinstance(regret, (int, float)) or regret < 1.0:
                problems.append(
                    f"audit: plan_regret must be >= 1.0, got {regret!r}"
                )
    _fail(problems)


_TRACE_REQUEST_KEYS = frozenset({
    "request_id", "tenant", "stats_epoch", "status", "reason", "root",
})
_SPAN_KEYS = frozenset({
    "name", "kind", "start", "end", "cost", "attributes", "events",
    "children",
})
_TRACE_STATUSES = frozenset({"ok", "shed", "error"})

# An admitted-and-completed request's span tree must link the serving
# lifecycle end to end; operator spans then hang off the dispatch span.
_REQUIRED_OK_KINDS = frozenset({"admission", "queue", "dispatch"})


def _validate_span_tree(what: str, root, problems: list[str]) -> None:
    stack = [(what, root)]
    while stack:
        label, span = stack.pop()
        if not _check_keys(label, span, _SPAN_KEYS, problems):
            continue
        if span["kind"] not in SPAN_KINDS:
            problems.append(f"{label}: unknown span kind {span['kind']!r}")
        if span["end"] is None:
            problems.append(f"{label}: span left open (end is None)")
        elif span["end"] < span["start"]:
            problems.append(
                f"{label}: end {span['end']!r} < start {span['start']!r}"
            )
        events = span["events"]
        if not isinstance(events, list):
            problems.append(f"{label}: events must be a list")
        else:
            for i, event in enumerate(events):
                if (
                    not isinstance(event, Mapping)
                    or "name" not in event
                    or "at" not in event
                ):
                    problems.append(
                        f"{label}.events[{i}]: needs 'name' and 'at'"
                    )
        children = span["children"]
        if not isinstance(children, list):
            problems.append(f"{label}: children must be a list")
            continue
        for i, child in enumerate(children):
            stack.append((f"{label}.children[{i}]", child))


def validate_trace_document(doc) -> None:
    """Raise :class:`ValueError` unless ``doc`` matches the schema."""
    problems: list[str] = []
    top = frozenset({"schema", "name", "clock", "requests", "events"})
    if _check_keys("trace document", doc, top, problems):
        if doc["schema"] != TRACE_SCHEMA:
            problems.append(
                f"trace document: schema {doc['schema']!r} != "
                f"{TRACE_SCHEMA!r}"
            )
        if doc["clock"] not in {"virtual", "wall"}:
            problems.append(
                f"trace document: unknown clock {doc['clock']!r}"
            )
        events = doc["events"]
        if not isinstance(events, list):
            problems.append("trace document: events must be a list")
        else:
            for i, event in enumerate(events):
                if (
                    not isinstance(event, Mapping)
                    or "name" not in event
                    or "at" not in event
                ):
                    problems.append(
                        f"events[{i}]: needs 'name' and 'at'"
                    )
        requests = doc["requests"]
        if not isinstance(requests, list):
            problems.append("trace document: requests must be a list")
            requests = []
        for i, entry in enumerate(requests):
            what = f"requests[{i}]"
            if not _check_keys(what, entry, _TRACE_REQUEST_KEYS, problems):
                continue
            status = entry["status"]
            if status not in _TRACE_STATUSES:
                problems.append(f"{what}: unknown status {status!r}")
            reason = entry["reason"]
            if status == "shed":
                if reason not in SHED_REASONS:
                    problems.append(
                        f"{what}: shed without a typed reason "
                        f"(got {reason!r})"
                    )
            elif reason is not None:
                problems.append(
                    f"{what}: reason {reason!r} on non-shed status "
                    f"{status!r}"
                )
            root = entry["root"]
            _validate_span_tree(f"{what}.root", root, problems)
            if not isinstance(root, Mapping):
                continue
            if root.get("kind") == "request" and status == "ok":
                kinds = {
                    c.get("kind")
                    for c in root.get("children", ())
                    if isinstance(c, Mapping)
                }
                missing = sorted(_REQUIRED_OK_KINDS - kinds)
                if missing:
                    problems.append(
                        f"{what}: completed request missing lifecycle "
                        f"spans {missing}"
                    )
    _fail(problems)
