"""Unified observability: metrics registry, query tracing, exporters.

The paper validates its optimizations by instrumenting a modified
PostgreSQL 8.1 and reading evaluation times and plan shapes off the
server (§8).  Our substitute is this package: one
:class:`MetricsRegistry` every layer reports into (storage, runtime,
engine, workload), a span-based :class:`QueryTracer` covering the full
query lifecycle, and structured exporters — ``EXPLAIN (FORMAT JSON)``
plan documents, flat metrics documents, and the benchmark-table schema
— all deterministic so two identical seeded runs produce byte-identical
output.  See ``docs/observability.md`` for the metric catalog and the
JSON schemas.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.trace import (
    OperatorProfile,
    QueryTracer,
    RequestTrace,
    ServeTracer,
    Span,
    SPAN_KINDS,
    TRACE_SCHEMA,
    TraceContext,
)
from repro.obs.export import (
    BENCH_SCHEMA,
    CALIBRATION_SCHEMA,
    EXPLAIN_SCHEMA,
    METRIC_CATALOG,
    METRICS_SCHEMA,
    SHED_REASONS,
    bench_document,
    explain_document,
    metrics_document,
    plan_explain_dict,
    trace_document,
    validate_bench_document,
    validate_calibration_document,
    validate_explain_document,
    validate_metrics_document,
    validate_trace_document,
)
from repro.obs.expo import (
    metrics_text,
    parse_metrics_text,
    validate_metrics_text,
)
from repro.obs.slo import SlidingDigest, SLOMonitor, quantile
from repro.obs.calib import (
    CandidateReplay,
    NodeCalibration,
    PlanAudit,
    PlanCalibration,
    calibrate_plan,
    q_error,
)

# repro.obs.history is deliberately NOT imported here: it is a
# ``python -m repro.obs.history`` entry point, and importing it from
# the package __init__ would trigger runpy's double-import warning.
# Import it directly: ``from repro.obs.history import ...``.

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "OperatorProfile",
    "QueryTracer",
    "RequestTrace",
    "ServeTracer",
    "SlidingDigest",
    "SLOMonitor",
    "Span",
    "TraceContext",
    "BENCH_SCHEMA",
    "CALIBRATION_SCHEMA",
    "EXPLAIN_SCHEMA",
    "METRICS_SCHEMA",
    "METRIC_CATALOG",
    "SHED_REASONS",
    "SPAN_KINDS",
    "TRACE_SCHEMA",
    "CandidateReplay",
    "NodeCalibration",
    "PlanAudit",
    "PlanCalibration",
    "bench_document",
    "calibrate_plan",
    "explain_document",
    "metrics_document",
    "metrics_text",
    "parse_metrics_text",
    "plan_explain_dict",
    "q_error",
    "quantile",
    "trace_document",
    "validate_bench_document",
    "validate_calibration_document",
    "validate_explain_document",
    "validate_metrics_document",
    "validate_metrics_text",
    "validate_trace_document",
]
