"""Per-tenant sliding-window SLO telemetry for the serving runtime.

The metrics layer records queue-wait and latency *histograms*, which
is the right shape for cheap aggregation but loses order: a histogram
cannot answer "what was p99 over the last N requests".  This module
keeps the raw tail — a bounded sliding window of observations per
tenant — and computes deterministic quantiles over it, plus SLO
attainment (fraction of recent requests that completed within the
tenant's ``slo`` deadline) and error-budget burn rate.

Quantiles use the nearest-rank method on the sorted window: for ``n``
samples the ``q``-quantile is the value at rank ``ceil(q*n)`` (1-based).
No interpolation means the figures are exact functions of the input
sequence — two identical seeded soaks report byte-identical p50/p95/p99.

Burn rate is the standard SRE ratio: ``(1 - attainment) / (1 -
objective)``.  A tenant with a 99% objective burning at rate 1.0 is
spending its error budget exactly as fast as it accrues; above 1.0 it
will exhaust the budget early.  Tenants without an ``slo`` count every
completed request as good, so their attainment reflects shed/error
rates only.

Everything is published as ``serve.slo_*`` gauges labelled by tenant
(see METRIC_CATALOG) and rendered by :meth:`SLOMonitor.render` — the
``python -m repro top`` one-shot view.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Iterable

from repro.obs.metrics import MetricsRegistry

__all__ = ["quantile", "SlidingDigest", "SLOMonitor", "DEFAULT_WINDOW"]

DEFAULT_WINDOW = 256
"""Default sliding-window size (requests) for digests and attainment."""

QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def quantile(values, q: float) -> float:
    """Nearest-rank quantile of ``values`` (0 < q <= 1); 0.0 if empty."""
    data = sorted(values)
    if not data:
        return 0.0
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile fraction out of range: {q}")
    idx = max(0, math.ceil(q * len(data)) - 1)
    return float(data[idx])


class SlidingDigest:
    """A bounded window of observations with deterministic quantiles."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._window = deque(maxlen=window)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self._window.append(float(value))
        self.count += 1
        self.total += float(value)

    def quantile(self, q: float) -> float:
        return quantile(self._window, q)

    def __len__(self) -> int:
        return len(self._window)


class _TenantSLO:
    """Sliding-window SLO state for one tenant."""

    def __init__(self, name, slo, objective, window):
        self.name = name
        self.slo = slo
        self.objective = objective
        self.latency = SlidingDigest(window)
        self.queue_wait = SlidingDigest(window)
        self.good = deque(maxlen=window)
        self.submitted = 0
        self.ok = 0
        self.shed = 0
        self.errors = 0

    def attainment(self) -> float:
        if not self.good:
            return 1.0
        return sum(1 for g in self.good if g) / len(self.good)

    def burn_rate(self) -> float:
        budget = 1.0 - self.objective
        if budget <= 0.0:
            budget = 1e-9
        return (1.0 - self.attainment()) / budget


class SLOMonitor:
    """Per-tenant latency/queue-wait digests, attainment, and burn rate.

    ``specs`` is an iterable of tenant specs (anything with ``name``,
    ``slo`` and optionally ``slo_objective``); tenants not declared up
    front are registered lazily on first observation with no SLO.
    """

    def __init__(
        self,
        specs: Iterable = (),
        metrics: MetricsRegistry | None = None,
        window: int = DEFAULT_WINDOW,
    ):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._window = window
        self._tenants: dict[str, _TenantSLO] = {}
        for spec in specs:
            self._tenants[spec.name] = _TenantSLO(
                spec.name,
                getattr(spec, "slo", None),
                getattr(spec, "slo_objective", 0.99),
                window,
            )

    def _state(self, tenant: str) -> _TenantSLO:
        state = self._tenants.get(tenant)
        if state is None:
            state = _TenantSLO(tenant, None, 0.99, self._window)
            self._tenants[tenant] = state
        return state

    def record(
        self,
        tenant: str,
        status: str,
        latency: float | None = None,
        queue_wait: float | None = None,
    ) -> None:
        """Fold one finished request into the tenant's window.

        ``status`` is the outcome ("ok" / "shed" / "error"); a request
        is *good* when it completed and, if the tenant declared an
        ``slo``, finished within it.
        """
        state = self._state(tenant)
        state.submitted += 1
        if status == "ok":
            state.ok += 1
        elif status == "shed":
            state.shed += 1
        else:
            state.errors += 1
        if latency is not None:
            state.latency.observe(latency)
        if queue_wait is not None:
            state.queue_wait.observe(queue_wait)
        good = status == "ok" and (
            state.slo is None
            or (latency is not None and latency <= state.slo)
        )
        state.good.append(good)
        self._publish(state)

    def _publish(self, state: _TenantSLO) -> None:
        labels = {"tenant": state.name}
        for tag, q in QUANTILES:
            self.metrics.gauge(f"serve.slo_latency_{tag}", **labels).set(
                state.latency.quantile(q)
            )
            self.metrics.gauge(f"serve.slo_queue_wait_{tag}", **labels).set(
                state.queue_wait.quantile(q)
            )
        self.metrics.gauge("serve.slo_attainment", **labels).set(
            state.attainment()
        )
        self.metrics.gauge("serve.slo_burn_rate", **labels).set(
            state.burn_rate()
        )

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------
    def rows(self) -> list[dict]:
        """One summary row per tenant, sorted by name (deterministic)."""
        out = []
        for name in sorted(self._tenants):
            s = self._tenants[name]
            out.append({
                "tenant": name,
                "submitted": s.submitted,
                "ok": s.ok,
                "shed": s.shed,
                "errors": s.errors,
                "latency_p50": s.latency.quantile(0.50),
                "latency_p95": s.latency.quantile(0.95),
                "latency_p99": s.latency.quantile(0.99),
                "queue_wait_p50": s.queue_wait.quantile(0.50),
                "queue_wait_p95": s.queue_wait.quantile(0.95),
                "queue_wait_p99": s.queue_wait.quantile(0.99),
                "slo": s.slo,
                "objective": s.objective,
                "attainment": s.attainment(),
                "burn_rate": s.burn_rate(),
            })
        return out

    def render(self) -> str:
        """The ``python -m repro top`` one-shot table."""
        header = (
            f"{'TENANT':<10} {'OK':>6} {'SHED':>6} {'ERR':>5} "
            f"{'LAT p50':>12} {'LAT p95':>12} {'LAT p99':>12} "
            f"{'WAIT p99':>12} {'SLO%':>7} {'BURN':>7}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows():
            lines.append(
                f"{row['tenant']:<10} {row['ok']:>6} {row['shed']:>6} "
                f"{row['errors']:>5} "
                f"{row['latency_p50']:>12.1f} {row['latency_p95']:>12.1f} "
                f"{row['latency_p99']:>12.1f} "
                f"{row['queue_wait_p99']:>12.1f} "
                f"{row['attainment'] * 100:>6.2f}% "
                f"{row['burn_rate']:>7.2f}"
            )
        return "\n".join(lines)
