"""Benchmark-history store and the perf regression gate.

``benchmarks/out/*.json`` documents (``repro.bench.v1``) are
point-in-time: each run overwrites the last, so a plan regression —
a cost-model change that silently doubles simulated page reads on the
Figure 7 workload, say — is invisible unless someone happens to diff
two checkouts by hand.  This module makes the trajectory durable:

* :func:`ingest_document` appends one run (run id, git sha, table
  rows, flattened metric scalars, and deltas vs the previous run) to
  an append-only ``BENCH_<suite>.json`` history file
  (:data:`HISTORY_SCHEMA`) kept at the repo root and committed.

* :func:`check_history` is the gate: it compares the **latest** run
  against the **baseline** (first) run — numeric cells and metric
  scalars must stay within a symmetric relative tolerance
  (``|latest - base| <= tol * max(|base|, 1.0)``), non-numeric cells
  must match exactly, and row counts may not change.  Everything these
  suites record runs on the simulated cost clock, so drift means a
  real behaviour change, not scheduler noise.

* ``python -m repro.obs.history ingest|diff|check`` is the CLI the CI
  perf-gate job runs: regenerate the benchmarks, ``ingest`` the fresh
  documents on top of the committed baselines, then ``check`` — a
  nonzero exit blocks the merge.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path
from typing import Iterable, Mapping

from repro.obs.export import validate_bench_document

__all__ = [
    "HISTORY_SCHEMA",
    "DEFAULT_TOLERANCE",
    "current_git_sha",
    "flatten_metrics",
    "ingest_document",
    "load_history",
    "validate_history_document",
    "history_path",
    "diff_runs",
    "check_history",
    "main",
]

HISTORY_SCHEMA = "repro.bench_history.v1"

# Generous for simulated-clock metrics (which are exactly reproducible
# at equal code): the cushion absorbs benign cross-version drift such
# as dict-ordering differences, while still catching the 2x page-read
# regressions the gate exists for.
DEFAULT_TOLERANCE = 0.25

_RUN_KEYS = frozenset(
    {"run_id", "git_sha", "rows", "metrics", "metrics_delta"}
)
_TOP_KEYS = frozenset({"schema", "suite", "title", "columns", "runs"})


def current_git_sha(repo_root: str | Path | None = None) -> str:
    """HEAD commit sha, ``REPRO_GIT_SHA`` override, or ``unknown``.

    The override exists for hermetic tests and for CI steps that know
    the sha without a work tree.
    """
    env = os.environ.get("REPRO_GIT_SHA")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=None if repo_root is None else str(repo_root),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def flatten_metrics(metrics_doc: Mapping) -> dict[str, float]:
    """Scalars from an embedded metrics document, one key per number.

    Counters and gauges keep their canonical key; histograms flatten
    to ``<key>.count`` and ``<key>.sum`` (bucket shapes are a catalog
    concern, not a regression signal).
    """
    flat: dict[str, float] = {}
    for key in sorted(metrics_doc.get("metrics", {})):
        entry = metrics_doc["metrics"][key]
        if entry.get("kind") == "histogram":
            flat[f"{key}.count"] = entry["count"]
            flat[f"{key}.sum"] = entry["sum"]
        else:
            flat[key] = entry["value"]
    return flat


def history_path(suite: str, history_dir: str | Path = ".") -> Path:
    return Path(history_dir) / f"BENCH_{suite}.json"


def load_history(path: str | Path) -> dict:
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    validate_history_document(doc)
    return doc


def validate_history_document(doc) -> None:
    """Raise :class:`ValueError` unless ``doc`` matches the schema."""
    problems: list[str] = []
    if not isinstance(doc, Mapping):
        raise ValueError("history document: expected an object")
    missing = sorted(_TOP_KEYS - set(doc))
    unknown = sorted(set(doc) - _TOP_KEYS)
    if missing:
        problems.append(f"history document: missing keys {missing}")
    if unknown:
        problems.append(f"history document: unknown keys {unknown}")
    if not problems:
        if doc["schema"] != HISTORY_SCHEMA:
            problems.append(
                f"history document: schema {doc['schema']!r} != "
                f"{HISTORY_SCHEMA!r}"
            )
        if not isinstance(doc["columns"], list):
            problems.append("history document: columns must be a list")
        runs = doc["runs"]
        if not isinstance(runs, list) or not runs:
            problems.append(
                "history document: runs must be a non-empty list"
            )
        else:
            for i, run in enumerate(runs):
                if not isinstance(run, Mapping) or set(run) != _RUN_KEYS:
                    problems.append(f"runs[{i}]: malformed run entry")
                    continue
                if not isinstance(run["rows"], list) or any(
                    not isinstance(r, list)
                    or len(r) != len(doc["columns"])
                    for r in run["rows"]
                ):
                    problems.append(
                        f"runs[{i}]: rows must be lists matching columns"
                    )
                if i == 0 and run["metrics_delta"] is not None:
                    problems.append(
                        "runs[0]: baseline run cannot carry a delta"
                    )
    if problems:
        raise ValueError("; ".join(problems))


def ingest_document(
    doc: Mapping,
    history_dir: str | Path = ".",
    run_id: str | None = None,
    git_sha: str | None = None,
) -> Path:
    """Append one bench document as a run in its suite's history file.

    Creates ``BENCH_<suite>.json`` on first ingest (that run becomes
    the committed baseline); later ingests append, recording metric
    deltas against the immediately preceding run.  Returns the history
    file path.
    """
    validate_bench_document(doc)
    suite = doc.get("suite") or doc["name"]
    sha = git_sha or doc.get("git_sha") or current_git_sha()
    path = history_path(suite, history_dir)
    if path.exists():
        history = load_history(path)
        if history["columns"] != list(doc["columns"]):
            raise ValueError(
                f"{path}: benchmark columns changed "
                f"({history['columns']} -> {list(doc['columns'])}); "
                "delete the history file to rebaseline"
            )
    else:
        history = {
            "schema": HISTORY_SCHEMA,
            "suite": suite,
            "title": doc["title"],
            "columns": list(doc["columns"]),
            "runs": [],
        }
    metrics = flatten_metrics(doc["metrics"])
    previous = history["runs"][-1] if history["runs"] else None
    delta = None
    if previous is not None:
        delta = {
            key: metrics[key] - previous["metrics"][key]
            for key in sorted(metrics)
            if key in previous["metrics"]
        }
    history["runs"].append({
        "run_id": run_id or f"{sha[:12]}-{len(history['runs']) + 1}",
        "git_sha": sha,
        "rows": [list(r) for r in doc["rows"]],
        "metrics": metrics,
        "metrics_delta": delta,
    })
    validate_history_document(history)
    path.write_text(
        json.dumps(history, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


# ----------------------------------------------------------------------
# Comparison and the regression gate
# ----------------------------------------------------------------------
def _within(latest, base, tolerance: float) -> bool:
    return abs(latest - base) <= tolerance * max(abs(base), 1.0)


def diff_runs(
    history: Mapping,
    tolerance: float = DEFAULT_TOLERANCE,
    column_tolerance: Mapping[str, float] | None = None,
) -> list[str]:
    """Regressions of the latest run against the baseline (first) run.

    Returns human-readable problem lines; empty means the gate passes.
    A single-run history trivially passes (it *is* the baseline).
    """
    column_tolerance = dict(column_tolerance or {})
    runs = history["runs"]
    if len(runs) < 2:
        return []
    base, latest = runs[0], runs[-1]
    suite = history["suite"]
    columns = history["columns"]
    problems: list[str] = []

    if len(base["rows"]) != len(latest["rows"]):
        problems.append(
            f"{suite}: row count changed "
            f"{len(base['rows'])} -> {len(latest['rows'])}"
        )
        return problems
    for i, (brow, lrow) in enumerate(zip(base["rows"], latest["rows"])):
        for col, bval, lval in zip(columns, brow, lrow):
            tol = column_tolerance.get(col, tolerance)
            numeric = isinstance(bval, (int, float)) and not isinstance(
                bval, bool
            )
            if numeric and isinstance(lval, (int, float)):
                if not _within(float(lval), float(bval), tol):
                    problems.append(
                        f"{suite}: rows[{i}].{col} drifted "
                        f"{bval!r} -> {lval!r} (tolerance {tol:.0%})"
                    )
            elif bval != lval:
                problems.append(
                    f"{suite}: rows[{i}].{col} changed {bval!r} -> {lval!r}"
                )
    for key in sorted(base["metrics"]):
        if key not in latest["metrics"]:
            problems.append(f"{suite}: metric {key!r} disappeared")
            continue
        tol = column_tolerance.get(key, tolerance)
        if not _within(latest["metrics"][key], base["metrics"][key], tol):
            problems.append(
                f"{suite}: metric {key!r} drifted "
                f"{base['metrics'][key]!r} -> {latest['metrics'][key]!r} "
                f"(tolerance {tol:.0%})"
            )
    return problems


def check_history(
    history_dir: str | Path = ".",
    suites: Iterable[str] | None = None,
    tolerance: float = DEFAULT_TOLERANCE,
    column_tolerance: Mapping[str, float] | None = None,
) -> list[str]:
    """Run the gate over every (or the named) history file(s)."""
    paths = _select_histories(history_dir, suites)
    problems: list[str] = []
    for path in paths:
        try:
            history = load_history(path)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            problems.append(f"{path}: {exc}")
            continue
        problems.extend(diff_runs(history, tolerance, column_tolerance))
    return problems


def _select_histories(
    history_dir: str | Path, suites: Iterable[str] | None
) -> list[Path]:
    if suites:
        return [history_path(s, history_dir) for s in suites]
    return sorted(Path(history_dir).glob("BENCH_*.json"))


# ----------------------------------------------------------------------
# CLI: python -m repro.obs.history {ingest,diff,check}
# ----------------------------------------------------------------------
def _cmd_ingest(args) -> int:
    out_dir = Path(args.out_dir)
    docs = []
    for path in sorted(out_dir.glob("*.json")):
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        if doc.get("schema") != "repro.bench.v1":
            continue
        suite = doc.get("suite") or doc.get("name")
        if args.suites and suite not in args.suites:
            continue
        docs.append((path, doc))
    if not docs:
        print(f"no bench documents found under {out_dir}", file=sys.stderr)
        return 1
    for path, doc in docs:
        dest = ingest_document(doc, history_dir=args.history_dir)
        print(f"ingested {path} -> {dest}")
    return 0


def _report(problems: list[str], ok_message: str) -> int:
    for line in problems:
        print(f"REGRESSION: {line}")
    if problems:
        print(f"{len(problems)} regression(s) found")
        return 1
    print(ok_message)
    return 0


def _cmd_diff(args) -> int:
    for path in _select_histories(args.history_dir, args.suites):
        history = load_history(path)
        runs = history["runs"]
        print(
            f"{history['suite']}: {len(runs)} run(s), "
            f"baseline {runs[0]['run_id']}, latest {runs[-1]['run_id']}"
        )
        for line in diff_runs(history, args.tolerance, args.column):
            print(f"  {line}")
        if len(runs) >= 2 and runs[-1]["metrics_delta"]:
            for key, value in sorted(runs[-1]["metrics_delta"].items()):
                if value:
                    print(f"  delta {key} {value:+g}")
    return 0


def _cmd_check(args) -> int:
    problems = check_history(
        args.history_dir, args.suites, args.tolerance, args.column
    )
    return _report(problems, "benchmark history check passed")


def _column_override(text: str) -> tuple[str, float]:
    name, sep, value = text.partition("=")
    if not sep:
        raise argparse.ArgumentTypeError(
            f"expected column=tolerance, got {text!r}"
        )
    return name, float(value)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.history",
        description=(
            "Append benchmark runs to BENCH_<suite>.json history files "
            "and gate the latest run against the committed baseline."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--history-dir", default=".",
        help="directory holding BENCH_<suite>.json files (default: .)",
    )
    common.add_argument(
        "suites", nargs="*",
        help="suite names to act on (default: all found)",
    )

    p_ingest = sub.add_parser(
        "ingest", parents=[common],
        help="append benchmarks/out documents to their history files",
    )
    p_ingest.add_argument(
        "--out-dir", default="benchmarks/out",
        help="directory of repro.bench.v1 documents (default: benchmarks/out)",
    )
    p_ingest.set_defaults(func=_cmd_ingest)

    gate = argparse.ArgumentParser(add_help=False)
    gate.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help=(
            "relative drift allowed per numeric cell/metric "
            f"(default: {DEFAULT_TOLERANCE})"
        ),
    )
    gate.add_argument(
        "--column", action="append", type=_column_override, default=[],
        metavar="NAME=TOL",
        help="per-column (or per-metric-key) tolerance override",
    )

    p_diff = sub.add_parser(
        "diff", parents=[common, gate],
        help="show latest-vs-baseline drift without failing",
    )
    p_diff.set_defaults(func=_cmd_diff)

    p_check = sub.add_parser(
        "check", parents=[common, gate],
        help="exit nonzero if the latest run regressed past tolerance",
    )
    p_check.set_defaults(func=_cmd_check)

    args = parser.parse_args(argv)
    if hasattr(args, "column"):
        args.column = dict(args.column)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
