"""Schema validation entry point: ``python -m repro.obs.validate``.

Validates observability JSON documents (metrics, explain, bench,
calibration, bench-history, trace — dispatched on their ``schema``
tag) read from file arguments or stdin (``-``).  With ``--text`` the
inputs are instead Prometheus-style text expositions (the CLI's
``--metrics-text`` output), checked line by line against
METRIC_CATALOG.  Exits non-zero on the first malformed document; the
CI benchmark-smoke job runs this over ``benchmarks/out/*.json``, the
CLI's ``--metrics-json``/``--metrics-text`` and ``--calibrate``
output, the serving soak's ``--trace-json`` stream, and the committed
``BENCH_*.json`` baselines.
"""

from __future__ import annotations

import json
import sys

from repro.obs.export import (
    BENCH_SCHEMA,
    CALIBRATION_SCHEMA,
    EXPLAIN_SCHEMA,
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    validate_bench_document,
    validate_calibration_document,
    validate_explain_document,
    validate_metrics_document,
    validate_trace_document,
)
from repro.obs.expo import validate_metrics_text
from repro.obs.history import HISTORY_SCHEMA, validate_history_document

__all__ = ["validate_document", "main"]

_VALIDATORS = {
    METRICS_SCHEMA: validate_metrics_document,
    EXPLAIN_SCHEMA: validate_explain_document,
    BENCH_SCHEMA: validate_bench_document,
    CALIBRATION_SCHEMA: validate_calibration_document,
    HISTORY_SCHEMA: validate_history_document,
    TRACE_SCHEMA: validate_trace_document,
}


def validate_document(doc) -> str:
    """Validate one document by its ``schema`` tag; returns the tag."""
    if not isinstance(doc, dict) or "schema" not in doc:
        raise ValueError("document has no 'schema' tag")
    schema = doc["schema"]
    validator = _VALIDATORS.get(schema)
    if validator is None:
        raise ValueError(f"unknown schema {schema!r}")
    validator(doc)
    return schema


def main(argv: list[str] | None = None) -> int:
    paths = list(sys.argv[1:] if argv is None else argv)
    text_mode = "--text" in paths
    if text_mode:
        paths = [p for p in paths if p != "--text"]
    if not paths:
        print(
            "usage: python -m repro.obs.validate [--text] "
            "FILE [FILE...] | -",
            file=sys.stderr,
        )
        return 2
    status = 0
    for path in paths:
        try:
            text = sys.stdin.read() if path == "-" else open(path).read()
            if text_mode:
                samples = validate_metrics_text(text)
                schema = f"metrics text, {samples} samples"
            else:
                schema = validate_document(json.loads(text))
        except (OSError, ValueError) as exc:
            print(f"{path}: INVALID: {exc}", file=sys.stderr)
            status = 1
            continue
        print(f"{path}: ok ({schema})")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
