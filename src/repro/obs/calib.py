"""Cost-model calibration: closing the estimate→actual loop.

The paper's optimizers (CS/CS+/VE/VE+) win or lose on estimated
cardinalities and costs (Sections 5–6), yet estimates and actuals used
to live in separate documents that nothing joined: the annotated plan
carried per-node predictions, the tracer carried per-operator work,
and no one could say *where* the model was wrong.  This module is the
join.

Given an annotated plan tree and the actual per-node counts an
execution recorded (the runtime's
:attr:`~repro.plans.runtime.ExecutionContext.actuals` map, or the
tracer's :class:`~repro.obs.trace.OperatorProfile` rows — both keyed
by the structural plan keys of :mod:`repro.plans.lower`),
:func:`calibrate_plan` produces a :class:`PlanCalibration`:

* per-node and per-plan **Q-error** — ``max(est/act, act/est)``, the
  standard cardinality-estimation error measure (≥ 1.0; exactly 1.0
  means the model was right);
* **misestimate attribution** — each erring node is blamed on its own
  estimator step (base-table statistics, selection uniformity, join
  selectivity, group-by collapse, semijoin reduction) *unless* its
  error is no worse than its inputs', in which case the error is
  ``inherited`` — so the dominant misestimate points at the estimator
  rule that actually broke, not at whichever operator sat above it;
* ``calib.*`` metrics (Q-error histograms per operator kind,
  misestimate counters per source) published into a
  :class:`~repro.obs.metrics.MetricsRegistry`.

:class:`PlanAudit` complements it with plan-*choice* quality: replay
the candidate plans the optimizer family considered and report
``plan_regret`` — chosen-plan actual cost over best-replayed actual
cost (1.0 means the optimizer picked the fastest plan it had).

Like :mod:`repro.obs.export`, this module must not import
``repro.plans`` at runtime (the plans layer imports ``repro.obs``);
plan nodes are traversed duck-typed and dispatched by class name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.obs.export import CALIBRATION_SCHEMA

__all__ = [
    "NodeCalibration",
    "PlanCalibration",
    "CandidateReplay",
    "PlanAudit",
    "calibrate_plan",
    "q_error",
    "MISESTIMATE_THRESHOLD",
    "Q_ERROR_BUCKETS",
    "PLAN_REGRET_BUCKETS",
]

# A node is *counted* as a misestimate (calib.misestimates) once its
# Q-error reaches this factor.  2.0 is the conventional "off by 2x"
# line used in the cardinality-estimation literature.
MISESTIMATE_THRESHOLD = 2.0

# Q-error and regret are ratios ≥ 1, concentrated near 1 — decade
# buckets (DEFAULT_BUCKETS) would dump everything into one bin.
Q_ERROR_BUCKETS = (1.0, 1.1, 1.25, 1.5, 2.0, 4.0, 8.0, 16.0, 64.0, 256.0)
PLAN_REGRET_BUCKETS = (1.0, 1.05, 1.1, 1.25, 1.5, 2.0, 4.0, 10.0, 100.0)

# Node class name → the estimator step that produced its cardinality.
_OWN_SOURCE: dict[str, str] = {
    "Scan": "base_table_stats",
    "IndexScan": "base_table_stats",
    "Select": "selection",
    "ProductJoin": "join_selectivity",
    "GroupBy": "group_by_collapse",
    "SemiJoin": "semijoin",
}

# Node class name → the `op` vocabulary of repro.explain.v1.
_OP_NAMES: dict[str, str] = {
    "Scan": "scan",
    "IndexScan": "index_scan",
    "Select": "select",
    "ProductJoin": "product_join",
    "GroupBy": "group_by",
    "SemiJoin": "semijoin",
}

_EXACT_EPS = 1e-9


def q_error(estimated: float, actual: float) -> float:
    """``max(est/act, act/est)``, floored at one row on both sides.

    The floor keeps empty results well-defined (an estimate of 1 for
    an actual of 0 is not an error worth attributing) and matches the
    estimator's own ``max(1.0, ...)`` clamping.
    """
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


@dataclass(frozen=True)
class NodeCalibration:
    """One plan node's estimate joined with its actual execution."""

    key: tuple = field(compare=False, repr=False)
    op: str
    label: str
    estimated_rows: float
    estimated_cost: float
    actual_rows: int | None
    actual_elapsed: float | None
    q_error: float | None
    source: str | None
    """Attribution: ``exact`` (no error), ``inherited`` (error no
    worse than the inputs'), or the estimator step that introduced it
    (``base_table_stats`` / ``selection`` / ``join_selectivity`` /
    ``group_by_collapse`` / ``semijoin``).  ``None`` when the node
    was never executed, so no actual exists to compare against."""

    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "label": self.label,
            "estimated_rows": self.estimated_rows,
            "estimated_cost": self.estimated_cost,
            "actual_rows": self.actual_rows,
            "actual_elapsed": self.actual_elapsed,
            "q_error": self.q_error,
            "source": self.source,
        }


@dataclass
class PlanCalibration:
    """The estimate→actual join for one executed plan.

    ``nodes`` holds one entry per *unique* structural key, children
    before parents (repeated subtrees collapse to their shared DAG
    node, exactly as the runtime executes them).
    """

    nodes: list[NodeCalibration]
    stats_epoch: int | None = None

    def __post_init__(self):
        self._by_key = {n.key: n for n in self.nodes}

    # ------------------------------------------------------------------
    def lookup(self, key: tuple) -> NodeCalibration | None:
        """The calibration row for a structural plan key, if any."""
        return self._by_key.get(key)

    @property
    def plan_q_error(self) -> float:
        """Worst per-node Q-error (1.0 for a perfectly estimated plan)."""
        return max(
            (n.q_error for n in self.nodes if n.q_error is not None),
            default=1.0,
        )

    @property
    def mean_q_error(self) -> float:
        """Geometric mean of per-node Q-errors."""
        qs = [n.q_error for n in self.nodes if n.q_error is not None]
        if not qs:
            return 1.0
        product = 1.0
        for q in qs:
            product *= q
        return product ** (1.0 / len(qs))

    @property
    def dominant(self) -> NodeCalibration | None:
        """The node carrying the worst Q-error (None if all exact)."""
        worst = None
        for n in self.nodes:
            if n.q_error is None or n.q_error <= 1.0 + _EXACT_EPS:
                continue
            if worst is None or n.q_error > worst.q_error:
                worst = n
        return worst

    @property
    def misestimates(self) -> list[NodeCalibration]:
        """Nodes whose Q-error crosses :data:`MISESTIMATE_THRESHOLD`."""
        return [
            n for n in self.nodes
            if n.q_error is not None and n.q_error >= MISESTIMATE_THRESHOLD
        ]

    # ------------------------------------------------------------------
    def publish(self, metrics) -> None:
        """Record the ``calib.*`` metrics into a registry."""
        if metrics is None:
            return
        metrics.counter("calib.runs").inc()
        for n in self.nodes:
            if n.q_error is None:
                continue
            metrics.histogram(
                "calib.q_error", buckets=Q_ERROR_BUCKETS, operator=n.op
            ).observe(n.q_error)
            if n.q_error >= MISESTIMATE_THRESHOLD and n.source is not None:
                metrics.counter("calib.misestimates", source=n.source).inc()

    def to_dict(self) -> dict:
        dominant = self.dominant
        return {
            "stats_epoch": self.stats_epoch,
            "nodes": [n.to_dict() for n in self.nodes],
            "plan_q_error": self.plan_q_error,
            "mean_q_error": self.mean_q_error,
            "dominant": None if dominant is None else {
                "label": dominant.label,
                "q_error": dominant.q_error,
                "source": dominant.source,
            },
        }

    def document(
        self,
        query=None,
        algorithm: str | None = None,
        audit: "PlanAudit | None" = None,
    ) -> dict:
        """The schema-tagged ``repro.calibration.v1`` JSON document."""
        doc = {
            "schema": CALIBRATION_SCHEMA,
            "query": None if query is None else str(query),
            "algorithm": algorithm,
            "audit": None if audit is None else audit.to_dict(),
        }
        doc.update(self.to_dict())
        return doc


# ----------------------------------------------------------------------
# The estimate→actual join
# ----------------------------------------------------------------------
def _normalize_actuals(actuals) -> dict[tuple, tuple[int, float | None]]:
    """Accept a key→(rows, elapsed) mapping or OperatorProfile rows."""
    if isinstance(actuals, Mapping):
        return dict(actuals)
    out: dict[tuple, tuple[int, float | None]] = {}
    for row in actuals:
        key = getattr(row, "node_key", None)
        if key is None:
            continue
        # An executed row beats a memo-hit row for the same key (the
        # memo hit's zero elapsed is reuse, not the operator's work).
        if key not in out or not row.memoized:
            out[key] = (row.out_rows, row.elapsed)
    return out


def calibrate_plan(
    plan,
    actuals: Mapping[tuple, tuple[int, float | None]] | Iterable,
    stats_epoch: int | None = None,
) -> PlanCalibration:
    """Join a plan's per-node estimates with executed actuals.

    ``plan`` must be annotated (:func:`repro.plans.annotate.annotate`)
    so every node carries estimated stats; ``actuals`` is either the
    :attr:`~repro.plans.runtime.ExecutionContext.actuals` map of the
    run or the tracer's :class:`~repro.obs.trace.OperatorProfile`
    rows.  Matching is by structural plan key — the identity shared by
    CSE, the runtime memo, and the per-operator hooks — so the join
    survives plan-DAG sharing: a subtree repeated in the tree collapses
    onto the one DAG node that actually ran.
    """
    actual_map = _normalize_actuals(actuals)

    nodes: list[NodeCalibration] = []
    q_by_key: dict[tuple, float] = {}
    seen: set[tuple] = set()

    # Iterative post-order (children first), mirroring lower(): a
    # node's attribution needs its children's Q-errors.
    stack = [plan]
    while stack:
        node = stack[-1]
        key = node.structural_key()
        if key in seen:
            stack.pop()
            continue
        pending = [
            c for c in node.children() if c.structural_key() not in seen
        ]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        seen.add(key)

        kind = type(node).__name__
        op = _OP_NAMES.get(kind, kind.lower())
        estimated_rows = (
            float(node.stats.cardinality) if node.stats is not None else 1.0
        )
        estimated_cost = float(node.op_cost or 0.0)
        actual = actual_map.get(key)
        if actual is None or node.stats is None:
            q = source = None
            actual_rows = actual_elapsed = None
        else:
            actual_rows, actual_elapsed = actual
            q = q_error(estimated_rows, actual_rows)
            q_by_key[key] = q
            child_q = max(
                (
                    q_by_key.get(c.structural_key(), 1.0)
                    for c in node.children()
                ),
                default=1.0,
            )
            if q <= 1.0 + _EXACT_EPS:
                source = "exact"
            elif q <= child_q + _EXACT_EPS:
                source = "inherited"
            else:
                source = _OWN_SOURCE.get(kind, "unknown")
        nodes.append(
            NodeCalibration(
                key=key,
                op=op,
                label=node.label(),
                estimated_rows=estimated_rows,
                estimated_cost=estimated_cost,
                actual_rows=actual_rows,
                actual_elapsed=actual_elapsed,
                q_error=q,
                source=source,
            )
        )
    return PlanCalibration(nodes=nodes, stats_epoch=stats_epoch)


# ----------------------------------------------------------------------
# Plan-choice audit
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CandidateReplay:
    """One candidate plan replayed under the cost clock."""

    algorithm: str
    estimated_cost: float
    actual_cost: float
    chosen: bool

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "estimated_cost": self.estimated_cost,
            "actual_cost": self.actual_cost,
            "chosen": self.chosen,
        }


@dataclass
class PlanAudit:
    """Replayed candidates plus the regret of the optimizer's choice.

    ``plan_regret`` is chosen-plan actual cost over best-replayed
    actual cost: 1.0 means the optimizer picked the fastest plan among
    the candidates the CS/CS+/VE/VE+ family produced; 2.0 means the
    chosen plan cost twice the best one available.
    """

    candidates: list[CandidateReplay]

    @property
    def chosen(self) -> CandidateReplay:
        for c in self.candidates:
            if c.chosen:
                return c
        raise ValueError("audit has no chosen candidate")

    @property
    def best(self) -> CandidateReplay:
        return min(self.candidates, key=lambda c: c.actual_cost)

    @property
    def plan_regret(self) -> float:
        best = max(self.best.actual_cost, 1.0)
        return max(self.chosen.actual_cost, 1.0) / best

    def publish(self, metrics) -> None:
        if metrics is None:
            return
        metrics.counter("calib.plans_replayed").inc(len(self.candidates))
        metrics.histogram(
            "calib.plan_regret", buckets=PLAN_REGRET_BUCKETS
        ).observe(self.plan_regret)

    def to_dict(self) -> dict:
        return {
            "candidates": [c.to_dict() for c in self.candidates],
            "plan_regret": self.plan_regret,
        }
