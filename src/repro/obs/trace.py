"""Span-based query-lifecycle tracing.

A :class:`QueryTracer` observes one query (or batch) end to end:
lifecycle phases — parse → optimize → lower/CSE → execute — are opened
as nested :class:`Span`\\ s, and within an execute span the runtime's
tracer hooks record one operator span per evaluated plan node (plus
memo hits, guard degradations, and retries).  The tracer doubles as
the profiling collector: its ``operators`` list is the per-operator
breakdown ``EXPLAIN ANALYZE`` prints, which is why
:class:`~repro.plans.profile.ProfilingTracer` is this class.

All span timing uses the simulated cost clock
(:meth:`~repro.storage.iostats.IOStats.elapsed`), never the wall
clock, so traces are deterministic and byte-identical across repeated
seeded runs.

Degradation notes are keyed by plan-node identity: ``on_degrade``
fires from *inside* an operator (before its ``on_execute``), and an
earlier implementation kept a single pending slot — a degrade note
could leak onto the wrong profile row when the degraded operator was
followed by a memo hit, or raised before completing.  Keying by node
makes the note attach to exactly the operator that degraded, or to
nothing at all.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.storage.iostats import IOStats

if TYPE_CHECKING:  # plans imports obs back; keep this one-way at runtime
    from repro.plans.nodes import PlanNode

__all__ = ["OperatorProfile", "Span", "QueryTracer"]


@dataclass(frozen=True)
class OperatorProfile:
    """One operator's share of the run."""

    label: str
    out_rows: int
    tuples: int
    page_reads: int
    page_writes: int
    elapsed: float
    buffer_hits: int = 0
    retries: int = 0
    retry_wait: float = 0.0
    memoized: bool = False
    degraded: str | None = None
    """Guard downgrade note (hash → sort spill path), if any."""
    node_key: tuple | None = field(default=None, compare=False, repr=False)
    """Structural plan key of the producing node (not serialized: the
    calibration layer joins estimates to this row by it)."""

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "out_rows": self.out_rows,
            "tuples": self.tuples,
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "buffer_hits": self.buffer_hits,
            "retries": self.retries,
            "retry_wait": self.retry_wait,
            "elapsed": self.elapsed,
            "memoized": self.memoized,
            "degraded": self.degraded,
        }


@dataclass
class Span:
    """One traced interval, timed on the simulated cost clock."""

    name: str
    kind: str = "phase"
    start: float = 0.0
    end: float | None = None
    attributes: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)

    @property
    def cost(self) -> float:
        """Cost units spent inside this span (0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "cost": self.cost,
            "attributes": dict(self.attributes),
            "events": [dict(e) for e in self.events],
            "children": [c.to_dict() for c in self.children],
        }


class QueryTracer:
    """Lifecycle spans plus the runtime's per-operator hooks.

    Implements the :class:`~repro.plans.runtime.Tracer` protocol
    (``on_execute`` / ``on_memo_hit`` / ``on_degrade``) and adds a span
    API for the phases around execution::

        tracer = QueryTracer()
        with tracer.span("optimize", algorithm="ve+"):
            ...
        ctx = ExecutionContext(..., tracer=tracer)
        tracer.bind_stats(ctx.stats)          # cost clock source
        with tracer.span("execute"):
            evaluate_dag(dag, ctx)

    ``operators`` collects one :class:`OperatorProfile` row per
    evaluated node — the ``EXPLAIN ANALYZE`` breakdown.
    """

    def __init__(self, stats: IOStats | None = None):
        self.root = Span("query", kind="lifecycle")
        self._stack: list[Span] = [self.root]
        self.operators: list[OperatorProfile] = []
        self._stats = stats
        # Pending degradation notes keyed by plan-node identity; see
        # the module docstring for why this must not be a single slot.
        self._pending_degrade: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Cost clock
    # ------------------------------------------------------------------
    def bind_stats(self, stats: IOStats) -> None:
        """Attach the stats clock that timestamps spans."""
        self._stats = stats

    def _now(self) -> float:
        return self._stats.elapsed() if self._stats is not None else 0.0

    # ------------------------------------------------------------------
    # Lifecycle spans
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, kind: str = "phase", **attributes):
        """Open a nested span; closes (cost-stamped) on exit."""
        span = Span(
            name, kind=kind, start=self._now(), attributes=dict(attributes)
        )
        self._stack[-1].children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end = self._now()
            self._stack.pop()

    def event(self, name: str, **attributes) -> None:
        """Record a point event on the innermost open span."""
        self._stack[-1].events.append(
            {"name": name, "at": self._now(), **attributes}
        )

    @property
    def current(self) -> Span:
        return self._stack[-1]

    def finish(self) -> Span:
        """Close the root span and return it."""
        if self.root.end is None:
            self.root.end = self._now()
        return self.root

    # ------------------------------------------------------------------
    # Runtime hooks (Tracer protocol)
    # ------------------------------------------------------------------
    @staticmethod
    def _node_key(node: PlanNode):
        # The tracer duck-types nodes; only real plan nodes carry the
        # structural key that calibration joins estimates to actuals on.
        key = getattr(node, "structural_key", None)
        return key() if key is not None else None

    def on_degrade(self, node: PlanNode, description: str) -> None:
        # Fires from inside the operator, before its on_execute; key
        # by the node so the note can only attach to *this* operator.
        self._pending_degrade[id(node)] = description
        self.event("degrade", operator=node.label(), description=description)

    def on_execute(
        self, node: PlanNode, result, delta: IOStats
    ) -> None:
        degraded = self._pending_degrade.pop(id(node), None)
        row = OperatorProfile(
            label=node.label(),
            out_rows=result.ntuples,
            tuples=delta.tuples_processed,
            page_reads=delta.page_reads,
            page_writes=delta.page_writes,
            buffer_hits=delta.buffer_hits,
            retries=delta.retries,
            retry_wait=delta.retry_wait,
            elapsed=delta.elapsed(),
            degraded=degraded,
            node_key=self._node_key(node),
        )
        self.operators.append(row)
        now = self._now()
        span = Span(
            node.label(),
            kind="operator",
            start=now - delta.elapsed(),
            end=now,
            attributes=row.to_dict(),
        )
        self._stack[-1].children.append(span)

    def on_memo_hit(self, node: PlanNode, result) -> None:
        row = OperatorProfile(
            label=node.label(),
            out_rows=result.ntuples,
            tuples=0,
            page_reads=0,
            page_writes=0,
            elapsed=0.0,
            memoized=True,
            node_key=self._node_key(node),
        )
        self.operators.append(row)
        now = self._now()
        span = Span(
            node.label(),
            kind="operator",
            start=now,
            end=now,
            attributes=row.to_dict(),
        )
        self._stack[-1].children.append(span)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The whole trace as one JSON-safe span tree."""
        return self.finish().to_dict()
