"""Span-based query-lifecycle tracing.

A :class:`QueryTracer` observes one query (or batch) end to end:
lifecycle phases — parse → optimize → lower/CSE → execute — are opened
as nested :class:`Span`\\ s, and within an execute span the runtime's
tracer hooks record one operator span per evaluated plan node (plus
memo hits, guard degradations, and retries).  The tracer doubles as
the profiling collector: its ``operators`` list is the per-operator
breakdown ``EXPLAIN ANALYZE`` prints, which is why
:class:`~repro.plans.profile.ProfilingTracer` is this class.

All span timing uses the simulated cost clock
(:meth:`~repro.storage.iostats.IOStats.elapsed`), never the wall
clock, so traces are deterministic and byte-identical across repeated
seeded runs.

Degradation notes are keyed by plan-node identity: ``on_degrade``
fires from *inside* an operator (before its ``on_execute``), and an
earlier implementation kept a single pending slot — a degrade note
could leak onto the wrong profile row when the degraded operator was
followed by a memo hit, or raised before completing.  Keying by node
makes the note attach to exactly the operator that degraded, or to
nothing at all.

Request-scoped tracing (the serving runtime): a :class:`TraceContext`
identifies one served request (request id, tenant, pinned stats
epoch); a :class:`RequestTrace` wraps one request's
:class:`QueryTracer` with the serving lifecycle spans — admission →
queue wait → dispatch → plan/execute (operator spans nest inside
execute); a :class:`ServeTracer` collects every request trace of a
soak plus server-level events (reloads, snapshot retirements) and
assembles the strict ``repro.trace.v1`` document (validated by
:func:`repro.obs.export.validate_trace_document`).  All serving spans
are timestamped on the runtime's clock — the virtual clock under the
deterministic driver — so two identical seeded soaks emit
byte-identical trace documents.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.storage.iostats import IOStats

if TYPE_CHECKING:  # plans imports obs back; keep this one-way at runtime
    from repro.plans.nodes import PlanNode

__all__ = [
    "OperatorProfile",
    "Span",
    "QueryTracer",
    "TraceContext",
    "RequestTrace",
    "ServeTracer",
    "TRACE_SCHEMA",
    "SPAN_KINDS",
]

TRACE_SCHEMA = "repro.trace.v1"

# The closed span-kind vocabulary of the trace document.  ``lifecycle``
# and ``phase`` come from the single-query tracer, ``operator`` from
# the runtime hooks, and the serving kinds from RequestTrace.
SPAN_KINDS = frozenset({
    "lifecycle",
    "phase",
    "operator",
    "request",
    "admission",
    "queue",
    "dispatch",
})


@dataclass(frozen=True)
class OperatorProfile:
    """One operator's share of the run."""

    label: str
    out_rows: int
    tuples: int
    page_reads: int
    page_writes: int
    elapsed: float
    buffer_hits: int = 0
    retries: int = 0
    retry_wait: float = 0.0
    memoized: bool = False
    degraded: str | None = None
    """Guard downgrade note (hash → sort spill path), if any."""
    node_key: tuple | None = field(default=None, compare=False, repr=False)
    """Structural plan key of the producing node (not serialized: the
    calibration layer joins estimates to this row by it)."""

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "out_rows": self.out_rows,
            "tuples": self.tuples,
            "page_reads": self.page_reads,
            "page_writes": self.page_writes,
            "buffer_hits": self.buffer_hits,
            "retries": self.retries,
            "retry_wait": self.retry_wait,
            "elapsed": self.elapsed,
            "memoized": self.memoized,
            "degraded": self.degraded,
        }


@dataclass
class Span:
    """One traced interval, timed on the simulated cost clock."""

    name: str
    kind: str = "phase"
    start: float = 0.0
    end: float | None = None
    attributes: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)

    @property
    def cost(self) -> float:
        """Cost units spent inside this span (0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "cost": self.cost,
            "attributes": dict(self.attributes),
            "events": [dict(e) for e in self.events],
            "children": [c.to_dict() for c in self.children],
        }


class QueryTracer:
    """Lifecycle spans plus the runtime's per-operator hooks.

    Implements the :class:`~repro.plans.runtime.Tracer` protocol
    (``on_execute`` / ``on_memo_hit`` / ``on_degrade``) and adds a span
    API for the phases around execution::

        tracer = QueryTracer()
        with tracer.span("optimize", algorithm="ve+"):
            ...
        ctx = ExecutionContext(..., tracer=tracer)
        tracer.bind_stats(ctx.stats)          # cost clock source
        with tracer.span("execute"):
            evaluate_dag(dag, ctx)

    ``operators`` collects one :class:`OperatorProfile` row per
    evaluated node — the ``EXPLAIN ANALYZE`` breakdown.
    """

    def __init__(
        self,
        stats: IOStats | None = None,
        clock: Callable[[], float] | None = None,
        root_name: str = "query",
        root_kind: str = "lifecycle",
    ):
        self.root = Span(root_name, kind=root_kind)
        self._stack: list[Span] = [self.root]
        self.operators: list[OperatorProfile] = []
        self._stats = stats
        self._clock = clock
        # Pending degradation notes keyed by plan-node identity; see
        # the module docstring for why this must not be a single slot.
        self._pending_degrade: dict[int, str] = {}

    # ------------------------------------------------------------------
    # Cost clock
    # ------------------------------------------------------------------
    def bind_stats(self, stats: IOStats) -> None:
        """Attach the stats clock that timestamps spans.

        A bound stats clock takes precedence over ``bind_clock``: per
        -query tracing measures cost relative to the run's own IOStats.
        """
        self._stats = stats

    def bind_clock(self, clock: Callable[[], float] | None) -> None:
        """Attach an external time source (e.g. the serving clock)."""
        self._clock = clock

    def _now(self) -> float:
        if self._stats is not None:
            return self._stats.elapsed()
        if self._clock is not None:
            return self._clock()
        return 0.0

    # ------------------------------------------------------------------
    # Lifecycle spans
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, kind: str = "phase", **attributes):
        """Open a nested span; closes (cost-stamped) on exit.

        If the body raises, the span still closes — an ``error`` event
        carrying the exception type and message is recorded on it, and
        any descendant spans the body left open (via ``push_span`` or a
        hook that raised mid-way) are closed too, so the failure cannot
        corrupt the parentage of later spans.
        """
        span = self.push_span(name, kind=kind, **attributes)
        try:
            yield span
        except BaseException as exc:
            self._record_error(span, exc)
            raise
        finally:
            self.pop_span(span)

    def push_span(
        self,
        name: str,
        kind: str = "phase",
        start: float | None = None,
        **attributes,
    ) -> Span:
        """Open a span without a ``with`` block (close via ``pop_span``).

        The serving layer needs this: a request's queue span opens at
        admission and closes at dispatch — two different call sites.
        """
        span = Span(
            name,
            kind=kind,
            start=self._now() if start is None else start,
            attributes=dict(attributes),
        )
        self._stack[-1].children.append(span)
        self._stack.append(span)
        return span

    def pop_span(self, span: Span | None = None, end: float | None = None) -> None:
        """Close the innermost open span — or, given ``span``, close it
        and any descendants still dangling above it (defensive
        rebalance: a raising body must not skew later parentage)."""
        target = span if span is not None else self._stack[-1]
        if not any(open_span is target for open_span in self._stack[1:]):
            return  # already closed (or the root): nothing to do
        now = self._now() if end is None else end
        while len(self._stack) > 1:
            top = self._stack.pop()
            if top.end is None:
                top.end = now
            if top is target:
                return

    def _record_error(self, span: Span, exc: BaseException) -> None:
        span.events.append({
            "name": "error",
            "at": self._now(),
            "type": type(exc).__name__,
            "message": str(exc),
        })

    def event(self, name: str, **attributes) -> None:
        """Record a point event on the innermost open span."""
        self._stack[-1].events.append(
            {"name": name, "at": self._now(), **attributes}
        )

    @property
    def current(self) -> Span:
        return self._stack[-1]

    def finish(self) -> Span:
        """Close any dangling spans plus the root, and return the root."""
        now = self._now()
        while len(self._stack) > 1:
            top = self._stack.pop()
            if top.end is None:
                top.end = now
        if self.root.end is None:
            self.root.end = now
        return self.root

    # ------------------------------------------------------------------
    # Runtime hooks (Tracer protocol)
    # ------------------------------------------------------------------
    @staticmethod
    def _node_key(node: PlanNode):
        # The tracer duck-types nodes; only real plan nodes carry the
        # structural key that calibration joins estimates to actuals on.
        key = getattr(node, "structural_key", None)
        return key() if key is not None else None

    def on_degrade(self, node: PlanNode, description: str) -> None:
        # Fires from inside the operator, before its on_execute; key
        # by the node so the note can only attach to *this* operator.
        self._pending_degrade[id(node)] = description
        self.event("degrade", operator=node.label(), description=description)

    def on_execute(
        self, node: PlanNode, result, delta: IOStats
    ) -> None:
        degraded = self._pending_degrade.pop(id(node), None)
        row = OperatorProfile(
            label=node.label(),
            out_rows=result.ntuples,
            tuples=delta.tuples_processed,
            page_reads=delta.page_reads,
            page_writes=delta.page_writes,
            buffer_hits=delta.buffer_hits,
            retries=delta.retries,
            retry_wait=delta.retry_wait,
            elapsed=delta.elapsed(),
            degraded=degraded,
            node_key=self._node_key(node),
        )
        self.operators.append(row)
        now = self._now()
        span = Span(
            node.label(),
            kind="operator",
            start=now - delta.elapsed(),
            end=now,
            attributes=row.to_dict(),
        )
        self._stack[-1].children.append(span)

    def on_memo_hit(self, node: PlanNode, result) -> None:
        row = OperatorProfile(
            label=node.label(),
            out_rows=result.ntuples,
            tuples=0,
            page_reads=0,
            page_writes=0,
            elapsed=0.0,
            memoized=True,
            node_key=self._node_key(node),
        )
        self.operators.append(row)
        now = self._now()
        span = Span(
            node.label(),
            kind="operator",
            start=now,
            end=now,
            attributes=row.to_dict(),
        )
        self._stack[-1].children.append(span)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The whole trace as one JSON-safe span tree."""
        return self.finish().to_dict()


@dataclass
class TraceContext:
    """Identity of one served request, threaded through the pipeline.

    ``stats_epoch`` is unknown until admission pins a snapshot, so the
    context is mutable: the admission path fills it in.
    """

    request_id: str
    tenant: str | None = None
    stats_epoch: int | None = None


class RequestTrace:
    """One served request's span tree: admission → queue → dispatch.

    Wraps a :class:`QueryTracer` whose root is a ``request`` span and
    exposes the serving lifecycle transitions as methods.  Timestamps
    come from the serving clock by default; during plan/execute the
    runtime swaps in an offset clock (``set_time``) so the operator
    spans recorded by the runtime hooks land on the same timeline.
    """

    def __init__(
        self,
        context: TraceContext,
        clock: Callable[[], float],
        arrival: float = 0.0,
    ):
        self.context = context
        self._clock = clock
        self._override: Callable[[], float] | None = None
        self.tracer = QueryTracer(clock=self._time, root_name="request",
                                  root_kind="request")
        self.tracer.root.start = arrival
        self.tracer.root.attributes.update(
            request_id=context.request_id, tenant=context.tenant
        )
        self.status: str | None = None
        self.reason: str | None = None
        self._queue_span: Span | None = None

    def _time(self) -> float:
        return (self._override or self._clock)()

    def set_time(self, fn: Callable[[], float]) -> None:
        """Temporarily source timestamps from ``fn`` (execution offset
        clock); undo with :meth:`reset_time`."""
        self._override = fn

    def reset_time(self) -> None:
        self._override = None

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------
    def admission(
        self,
        now: float,
        admitted: bool,
        epoch: int | None = None,
        reason: str | None = None,
    ) -> None:
        """Record the admission decision; on admit, open the queue span."""
        span = self.tracer.push_span("admission", kind="admission",
                                     start=now)
        if admitted:
            self.context.stats_epoch = epoch
            span.events.append({"name": "admitted", "at": now})
            span.events.append(
                {"name": "snapshot_pin", "at": now, "epoch": epoch}
            )
        else:
            span.events.append({"name": "shed", "at": now, "reason": reason})
        self.tracer.pop_span(span, end=now)
        if admitted:
            self._queue_span = self.tracer.push_span(
                "queue", kind="queue", start=now
            )
        else:
            self.close(now, "shed", reason)

    def begin_dispatch(self, now: float, wait: float) -> Span:
        """Close the queue span and open the dispatch span."""
        if self._queue_span is not None:
            self._queue_span.attributes["queue_wait"] = wait
            self.tracer.pop_span(self._queue_span, end=now)
            self._queue_span = None
        return self.tracer.push_span("dispatch", kind="dispatch", start=now)

    def shed_now(self, now: float, reason: str) -> None:
        """The request was shed after admission (evicted, drained, or
        deadline-missed at dispatch)."""
        self.tracer.current.events.append(
            {"name": "shed", "at": now, "reason": reason}
        )
        self.close(now, "shed", reason)

    def close(
        self, now: float, status: str, reason: str | None = None
    ) -> None:
        """Finalize: close dangling spans and stamp the outcome."""
        if self.status is not None:
            return
        self.status = status
        self.reason = reason
        while len(self.tracer._stack) > 1:
            self.tracer.pop_span(end=now)
        self.tracer.root.end = now
        self._queue_span = None

    def entry(self) -> dict:
        """This request's row in the ``repro.trace.v1`` document."""
        return {
            "request_id": self.context.request_id,
            "tenant": self.context.tenant,
            "stats_epoch": self.context.stats_epoch,
            "status": self.status or "error",
            "reason": self.reason,
            "root": self.tracer.root.to_dict(),
        }


class ServeTracer:
    """Collects every request trace of a soak plus server-level events.

    Attach one to :class:`~repro.serve.runtime.ServingRuntime` and call
    :meth:`document` afterwards for the full ``repro.trace.v1`` export.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock or (lambda: 0.0)
        self._requests: list[RequestTrace] = []
        self.events: list[dict] = []

    def bind_clock(self, clock: Callable[[], float]) -> None:
        self._clock = clock

    def event(self, name: str, **attributes) -> None:
        """Record a server-level point event (reload, retirement, …)."""
        self.events.append(
            {"name": name, "at": self._clock(), **attributes}
        )

    def begin_request(
        self, request_id: str, tenant: str | None, arrival: float
    ) -> RequestTrace:
        trace = RequestTrace(
            TraceContext(request_id=request_id, tenant=tenant),
            clock=self._clock,
            arrival=arrival,
        )
        self._requests.append(trace)
        return trace

    @property
    def requests(self) -> list[RequestTrace]:
        return list(self._requests)

    def document(
        self, name: str | None = None, clock: str = "virtual"
    ) -> dict:
        """The strict schema-tagged ``repro.trace.v1`` document."""
        return {
            "schema": TRACE_SCHEMA,
            "name": name,
            "clock": clock,
            "requests": [t.entry() for t in self._requests],
            "events": [dict(e) for e in self.events],
        }
