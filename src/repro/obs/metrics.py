"""The metrics registry: labeled counters, gauges, and histograms.

Three generations of ad-hoc counters grew in this codebase (`IOStats`,
``Database.plan_cache_hits``, guard degradation lists, fault-injector
tallies, BP/VE-cache message counts) that neither compose nor export.
This module is the one place they all report into: a
:class:`MetricsRegistry` of named, optionally labeled instruments with
a deterministic snapshot/diff/merge algebra.

Determinism is a design constraint, not an afterthought: nothing here
reads a wall clock, instrument keys sort canonically, and
:meth:`MetricsSnapshot.to_json` is byte-stable — two identical seeded
runs must produce identical snapshots (there is a property test).  The
simulated cost clock (:meth:`IOStats.elapsed`) is the only "time"
recorded.

Instrument kinds follow the conventional trio:

* :class:`Counter` — monotonically increasing total (``inc``);
* :class:`Gauge` — last-written value (``set``/``inc``/``dec``);
* :class:`Histogram` — fixed-boundary bucket counts plus sum/count
  (``observe``); boundaries are part of the instrument identity, so
  merged snapshots never mix incompatible bucketings.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_BUCKETS",
    "SECONDS_BUCKETS",
    "metric_key",
    "base_name",
    "split_key",
]

# Decade buckets in simulated cost units: wide enough to separate a
# memo hit (≈0) from a page scan (1e3-scale) from a spilled join.
DEFAULT_BUCKETS = (
    1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8,
)

# Decade buckets in wall-clock seconds, for the few instruments that
# record real time (optimizer search latency) rather than the simulated
# cost clock: 10µs resolves a cache-warm planner hit, 10s the tail.
SECONDS_BUCKETS = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)


def metric_key(name: str, labels: dict[str, str]) -> str:
    """Canonical flat key: ``name`` or ``name{k=v,...}``, labels sorted."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def base_name(key: str) -> str:
    """Instrument name with any ``{label=value}`` suffix stripped."""
    brace = key.find("{")
    return key if brace < 0 else key[:brace]


def split_key(key: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`metric_key`: ``(name, labels)`` from a flat key."""
    brace = key.find("{")
    if brace < 0:
        return key, {}
    name, inner = key[:brace], key[brace + 1 : -1]
    labels = {}
    for part in inner.split(","):
        k, _, v = part.partition("=")
        labels[k] = v
    return name, labels


class Counter:
    """Monotonically increasing total."""

    kind = "counter"

    __slots__ = ("value",)

    def __init__(self):
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def dump(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-written value (e.g. tables cached, pages admitted)."""

    kind = "gauge"

    __slots__ = ("value",)

    def __init__(self):
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def dump(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-boundary bucket counts with running sum and count.

    ``buckets`` are inclusive upper bounds; an implicit +inf bucket
    catches the tail.  ``dump()`` reports cumulative-style per-bucket
    counts (non-cumulative, one count per bound plus the overflow).
    """

    kind = "histogram"

    __slots__ = ("bounds", "counts", "total", "count")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram bounds must strictly increase: {bounds}")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.total += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def dump(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable, deterministic view of a registry at one instant.

    ``values`` maps the canonical flat key to each instrument's
    ``dump()`` dict.  Snapshots form a small algebra:

    * ``b.diff(a)`` — the work *between* two snapshots: counters and
      histograms subtract (entries absent from ``a`` count from zero),
      gauges keep ``b``'s value (a gauge is a level, not a flow);
    * ``a.merge(b)`` — combine two runs: counters and histograms add,
      gauges are left-biased (``a`` wins where both set one), so
      ``b.diff(a).merge(a) == b`` holds for every kind.
    """

    values: dict

    def to_dict(self) -> dict:
        """Plain sorted dict, safe to ``json.dumps`` directly."""
        return {k: dict(self.values[k]) for k in sorted(self.values)}

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), sort_keys=True)

    def get(self, name: str, default: float = 0, **labels) -> float:
        """Scalar value of a counter/gauge (``default`` when absent)."""
        entry = self.values.get(metric_key(name, labels))
        if entry is None:
            return default
        if "value" not in entry:
            raise ValueError(f"{name!r} is a {entry['kind']}, not a scalar")
        return entry["value"]

    def __eq__(self, other) -> bool:
        if not isinstance(other, MetricsSnapshot):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self):
        return hash(self.to_json())

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def diff(self, earlier: "MetricsSnapshot") -> "MetricsSnapshot":
        """Counters/histograms since ``earlier``; gauges from ``self``."""
        out: dict = {}
        for key, entry in self.values.items():
            before = earlier.values.get(key)
            out[key] = _entry_diff(key, entry, before)
        return MetricsSnapshot(out)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Combine counters/histograms; gauges left-biased (self wins)."""
        out: dict = {}
        for key in sorted(set(self.values) | set(other.values)):
            a, b = self.values.get(key), other.values.get(key)
            out[key] = _entry_merge(key, a, b)
        return MetricsSnapshot(out)


def _check_compatible(key: str, a: dict, b: dict) -> None:
    if a["kind"] != b["kind"]:
        raise ValueError(
            f"metric {key!r}: kind mismatch ({a['kind']} vs {b['kind']})"
        )
    if a["kind"] == "histogram" and a["bounds"] != b["bounds"]:
        raise ValueError(f"metric {key!r}: histogram bounds mismatch")


def _entry_diff(key: str, entry: dict, before: dict | None) -> dict:
    entry = dict(entry)
    if before is None or entry["kind"] == "gauge":
        return entry
    _check_compatible(key, entry, before)
    if entry["kind"] == "counter":
        entry["value"] = entry["value"] - before["value"]
    else:
        entry["count"] = entry["count"] - before["count"]
        entry["sum"] = entry["sum"] - before["sum"]
        entry["counts"] = [
            x - y for x, y in zip(entry["counts"], before["counts"])
        ]
    return entry


def _entry_merge(key: str, a: dict | None, b: dict | None) -> dict:
    if a is None:
        return dict(b)
    if b is None or a["kind"] == "gauge":
        return dict(a)
    _check_compatible(key, a, b)
    out = dict(a)
    if a["kind"] == "counter":
        out["value"] = a["value"] + b["value"]
    else:
        out["count"] = a["count"] + b["count"]
        out["sum"] = a["sum"] + b["sum"]
        out["counts"] = [x + y for x, y in zip(a["counts"], b["counts"])]
    return out


class MetricsRegistry:
    """Get-or-create registry of labeled instruments.

    ``registry.counter("bp.messages", kind="product").inc()`` — the
    (name, sorted labels) pair identifies the instrument; asking for an
    existing name with a different instrument kind is an error, so a
    metric can never silently change meaning mid-run.
    """

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def _get(self, kind: str, name: str, labels: dict, **kwargs):
        key = metric_key(name, labels)
        found = self._instruments.get(key)
        if found is None:
            found = self._instruments[key] = _KINDS[kind](**kwargs)
        elif found.kind != kind:
            raise ValueError(
                f"metric {key!r} already registered as a {found.kind}, "
                f"requested as a {kind}"
            )
        return found

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        return self._get("histogram", name, labels, bounds=buckets)

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            {key: inst.dump() for key, inst in self._instruments.items()}
        )

    def restore(self, snapshot: "MetricsSnapshot | dict") -> None:
        """Load instrument state from a snapshot (crash recovery).

        Rebuilds each instrument at its dumped value; existing
        same-named instruments are overwritten.  Together with the
        snapshot algebra (``b.diff(a).merge(a) == b``) this lets
        recovery restore a checkpoint's snapshot and fold in the
        per-unit deltas the WAL recorded after it.
        """
        values = (
            snapshot.values
            if isinstance(snapshot, MetricsSnapshot)
            else snapshot
        )
        for key, entry in values.items():
            kind = entry["kind"]
            if kind == "histogram":
                inst = Histogram(bounds=tuple(entry["bounds"]))
                inst.counts = list(entry["counts"])
                inst.total = entry["sum"]
                inst.count = entry["count"]
            elif kind in ("counter", "gauge"):
                inst = _KINDS[kind]()
                inst.value = entry["value"]
            else:
                raise ValueError(f"metric {key!r}: unknown kind {kind!r}")
            self._instruments[key] = inst

    def keys(self) -> list[str]:
        return sorted(self._instruments)
