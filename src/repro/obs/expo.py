"""Prometheus-style text exposition of the metrics registry.

``metrics_text`` renders a registry (or snapshot) in the Prometheus
text format: metric names are the catalog names with ``.`` mangled to
``_`` (Prometheus names cannot contain dots), each family gets one
``# TYPE`` line, counters and gauges are single samples, and
histograms expand to the conventional cumulative ``_bucket`` series
(with an ``le="+Inf"`` terminator) plus ``_sum`` and ``_count``.
Families and samples are emitted in canonical sorted-key order, so the
exposition is deterministic — byte-identical across identical seeded
runs — which lets CI diff it like any other artifact.

``parse_metrics_text`` is the strict inverse used by the CI round-trip
check: every line must parse, every sample's family must reverse-map
to a METRIC_CATALOG name (``bench.*`` names are exempt, as in the JSON
validator), and histogram series must be tagged histogram.  It raises
``ValueError`` on the first malformed line, matching the other
validators' contract.
"""

from __future__ import annotations

import re

from repro.obs.export import METRIC_CATALOG
from repro.obs.metrics import MetricsSnapshot, split_key

__all__ = ["metrics_text", "parse_metrics_text", "validate_metrics_text"]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s(\S+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _mangle(name: str) -> str:
    return name.replace(".", "_")


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(str(labels[k]))}"' for k in sorted(labels)
    )
    return f"{{{inner}}}"


def _format_value(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return repr(int(value))
    return repr(value)


def metrics_text(source) -> str:
    """Render ``source`` (registry or snapshot) as Prometheus text."""
    snap = source if isinstance(source, MetricsSnapshot) else source.snapshot()
    lines: list[str] = []
    typed: set[str] = set()
    for key in sorted(snap.values):
        entry = snap.values[key]
        name, labels = split_key(key)
        family = _mangle(name)
        if not _NAME_RE.fullmatch(family):
            raise ValueError(f"metric name not expressible: {name!r}")
        if family not in typed:
            lines.append(f"# TYPE {family} {entry['kind']}")
            typed.add(family)
        if entry["kind"] == "histogram":
            cumulative = 0
            for bound, count in zip(entry["bounds"], entry["counts"]):
                cumulative += count
                bl = dict(labels, le=repr(float(bound)))
                lines.append(
                    f"{family}_bucket{_format_labels(bl)} {cumulative}"
                )
            cumulative += entry["counts"][-1]
            bl = dict(labels, le="+Inf")
            lines.append(
                f"{family}_bucket{_format_labels(bl)} {cumulative}"
            )
            lines.append(
                f"{family}_sum{_format_labels(labels)}"
                f" {_format_value(entry['sum'])}"
            )
            lines.append(
                f"{family}_count{_format_labels(labels)} {entry['count']}"
            )
        else:
            lines.append(
                f"{family}{_format_labels(labels)}"
                f" {_format_value(entry['value'])}"
            )
    return "\n".join(lines) + "\n" if lines else ""


def _known_families() -> dict[str, str]:
    """Mangled exposition name → catalog kind."""
    return {_mangle(name): kind for name, kind in METRIC_CATALOG.items()}


def parse_metrics_text(text: str) -> list[dict]:
    """Strictly parse an exposition; raises ``ValueError`` on drift.

    Returns one dict per sample line: ``{"family", "series", "labels",
    "value", "kind"}`` where ``family`` is the mangled base name with
    any ``_bucket``/``_sum``/``_count`` suffix stripped.
    """
    known = _known_families()
    types: dict[str, str] = {}
    samples: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "TYPE":
                raise ValueError(f"line {lineno}: unrecognized comment {line!r}")
            _, _, family, kind = parts
            if kind not in {"counter", "gauge", "histogram"}:
                raise ValueError(f"line {lineno}: unknown kind {kind!r}")
            types[family] = kind
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample {line!r}")
        series, rawlabels, rawvalue = match.groups()
        labels = {}
        if rawlabels:
            consumed = _LABEL_RE.sub("", rawlabels).replace(",", "").strip()
            if consumed:
                raise ValueError(
                    f"line {lineno}: malformed labels {rawlabels!r}"
                )
            for k, v in _LABEL_RE.findall(rawlabels):
                labels[k] = _unescape(v)
        try:
            value = float(rawvalue)
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {rawvalue!r}"
            ) from None
        family = series
        for suffix in ("_bucket", "_sum", "_count"):
            if series.endswith(suffix) and series[: -len(suffix)] in types:
                family = series[: -len(suffix)]
                break
        kind = types.get(family)
        if kind is None:
            raise ValueError(
                f"line {lineno}: sample {series!r} has no # TYPE line"
            )
        if family != series and kind != "histogram":
            raise ValueError(
                f"line {lineno}: {series!r} suffix on non-histogram family"
            )
        if not family.startswith("bench_"):
            catalog_kind = known.get(family)
            if catalog_kind is None:
                raise ValueError(
                    f"line {lineno}: {family!r} not in METRIC_CATALOG"
                )
            if catalog_kind != kind:
                raise ValueError(
                    f"line {lineno}: {family!r} kind {kind!r} != "
                    f"catalog {catalog_kind!r}"
                )
        samples.append({
            "family": family,
            "series": series,
            "labels": labels,
            "value": value,
            "kind": kind,
        })
    return samples


def validate_metrics_text(text: str) -> int:
    """Validate an exposition; returns the sample count, raises on drift."""
    return len(parse_metrics_text(text))
