"""Deterministic task scheduling for the sharded runtime.

Two pieces, deliberately decoupled:

* :class:`CriticalPathClock` — the *modeled* side.  Every unit of
  runtime work (one operator, or one shard of one operator) is
  registered as a task with its dependency edges and its measured
  cost-clock elapsed.  The clock then answers "how long would this
  task graph take on ``workers`` simulated executors?" by event-driven
  list scheduling: ready tasks start in submission order, at most
  ``workers`` run at once, time advances to the earliest finish.  The
  result — the *makespan* — is the critical-path elapsed of the run:
  max over parallel shards, sum along dependency chains.  It is
  reported separately from :meth:`IOStats.elapsed` (which stays the
  plain serial sum), so calibration, Q-error attribution, and the
  perf gate keep their existing clock untouched.

* :class:`OrderedPool` — the *dispatch* side.  Shard tasks of one node
  are submitted to a ``concurrent.futures`` thread pool, but admission
  is ticketed: each task waits for its predecessor to finish before it
  touches shared engine state (the stats clock, the buffer pool, the
  WAL).  Execution order — and therefore every counter, every LRU
  eviction, every WAL record — is exactly the serial order, for any
  worker count.  ``workers=1`` skips the pool entirely and is the
  plain loop.  This is the honest design for a *simulated* storage
  engine: the cost clock, not wall time, is the measured quantity, and
  determinism is a hard requirement (the differential suite asserts
  byte-identical results and counters across worker counts).

The simulation is deterministic by construction: ties in finish time
break by task id (submission order), and no wall-clock time is read.

A third piece, :class:`TaskRuntime`, wraps :class:`OrderedPool` with a
worker-fault model: a per-task :class:`TaskPolicy` (attempt deadline,
retry budget with capped exponential backoff, hedged duplicate launch
for stragglers) supervises every dispatch, consulting an optional
seeded :class:`~repro.storage.faults.WorkerFaultInjector`.  The
idempotent-task contract (see :mod:`repro.plans.runtime`) makes this
safe: a task's side effects publish only when the pool accepts exactly
one winning attempt, so a replayed task never double-applies work —
injected faults may change the modeled schedule and the
``scheduler.task_*`` metrics, never results or structural counters.
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.errors import WorkerError

__all__ = [
    "CriticalPathClock",
    "ScheduleReport",
    "OrderedPool",
    "TaskPolicy",
    "DEFAULT_TASK_POLICY",
    "TaskRuntime",
]


@dataclass(frozen=True)
class ScheduleReport:
    """Summary of one (possibly multi-query) modeled schedule."""

    workers: int
    tasks: int
    serial_elapsed: float
    """Sum of every task's elapsed — what one worker would take."""
    makespan: float
    """Critical-path elapsed on ``workers`` simulated executors."""

    @property
    def speedup(self) -> float:
        """Modeled serial/parallel ratio (1.0 for an empty schedule)."""
        if self.makespan <= 0:
            return 1.0
        return self.serial_elapsed / self.makespan

    def summary(self) -> str:
        return (
            f"{self.tasks} tasks on {self.workers} workers: "
            f"serial={self.serial_elapsed:.1f} makespan={self.makespan:.1f} "
            f"(x{self.speedup:.2f})"
        )


class CriticalPathClock:
    """Accumulates a task DAG and computes its list-scheduled makespan.

    One clock typically spans a whole batch (or workload program): the
    runtime registers tasks as it executes them, wiring dependency
    edges from plan-DAG children, shard alignment, repartition
    barriers, and table rebinding.  ``add_task`` returns the task id
    used as a dependency handle by later tasks.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._deps: list[tuple[int, ...]] = []
        self._elapsed: list[float] = []
        self._labels: list[str] = []

    def __len__(self) -> int:
        return len(self._elapsed)

    def add_task(
        self,
        deps: tuple[int, ...] | list[int],
        elapsed: float,
        label: str = "",
    ) -> int:
        """Register one unit of work; returns its task id."""
        task_id = len(self._elapsed)
        self._deps.append(tuple(d for d in deps if 0 <= d < task_id))
        self._elapsed.append(float(elapsed))
        self._labels.append(label)
        return task_id

    def serial_elapsed(self) -> float:
        return sum(self._elapsed)

    def makespan(self) -> float:
        """Event-driven list scheduling over ``workers`` executors.

        Tasks become ready when all dependencies have finished; ready
        tasks start in id order; at most ``workers`` run concurrently.
        Deterministic: finish-time ties break by task id.
        """
        n = len(self._elapsed)
        if n == 0:
            return 0.0
        indegree = [len(deps) for deps in self._deps]
        dependents: list[list[int]] = [[] for _ in range(n)]
        for task, deps in enumerate(self._deps):
            for dep in deps:
                dependents[dep].append(task)

        ready: list[int] = [t for t in range(n) if indegree[t] == 0]
        heapq.heapify(ready)
        running: list[tuple[float, int]] = []  # (finish time, task id)
        now = 0.0
        done = 0
        while done < n:
            while ready and len(running) < self.workers:
                task = heapq.heappop(ready)
                heapq.heappush(running, (now + self._elapsed[task], task))
            # No startable task: advance to the earliest finish.
            finish, task = heapq.heappop(running)
            now = finish
            done += 1
            for dependent in dependents[task]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    heapq.heappush(ready, dependent)
        return now

    def report(self) -> ScheduleReport:
        return ScheduleReport(
            workers=self.workers,
            tasks=len(self._elapsed),
            serial_elapsed=self.serial_elapsed(),
            makespan=self.makespan(),
        )


class OrderedPool:
    """Runs thunks on a thread pool with ticketed (serial) admission.

    ``run(thunks)`` returns their results in list order.  Shared-state
    mutation order is identical to a plain loop: task *i* begins only
    after task *i−1* completed, whatever the interleaving of pool
    threads.  A raised exception (including ``BaseException`` — the
    crash injector throws those) suppresses all later thunks, exactly
    like a serial loop, and propagates to the caller.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def run(self, thunks):
        thunks = list(thunks)
        if self.workers == 1 or len(thunks) <= 1:
            return [thunk() for thunk in thunks]

        cond = threading.Condition()
        state = {"next": 0, "failed": False}

        def gated(index, thunk):
            def call():
                with cond:
                    cond.wait_for(
                        lambda: state["next"] == index or state["failed"]
                    )
                    if state["failed"]:
                        # A predecessor raised: behave like the serial
                        # loop and never start.
                        state["next"] = index + 1
                        cond.notify_all()
                        return None
                try:
                    result = thunk()
                except BaseException:
                    with cond:
                        state["failed"] = True
                        state["next"] = index + 1
                        cond.notify_all()
                    raise
                with cond:
                    state["next"] = index + 1
                    cond.notify_all()
                return result

            return call

        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(thunks))
        ) as pool:
            futures = [
                pool.submit(gated(i, thunk)) for i, thunk in enumerate(thunks)
            ]
            return [f.result() for f in futures]


@dataclass(frozen=True)
class TaskPolicy:
    """Fault-tolerance policy applied to every scheduled task attempt.

    All durations are simulated cost units (the
    :meth:`~repro.storage.iostats.IOStats.elapsed` clock), mirroring
    the storage layer's :class:`~repro.storage.faults.RetryPolicy`.

    ``timeout``
        Deadline per attempt; a hung attempt is killed and retried
        after this long.  ``None`` disables hang detection — a hung
        task is then unrecoverable unless hedging rescues it.
    ``max_attempts``
        Total dispatches of one task (first try + retries).
    ``base_delay`` / ``max_delay``
        Capped exponential backoff before the ``n``-th retry:
        ``min(base_delay * 2**n, max_delay)``.  Charged to the modeled
        schedule, never to the structural cost clock.
    ``hedge_after``
        Straggler hedging: when an attempt is still running this long
        past its expected start, a duplicate launches on a fresh
        worker and the first finisher wins.  ``None`` disables it.
    ``allow_degrade``
        On an exhausted retry budget (or a tripped breaker), drain and
        re-run the remaining DAG serially instead of raising
        :class:`~repro.errors.WorkerError` — the batch still succeeds,
        recorded as ``scheduler.degraded`` (mirroring the guard's
        hash→sort degradation).
    ``breaker_threshold`` / ``breaker_min_tasks``
        Failure-rate circuit breaker: once at least ``breaker_min_tasks``
        tasks have run and the faulted fraction reaches the threshold,
        the pool degrades to serial wholesale.
    """

    timeout: float | None = None
    max_attempts: int = 3
    base_delay: float = 200.0
    max_delay: float = 5000.0
    hedge_after: float | None = None
    allow_degrade: bool = True
    breaker_threshold: float = 0.5
    breaker_min_tasks: int = 8

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if self.hedge_after is not None and self.hedge_after <= 0:
            raise ValueError("hedge_after must be positive (or None)")
        if not 0.0 < self.breaker_threshold <= 1.0:
            raise ValueError("breaker_threshold must lie in (0, 1]")

    def delay_for(self, retry_index: int) -> float:
        """Backoff before the ``retry_index``-th retry (0-based)."""
        return min(self.base_delay * (2.0 ** retry_index), self.max_delay)


DEFAULT_TASK_POLICY = TaskPolicy()


class TaskRuntime:
    """Fault-tolerant task supervisor over an :class:`OrderedPool`.

    ``run(thunks, label)`` dispatches each thunk as one task attempt
    loop.  A thunk runs the task's *real* work exactly once — the
    winning attempt — and returns its measured cost-clock elapsed;
    ``run`` returns the per-task **modeled** elapsed (the winning
    attempt plus injected straggler inflation, timeout kills, lost
    re-runs, and retry backoff), which the caller registers on the
    :class:`CriticalPathClock`.

    Publish-on-commit: a faulted attempt is discarded *before* it
    touches shared engine state.  Because shard tasks are pure and
    replayable over catalog state (the idempotent-task contract of
    :mod:`repro.plans.runtime`), discarding a doomed attempt's buffered
    side effects is observationally identical to running it and
    throwing the buffer away — so the structural counters and results
    of a faulted run are byte-identical to a fault-free run, with the
    wasted work visible only in the modeled schedule and the
    ``scheduler.task_retries`` / ``scheduler.task_timeouts`` /
    ``scheduler.hedges`` metrics.

    Degradation: an exhausted retry budget (or the failure-rate
    breaker) flips the runtime into ``degraded`` mode — the failing
    task and the *remaining DAG* re-run serially in-process with
    injection bypassed (counted once per reason under
    ``scheduler.degraded``), so the batch still succeeds.  With
    ``allow_degrade=False`` the exhaustion raises
    :class:`~repro.errors.WorkerError` instead.
    """

    def __init__(self, pool, policy=None, injector=None, count=None,
                 event=None):
        self.pool = pool
        self.policy = policy if policy is not None else DEFAULT_TASK_POLICY
        self.injector = injector
        self.count = count if count is not None else (lambda *a, **k: None)
        # Trace-event hook (name, **attributes): the attempt loop runs
        # inside the OrderedPool's ticket window, so events fire in
        # serial order at any worker count — safe to append to a span.
        self.event = event if event is not None else (lambda *a, **k: None)
        self.degraded = False
        self.degraded_reasons: list[str] = []
        self._seq = 0
        self._tasks_seen = 0
        self._faulted_tasks = 0

    # ------------------------------------------------------------------
    def run(self, thunks, label: str = ""):
        """Run ``thunks`` in order; returns per-task modeled elapses."""
        supervised = [self._supervise(thunk, label) for thunk in thunks]
        return self.pool.run(supervised)

    def degrade(self, reason: str) -> None:
        """Trip into serial re-execution mode (idempotent per reason)."""
        if not self.degraded:
            self.degraded = True
        if reason not in self.degraded_reasons:
            self.degraded_reasons.append(reason)
            self.count("scheduler.degraded", reason=reason)
            self.event("task_degraded", reason=reason)

    # ------------------------------------------------------------------
    def _supervise(self, thunk, label):
        # The attempt loop runs inside the OrderedPool's ticket window,
        # so ordinal assignment and every draw happen in serial order
        # at any worker count.
        def attempt_loop():
            seq = self._seq
            self._seq += 1
            self._tasks_seen += 1
            policy = self.policy
            wait = 0.0     # modeled (non-structural) fault wait
            lost = 0       # completed attempts whose result was dropped
            faulted = False
            attempt = 0
            while True:
                kind = None
                if self.injector is not None and not self.degraded:
                    kind = self.injector.draw(seq, label, attempt)
                if kind is None:
                    elapsed = thunk()
                    return self._commit(faulted, elapsed, wait, lost)
                faulted = True
                self.count("faults.worker_injected", kind=kind)
                self.event("task_fault", kind=kind, task=seq, label=label)
                if kind == "slow":
                    # The straggler itself completes the work (or its
                    # hedge does — same pure result either way); only
                    # the modeled duration differs.
                    elapsed = thunk()
                    slowed = elapsed * self.injector.slow_factor
                    if (
                        policy.hedge_after is not None
                        and slowed > policy.hedge_after + elapsed
                    ):
                        self.count("scheduler.hedges")
                        self.event("task_hedge", task=seq, label=label)
                        slowed = policy.hedge_after + elapsed
                    return self._commit(True, elapsed, wait, lost, slowed)
                if kind == "hang":
                    if policy.hedge_after is not None:
                        # The hedge launches while the original hangs
                        # and wins unconditionally.
                        self.count("scheduler.hedges")
                        self.event("task_hedge", task=seq, label=label)
                        elapsed = thunk()
                        return self._commit(
                            True, elapsed, wait + policy.hedge_after, lost
                        )
                    if policy.timeout is None:
                        return self._exhaust(
                            thunk, label, seq, wait, lost,
                            "hang with no task timeout configured",
                        )
                    wait += policy.timeout
                    self.count("scheduler.task_timeouts")
                    self.event("task_timeout", task=seq, label=label)
                elif kind == "lost":
                    lost += 1
                # crash / poison / lost / timed-out hang: retry.
                attempt += 1
                if attempt >= policy.max_attempts:
                    return self._exhaust(
                        thunk, label, seq, wait, lost,
                        f"retry budget exhausted after {attempt} attempts",
                    )
                self.count("scheduler.task_retries")
                self.event(
                    "task_retry", task=seq, label=label, attempt=attempt
                )
                wait += policy.delay_for(attempt - 1)

        return attempt_loop

    def _commit(self, faulted, elapsed, wait, lost, modeled_run=None):
        """Accept the winning attempt; fold fault waits into the model.

        A lost attempt did the full work before its result vanished,
        so each one contributes the task's own elapsed to the modeled
        duration (the structural clock saw the work exactly once).
        """
        if faulted:
            self._faulted_tasks += 1
            self._check_breaker()
        run = elapsed if modeled_run is None else modeled_run
        return run + wait + lost * elapsed

    def _check_breaker(self):
        # The breaker is purely a degradation trigger: with degradation
        # disabled it stays inert and each task lives or dies on its
        # own retry budget.
        if self.degraded or not self.policy.allow_degrade:
            return
        policy = self.policy
        if (
            self._tasks_seen >= policy.breaker_min_tasks
            and self._faulted_tasks
            >= policy.breaker_threshold * self._tasks_seen
        ):
            self.degrade("breaker")

    def _exhaust(self, thunk, label, seq, wait, lost, reason):
        """Retry budget gone: degrade to serial or raise WorkerError."""
        if not self.policy.allow_degrade:
            raise WorkerError(
                f"task {seq} ({label or 'unlabelled'}) unrecoverable: "
                f"{reason}, and degradation is disabled"
            )
        self.degrade("retry_budget")
        # Serial re-execution in-process: injection is bypassed from
        # here on (self.degraded), so the re-run always succeeds
        # barring real (non-injected) errors, which propagate as usual.
        elapsed = thunk()
        return self._commit(True, elapsed, wait, lost)
