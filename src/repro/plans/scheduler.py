"""Deterministic task scheduling for the sharded runtime.

Two pieces, deliberately decoupled:

* :class:`CriticalPathClock` — the *modeled* side.  Every unit of
  runtime work (one operator, or one shard of one operator) is
  registered as a task with its dependency edges and its measured
  cost-clock elapsed.  The clock then answers "how long would this
  task graph take on ``workers`` simulated executors?" by event-driven
  list scheduling: ready tasks start in submission order, at most
  ``workers`` run at once, time advances to the earliest finish.  The
  result — the *makespan* — is the critical-path elapsed of the run:
  max over parallel shards, sum along dependency chains.  It is
  reported separately from :meth:`IOStats.elapsed` (which stays the
  plain serial sum), so calibration, Q-error attribution, and the
  perf gate keep their existing clock untouched.

* :class:`OrderedPool` — the *dispatch* side.  Shard tasks of one node
  are submitted to a ``concurrent.futures`` thread pool, but admission
  is ticketed: each task waits for its predecessor to finish before it
  touches shared engine state (the stats clock, the buffer pool, the
  WAL).  Execution order — and therefore every counter, every LRU
  eviction, every WAL record — is exactly the serial order, for any
  worker count.  ``workers=1`` skips the pool entirely and is the
  plain loop.  This is the honest design for a *simulated* storage
  engine: the cost clock, not wall time, is the measured quantity, and
  determinism is a hard requirement (the differential suite asserts
  byte-identical results and counters across worker counts).

The simulation is deterministic by construction: ties in finish time
break by task id (submission order), and no wall-clock time is read.
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

__all__ = ["CriticalPathClock", "ScheduleReport", "OrderedPool"]


@dataclass(frozen=True)
class ScheduleReport:
    """Summary of one (possibly multi-query) modeled schedule."""

    workers: int
    tasks: int
    serial_elapsed: float
    """Sum of every task's elapsed — what one worker would take."""
    makespan: float
    """Critical-path elapsed on ``workers`` simulated executors."""

    @property
    def speedup(self) -> float:
        """Modeled serial/parallel ratio (1.0 for an empty schedule)."""
        if self.makespan <= 0:
            return 1.0
        return self.serial_elapsed / self.makespan

    def summary(self) -> str:
        return (
            f"{self.tasks} tasks on {self.workers} workers: "
            f"serial={self.serial_elapsed:.1f} makespan={self.makespan:.1f} "
            f"(x{self.speedup:.2f})"
        )


class CriticalPathClock:
    """Accumulates a task DAG and computes its list-scheduled makespan.

    One clock typically spans a whole batch (or workload program): the
    runtime registers tasks as it executes them, wiring dependency
    edges from plan-DAG children, shard alignment, repartition
    barriers, and table rebinding.  ``add_task`` returns the task id
    used as a dependency handle by later tasks.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._deps: list[tuple[int, ...]] = []
        self._elapsed: list[float] = []
        self._labels: list[str] = []

    def __len__(self) -> int:
        return len(self._elapsed)

    def add_task(
        self,
        deps: tuple[int, ...] | list[int],
        elapsed: float,
        label: str = "",
    ) -> int:
        """Register one unit of work; returns its task id."""
        task_id = len(self._elapsed)
        self._deps.append(tuple(d for d in deps if 0 <= d < task_id))
        self._elapsed.append(float(elapsed))
        self._labels.append(label)
        return task_id

    def serial_elapsed(self) -> float:
        return sum(self._elapsed)

    def makespan(self) -> float:
        """Event-driven list scheduling over ``workers`` executors.

        Tasks become ready when all dependencies have finished; ready
        tasks start in id order; at most ``workers`` run concurrently.
        Deterministic: finish-time ties break by task id.
        """
        n = len(self._elapsed)
        if n == 0:
            return 0.0
        indegree = [len(deps) for deps in self._deps]
        dependents: list[list[int]] = [[] for _ in range(n)]
        for task, deps in enumerate(self._deps):
            for dep in deps:
                dependents[dep].append(task)

        ready: list[int] = [t for t in range(n) if indegree[t] == 0]
        heapq.heapify(ready)
        running: list[tuple[float, int]] = []  # (finish time, task id)
        now = 0.0
        done = 0
        while done < n:
            while ready and len(running) < self.workers:
                task = heapq.heappop(ready)
                heapq.heappush(running, (now + self._elapsed[task], task))
            # No startable task: advance to the earliest finish.
            finish, task = heapq.heappop(running)
            now = finish
            done += 1
            for dependent in dependents[task]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    heapq.heappush(ready, dependent)
        return now

    def report(self) -> ScheduleReport:
        return ScheduleReport(
            workers=self.workers,
            tasks=len(self._elapsed),
            serial_elapsed=self.serial_elapsed(),
            makespan=self.makespan(),
        )


class OrderedPool:
    """Runs thunks on a thread pool with ticketed (serial) admission.

    ``run(thunks)`` returns their results in list order.  Shared-state
    mutation order is identical to a plain loop: task *i* begins only
    after task *i−1* completed, whatever the interleaving of pool
    threads.  A raised exception (including ``BaseException`` — the
    crash injector throws those) suppresses all later thunks, exactly
    like a serial loop, and propagates to the caller.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def run(self, thunks):
        thunks = list(thunks)
        if self.workers == 1 or len(thunks) <= 1:
            return [thunk() for thunk in thunks]

        cond = threading.Condition()
        state = {"next": 0, "failed": False}

        def gated(index, thunk):
            def call():
                with cond:
                    cond.wait_for(
                        lambda: state["next"] == index or state["failed"]
                    )
                    if state["failed"]:
                        # A predecessor raised: behave like the serial
                        # loop and never start.
                        state["next"] = index + 1
                        cond.notify_all()
                        return None
                try:
                    result = thunk()
                except BaseException:
                    with cond:
                        state["failed"] = True
                        state["next"] = index + 1
                        cond.notify_all()
                    raise
                with cond:
                    state["next"] = index + 1
                    cond.notify_all()
                return result

            return call

        with ThreadPoolExecutor(
            max_workers=min(self.workers, len(thunks))
        ) as pool:
            futures = [
                pool.submit(gated(i, thunk)) for i, thunk in enumerate(thunks)
            ]
            return [f.result() for f in futures]
