"""The physical-operator runtime: one execution path for everything.

Every consumer of the algebra — ad-hoc MPF queries, batched workloads,
VE-cache construction, BP passes, junction-tree materialization,
Bayesian inference — evaluates plans through this module, so all of
them pay simulated IO through the shared buffer pool, show up in
:class:`~repro.storage.iostats.IOStats`, and benefit from memoized
shared subplans.

The pieces:

* :class:`ExecutionContext` — everything one evaluation environment
  owns: the name→relation environment (optionally catalog-backed), the
  semiring, the buffer pool, the stats clock, the work-mem budget, the
  memo table keyed by structural plan keys, and an optional tracer.
  Contexts are long-lived: a batch of queries (or a whole workload
  cache build) shares one context, which is what makes cross-query
  sharing real.

* per-node-type :class:`PhysicalOperator` classes — ``execute(ctx,
  inputs)`` runs one operator over already-evaluated inputs, charging
  the clock the way a disk-based engine would (sequential page reads
  through the pool for scans, hash/sort CPU for joins and aggregation,
  spill writes past ``workmem_pages``).

* :func:`evaluate` / :func:`evaluate_dag` — drive a lowered
  :class:`~repro.plans.lower.PlanDAG` in topological order.  A node
  whose structural key is already in the context memo is never
  re-executed; its cached result is reused and a memo hit is charged
  instead of IO.
"""

from __future__ import annotations

import math
from typing import Mapping, Protocol, Sequence

from repro.algebra.aggregate import marginalize
from repro.algebra.groupindex import DEFAULT_GROUP_INDEX_CACHE
from repro.algebra.join import product_join
from repro.algebra.select import restrict
from repro.algebra.semijoin import product_semijoin, update_semijoin
from repro.catalog.catalog import Catalog
from repro.data.relation import FunctionalRelation
from repro.errors import MemoryLimitExceeded, PlanError
from repro.plans.guard import QueryGuard
from repro.plans.lower import PlanDAG, lower
from repro.plans.nodes import (
    FilterScan,
    GroupBy,
    IndexScan,
    PlanNode,
    ProductJoin,
    Scan,
    Select,
    SemiJoin,
)
from repro.plans.scheduler import (
    CriticalPathClock,
    OrderedPool,
    ScheduleReport,
    TaskPolicy,
    TaskRuntime,
)
from repro.semiring.base import Semiring
from repro.storage.buffer import BufferPool
from repro.storage.heapfile import HeapFile, TempFileAllocator
from repro.storage.iostats import IOStats
from repro.storage.page import PageGeometry
from repro.storage.partition import (
    PartitionSpec,
    concat_relations,
    partition_relation,
)

__all__ = [
    "DEFAULT_WORKMEM_PAGES",
    "ExecutionContext",
    "QueryGuard",
    "Tracer",
    "PhysicalOperator",
    "ScanOperator",
    "IndexScanOperator",
    "FilterScanOperator",
    "SelectOperator",
    "ProductJoinOperator",
    "GroupByOperator",
    "SemiJoinOperator",
    "operator_for",
    "evaluate",
    "evaluate_dag",
]

# Work-memory budget for a single operator, in pages (cf. work_mem).
DEFAULT_WORKMEM_PAGES = 2048


class Tracer(Protocol):
    """Observation hook invoked by the runtime per evaluated node."""

    def on_execute(
        self, node: PlanNode, result: FunctionalRelation, delta: IOStats
    ) -> None:
        """An operator ran; ``delta`` holds its own incremental work."""

    def on_memo_hit(
        self, node: PlanNode, result: FunctionalRelation
    ) -> None:
        """A node's result was served from the context memo."""

    def on_degrade(self, node: PlanNode, description: str) -> None:
        """The guard downgraded a hash operator to its spill path.

        Optional — the runtime tolerates tracers without this hook.
        """


class ExecutionContext:
    """Shared state for one evaluation environment.

    ``catalog`` may be a :class:`Catalog` (base tables get their
    catalog heap files and indexes) or a plain name→relation mapping
    (everything is ad-hoc).  Intermediates produced by workload code
    are added with :meth:`bind`, which also invalidates memo entries
    that read the rebound name.

    ``guard`` optionally attaches a :class:`QueryGuard`: operators
    check it per node and per row batch (deadline, cost budget,
    cancellation), materialized intermediates are admitted against its
    memory ceiling, and transient storage faults draw on its retry
    budget.  Results only reach the memo after an operator completes,
    so a guard violation (or storage fault) mid-query never leaves a
    partial result to be served to a later query.

    ``metrics`` optionally attaches a
    :class:`~repro.obs.metrics.MetricsRegistry`: the runtime publishes
    every operator's incremental work into it (the ``query.*``
    counters of the metric catalog), so one registry shared across
    contexts accumulates engine-wide totals that agree with the
    summed :class:`IOStats` clocks.
    """

    def __init__(
        self,
        catalog: Catalog | Mapping[str, FunctionalRelation],
        semiring: Semiring,
        pool: BufferPool | None = None,
        workmem_pages: int = DEFAULT_WORKMEM_PAGES,
        stats: IOStats | None = None,
        tracer: Tracer | None = None,
        guard: QueryGuard | None = None,
        metrics=None,
        workers: int = 1,
        task_policy: TaskPolicy | None = None,
        worker_faults=None,
        fuse_select_scan: bool = False,
    ):
        if workers < 1:
            raise PlanError(f"workers must be >= 1, got {workers}")
        self.catalog = catalog if isinstance(catalog, Catalog) else None
        self.env: dict[str, FunctionalRelation] = dict(
            catalog.environment() if isinstance(catalog, Catalog) else catalog
        )
        self.semiring = semiring
        self.pool = pool or BufferPool()
        self.workmem_pages = workmem_pages
        self.stats = stats if stats is not None else IOStats()
        self.tracer = tracer
        self.guard = guard
        self.metrics = metrics
        self.workers = workers
        self.fuse_select_scan = fuse_select_scan
        """Whether :func:`evaluate` lowers plans with the Select→Scan
        fusion rewrite (see :func:`repro.plans.lower.lower`).  Off by
        default: fusion changes the modeled CPU charges (that is the
        point), so callers opt in per database/context."""
        self.schedule = CriticalPathClock(workers)
        """Modeled task schedule accumulated over the context lifetime
        (a batch, a workload program); see :meth:`publish_schedule`."""
        self.task_policy = task_policy
        self.worker_faults = worker_faults
        self._task_runtime = TaskRuntime(
            OrderedPool(workers), policy=task_policy,
            injector=worker_faults, count=self.count,
            event=self._task_event,
        )
        """Fault-tolerant dispatch: every scheduled task goes through
        the runtime's retry/timeout/hedging supervision (a no-op
        pass-through without an injector); see
        :class:`~repro.plans.scheduler.TaskRuntime`."""
        self.scheduled_run = False
        """True once any :func:`evaluate_dag` call took the scheduled
        path — the gate for the worker-dependent ``scheduler.*`` gauges
        (a pure-serial context must not emit a zero-makespan schedule
        into snapshot diffs)."""
        self._schedule_tail: int | None = None
        self.shard_results: dict[
            tuple, tuple[PartitionSpec, list[FunctionalRelation]]
        ] = {}
        """Sharded form of memoized results — ``key -> (spec, shards)``.
        The memo itself always holds the merged relation, so
        checkpointing, recovery seeding, and unsharded consumers are
        oblivious to partitioning."""
        self._node_tasks: dict[tuple, tuple[int, ...]] = {}
        self._table_writers: dict[str, tuple[int, ...]] = {}
        self.last_root_tasks: tuple[int, ...] = ()
        """Schedule tasks that produced the roots of the most recent
        :func:`evaluate_dag` call — the dependency handle
        :meth:`bind` records so a rebound table (a BP message target)
        serializes against its producer on the modeled clock."""
        self.memo: dict[tuple, FunctionalRelation] = {}
        self.actuals: dict[tuple, tuple[int, float | None]] = {}
        """Per-executed-node actual ``(out_rows, elapsed)`` keyed by
        structural plan key — the execution side of the calibration
        layer's estimate→actual join (``elapsed`` is ``None`` when no
        tracer/registry asked for per-operator deltas)."""
        self._memo_reads: dict[tuple, frozenset[str]] = {}
        self._memo_nodes: dict[tuple, PlanNode] = {}
        self._temp = TempFileAllocator()
        self._adhoc_files: dict[str, HeapFile] = {}

    # ------------------------------------------------------------------
    # Environment
    # ------------------------------------------------------------------
    def relation(self, table: str) -> FunctionalRelation:
        try:
            return self.env[table]
        except KeyError:
            raise PlanError(f"unknown table {table!r}") from None

    def bind(self, name: str, relation: FunctionalRelation) -> None:
        """(Re)bind a name; memo entries reading it become invalid.

        On the modeled schedule the rebound name now depends on the
        tasks that produced the most recent evaluation's roots —
        workload code computes a message and immediately binds it, so
        a later scan of the name serializes after its producer, while
        messages to *different* targets stay independent and overlap.
        """
        self.env[name] = relation
        self.invalidate(name)
        self._table_writers[name] = self.last_root_tasks

    def invalidate(self, *tables: str) -> None:
        """Drop memoized results that scanned any of ``tables``."""
        names = set(tables)
        stale = [
            key
            for key, reads in self._memo_reads.items()
            if reads & names
        ]
        for key in stale:
            del self.memo[key]
            del self._memo_reads[key]
            self._memo_nodes.pop(key, None)
            self.shard_results.pop(key, None)
            self._node_tasks.pop(key, None)
        for name in names:
            file = self._adhoc_files.pop(name, None)
            if file is not None:
                file.drop(self.pool)

    def reset_memo(self) -> None:
        self.memo.clear()
        self._memo_reads.clear()
        self._memo_nodes.clear()
        self.shard_results.clear()
        self._node_tasks.clear()

    def memo_entries(self):
        """Yield ``(node, relation)`` for every memoized subplan.

        Only entries whose producing :class:`PlanNode` is known are
        yielded (results seeded or executed through this context) —
        this is what a checkpoint persists as completed shared work.
        """
        for key, relation in self.memo.items():
            node = self._memo_nodes.get(key)
            if node is not None:
                yield node, relation

    def seed_memo(self, node: PlanNode, relation: FunctionalRelation) -> None:
        """Install a completed subplan result (checkpoint restore).

        The entry behaves exactly like one produced by execution: it is
        keyed by the node's structural key, invalidated when any base
        table it reads is rebound, and re-persisted by later
        checkpoints.
        """
        key = node.structural_key()
        self.memo[key] = relation
        self._memo_reads[key] = frozenset(node.base_tables())
        self._memo_nodes[key] = node

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------
    def heapfile_for(
        self, table: str, relation: FunctionalRelation
    ) -> HeapFile:
        if self.catalog is not None and table in self.catalog:
            return self.catalog.heapfile(table)
        if table not in self._adhoc_files:
            self._adhoc_files[table] = self._temp.allocate(
                relation.ntuples, relation.arity
            )
        return self._adhoc_files[table]

    def maybe_spill(self, relation: FunctionalRelation) -> None:
        """Charge a materialization write when a result exceeds work-mem.

        With a guard attached, the materialized pages are also admitted
        against its hard memory ceiling — this is where a runaway
        (e.g. exponential CS) intermediate raises
        :class:`~repro.errors.MemoryLimitExceeded`.
        """
        geometry = PageGeometry(relation.arity)
        pages = geometry.pages_for(relation.ntuples)
        if self.guard is not None:
            self.guard.admit_pages(pages)
        if pages > self.workmem_pages:
            temp = self._temp.allocate(relation.ntuples, relation.arity)
            temp.write_out(self.pool, self.stats, guard=self.guard)

    def record_degradation(self, node: PlanNode, description: str) -> None:
        """Note a guard-driven hash→sort downgrade (guard + tracer)."""
        if self.guard is not None:
            self.guard.note_degradation(description)
        if self.tracer is not None:
            hook = getattr(self.tracer, "on_degrade", None)
            if hook is not None:
                hook(node, description)
        self.count("query.degradations")

    # ------------------------------------------------------------------
    # Metrics publication
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1, **labels) -> None:
        """Increment a registry counter; no-op without a registry."""
        if self.metrics is not None:
            self.metrics.counter(name, **labels).inc(amount)

    def _task_event(self, name: str, **attributes) -> None:
        """Forward a task-dispatch event (retry/hedge/timeout/fault/
        degrade) to the attached tracer's innermost open span."""
        if self.tracer is not None:
            hook = getattr(self.tracer, "event", None)
            if hook is not None:
                hook(name, **attributes)

    def publish_schedule(self) -> ScheduleReport:
        """Compute and publish the accumulated modeled schedule.

        The ``scheduler.*`` gauges describe the *latest* schedule of
        this context (a batch, a workload program).  They are modeled
        quantities — worker-count dependent by design — and therefore
        deliberately outside the structural counters the differential
        suite pins; :meth:`IOStats.elapsed` stays the serial sum.

        Gauges are emitted only when this context actually took the
        scheduled path: a pure-serial run (workers=1, no partitioned
        tables) has no schedule, and publishing a zero makespan for it
        would pollute snapshot diffs with meaningless gauges.
        """
        report = self.schedule.report()
        if self.metrics is not None and self.scheduled_run and report.tasks:
            self.metrics.gauge("scheduler.workers").set(report.workers)
            self.metrics.gauge("scheduler.tasks").set(report.tasks)
            self.metrics.gauge("scheduler.serial_elapsed").set(
                report.serial_elapsed
            )
            self.metrics.gauge("scheduler.makespan").set(report.makespan)
            self.metrics.gauge("scheduler.speedup").set(report.speedup)
        return report

    def publish_operator(self, node: PlanNode, delta: IOStats) -> None:
        """Publish one executed operator's incremental work.

        The per-counter deltas sum to exactly the context's
        :class:`IOStats` totals for work done inside operators, which
        is everything the reads/writes/hits/retries clocks record —
        the agreement the integration tests assert.
        """
        m = self.metrics
        if m is None:
            return
        m.counter(
            "query.operator_runs", operator=type(node).__name__
        ).inc()
        m.counter("query.page_reads").inc(delta.page_reads)
        m.counter("query.page_writes").inc(delta.page_writes)
        m.counter("query.buffer_hits").inc(delta.buffer_hits)
        m.counter("query.tuples").inc(delta.tuples_processed)
        if delta.retries:
            m.counter("query.retries").inc(delta.retries)
            m.counter("query.retry_wait").inc(delta.retry_wait)
        m.histogram("query.operator_elapsed").observe(delta.elapsed())


# ----------------------------------------------------------------------
# Physical operators
# ----------------------------------------------------------------------
class PhysicalOperator:
    """One plan node's physical implementation."""

    def __init__(self, node: PlanNode):
        self.node = node

    def execute(
        self, ctx: ExecutionContext, inputs: Sequence[FunctionalRelation]
    ) -> FunctionalRelation:
        raise NotImplementedError


class ScanOperator(PhysicalOperator):
    """Sequential page reads of the base heap file through the pool."""

    node: Scan

    def execute(self, ctx, inputs):
        relation = ctx.relation(self.node.table)
        heapfile = ctx.heapfile_for(self.node.table, relation)
        heapfile.scan(ctx.pool, ctx.stats, guard=ctx.guard)
        return relation


class IndexScanOperator(PhysicalOperator):
    """Equality probe through a catalog hash index."""

    node: IndexScan

    def execute(self, ctx, inputs):
        relation = ctx.relation(self.node.table)
        if ctx.catalog is None:
            raise PlanError("IndexScan requires a catalog-backed context")
        index = ctx.catalog.index_on(self.node.table, self.node.variable)
        if index is None:
            raise PlanError(
                f"no index on {self.node.table}({self.node.variable})"
            )
        value = self.node.predicate[self.node.variable]
        code = relation.variables[self.node.variable].domain.code_of(value)
        rows = index.lookup(code, ctx.pool, ctx.stats, guard=ctx.guard)
        return relation.take(rows)


class FilterScanOperator(PhysicalOperator):
    """Fused Select→Scan: predicate evaluated during the base scan.

    Pays the scan's page reads plus CPU for the *surviving* rows only —
    the fusion's win over Scan-then-Select is exactly the dropped
    ``charge_cpu(n_input)`` materialization pass.
    """

    node: FilterScan

    def execute(self, ctx, inputs):
        relation = ctx.relation(self.node.table)
        heapfile = ctx.heapfile_for(self.node.table, relation)
        heapfile.scan(ctx.pool, ctx.stats, guard=ctx.guard)
        result = restrict(relation, self.node.predicate)
        ctx.stats.charge_cpu(result.ntuples)
        return result


class SelectOperator(PhysicalOperator):
    """One pass over the input applying equality predicates."""

    node: Select

    def execute(self, ctx, inputs):
        (child,) = inputs
        ctx.stats.charge_cpu(child.ntuples)
        return restrict(child, self.node.predicate)


class ProductJoinOperator(PhysicalOperator):
    """Hash (or sort-merge) product join with spill accounting.

    A hash join needs its build side (the left input) resident in
    memory.  Under a guard, a build side that does not fit in work-mem
    (or the guard's remaining memory allowance) *degrades* to the
    sort-merge spill path rather than aborting — unless the guard
    forbids degradation, in which case it raises
    :class:`~repro.errors.MemoryLimitExceeded`.
    """

    node: ProductJoin

    def execute(self, ctx, inputs):
        left, right = inputs
        method = self.node.method
        if method == "hash" and ctx.guard is not None:
            build_pages = PageGeometry(left.arity).pages_for(left.ntuples)
            if not ctx.guard.build_side_fits(build_pages, ctx.workmem_pages):
                if not ctx.guard.allow_degrade:
                    raise MemoryLimitExceeded(
                        f"hash-join build side needs {build_pages} pages, "
                        "over the memory allowance, and degradation is "
                        "disabled"
                    )
                method = "sort_merge"
                ctx.record_degradation(
                    self.node,
                    f"hash join degraded to sort-merge: build side "
                    f"({build_pages} pages) exceeds the memory allowance",
                )
        result = product_join(left, right, ctx.semiring)
        if method == "sort_merge":
            nl, nr = max(left.ntuples, 2), max(right.ntuples, 2)
            ctx.stats.charge_cpu(
                int(nl * math.log2(nl) + nr * math.log2(nr))
            )
        ctx.stats.charge_cpu(left.ntuples + right.ntuples + result.ntuples)
        ctx.maybe_spill(result)
        return result


class GroupByOperator(PhysicalOperator):
    """Sort- or hash-based semiring aggregation with spill accounting."""

    node: GroupBy

    def execute(self, ctx, inputs):
        (child,) = inputs
        n = max(child.ntuples, 2)
        method = self.node.method
        if method == "hash" and ctx.guard is not None:
            # Pessimistic: the hash table may hold every input group.
            table_pages = PageGeometry(child.arity).pages_for(child.ntuples)
            if not ctx.guard.build_side_fits(table_pages, ctx.workmem_pages):
                if not ctx.guard.allow_degrade:
                    raise MemoryLimitExceeded(
                        f"hash aggregation table needs {table_pages} pages, "
                        "over the memory allowance, and degradation is "
                        "disabled"
                    )
                method = "sort"
                ctx.record_degradation(
                    self.node,
                    f"hash aggregation degraded to sort: table "
                    f"({table_pages} pages) exceeds the memory allowance",
                )
        if method == "sort":
            if _group_index_cached(child, self.node.group_names):
                # The sorted group structure is already in the kernel
                # cache: the aggregation is a linear gather over the
                # cached order, not a fresh sort.
                ctx.stats.charge_cpu(n)
            else:
                ctx.stats.charge_cpu(int(n * math.log2(n)))
        else:  # hash aggregation: one pass + group emission
            ctx.stats.charge_cpu(n)
        result = marginalize(child, self.node.group_names, ctx.semiring)
        ctx.stats.charge_cpu(result.ntuples)
        ctx.maybe_spill(result)
        return result


class SemiJoinOperator(PhysicalOperator):
    """Product / update semijoin — the workload message primitive."""

    node: SemiJoin

    def execute(self, ctx, inputs):
        target, source = inputs
        if self.node.kind == "product":
            result = product_semijoin(target, source, ctx.semiring)
        else:
            result = update_semijoin(target, source, ctx.semiring)
        ctx.stats.charge_cpu(
            target.ntuples + source.ntuples + result.ntuples
        )
        ctx.maybe_spill(result)
        return result


def _group_index_cached(child: FunctionalRelation, group_names) -> bool:
    """Cost-clock peek: would this GroupBy's group index be a cache hit?

    Uses the same key names :func:`~repro.algebra.aggregate.marginalize`
    will look up (the child's variable order), without touching the
    cache's counters or LRU order.
    """
    names = child.variables.subset(group_names).names
    if not names:
        return False  # empty grouping bypasses the cache entirely
    return DEFAULT_GROUP_INDEX_CACHE.contains(child, names)


OPERATORS: dict[type[PlanNode], type[PhysicalOperator]] = {
    Scan: ScanOperator,
    IndexScan: IndexScanOperator,
    FilterScan: FilterScanOperator,
    Select: SelectOperator,
    ProductJoin: ProductJoinOperator,
    GroupBy: GroupByOperator,
    SemiJoin: SemiJoinOperator,
}


def operator_for(node: PlanNode) -> PhysicalOperator:
    try:
        return OPERATORS[type(node)](node)
    except KeyError:
        raise PlanError(
            f"unknown plan node {type(node).__name__}"
        ) from None


# ----------------------------------------------------------------------
# Sharded execution
# ----------------------------------------------------------------------
def _run_tasks(ctx, deps_list, thunks, label):
    """Run independent thunks via the task runtime as schedule tasks.

    Each thunk becomes one task on the modeled clock: its elapsed is
    the cost-clock delta it charged while running.  Dispatch goes
    through :class:`~repro.plans.scheduler.TaskRuntime` (an
    :class:`OrderedPool` under retry/timeout/hedging supervision), so
    shared-state mutation order (and every counter) is the serial
    order regardless of worker count or injected worker faults.

    **Idempotent-task contract** (publish-on-commit): a task's side
    effects — cost-clock charges, buffer-pool reads, temp-heapfile
    shuffle writes — happen only inside the one winning attempt the
    runtime accepts, and everything downstream of the task publishes
    only after ``run`` returns: memo writes, ``shard.*`` / ``query.*``
    counters, schedule registration, and ``ctx.shard_results`` updates
    all live in the callers, past this commit point.  A faulted
    attempt is discarded before it starts, so a replayed task can
    never double-apply memo writes, shuffles, or metrics.  Tasks are
    registered only after all thunks succeed — a failed operator
    contributes no schedule entries, mirroring how it contributes no
    memo entry.

    When the runtime has degraded to serial (exhausted retry budget or
    a tripped breaker), the remaining DAG is chained on the modeled
    clock — each new task depends on its predecessor, so the schedule
    honestly reports the serial drain.
    """
    results = [None] * len(thunks)

    def timed(index, thunk):
        def call():
            snapshot = ctx.stats.snapshot()
            results[index] = thunk()
            return ctx.stats.since(snapshot).elapsed()

        return call

    modeled = ctx._task_runtime.run(
        [timed(i, thunk) for i, thunk in enumerate(thunks)], label=label
    )
    task_ids = []
    for i, deps in enumerate(deps_list):
        if ctx._task_runtime.degraded:
            tail = task_ids[-1] if task_ids else ctx._schedule_tail
            if tail is not None:
                deps = _dedup((*deps, tail))
        task_ids.append(ctx.schedule.add_task(deps, modeled[i], label))
    if task_ids:
        ctx._schedule_tail = task_ids[-1]
    return results, tuple(task_ids)


def _dedup(ids) -> tuple[int, ...]:
    """Stable-order dependency dedup."""
    return tuple(dict.fromkeys(ids))


def _align_deps(child_tasks, shards, extra):
    """Per-shard dependency lists against a producer's tasks.

    A producer sharded the same way contributes shard-aligned edges
    (shard *i* waits only on the producer's shard *i*); anything else
    is a barrier — every shard waits on all producer tasks.
    """
    if len(child_tasks) == shards:
        return [_dedup((child_tasks[i], *extra)) for i in range(shards)]
    return [_dedup((*child_tasks, *extra))] * shards


def _catalog_spec(ctx, table):
    """The table's partition spec, when its shard cache is usable.

    A name rebound over the catalog relation (workload code shadowing
    a base table) invalidates the cached shard decomposition, so such
    scans fall back to the unsharded path.
    """
    if ctx.catalog is None or table not in ctx.catalog:
        return None
    spec = ctx.catalog.partition_spec(table)
    if spec is None:
        return None
    if ctx.env.get(table) is not ctx.catalog.relation(table):
        return None
    return spec


def _single_task(ctx, node, inputs, deps):
    """Execute one node unsharded as a single schedule task."""
    operator = operator_for(node)
    (result,), task_ids = _run_tasks(
        ctx, [deps], [lambda: operator.execute(ctx, inputs)], node.label()
    )
    return result, None, task_ids


def _repartition(ctx, relation, key, shards, producer_tasks, side):
    """Explicit shuffle: split ``relation`` on ``key`` and charge it.

    Every shard is written out and read back through the pool (spill
    writes + re-reads on the cost clock, WAL page records when a log
    is attached), one schedule task per shard, each depending on all
    of the side's producer tasks — a repartition is a barrier.
    """
    parts = partition_relation(relation, key, shards)
    thunks = []
    for part in parts:
        def shuffle(part=part):
            temp = ctx._temp.allocate(part.ntuples, part.arity)
            temp.write_out(ctx.pool, ctx.stats, guard=ctx.guard)
            temp.scan(ctx.pool, ctx.stats, guard=ctx.guard)
            return temp.n_pages

        thunks.append(shuffle)
    pages, task_ids = _run_tasks(
        ctx, [producer_tasks] * shards, thunks, f"shuffle[{side}]({key})"
    )
    ctx.count("shard.repartitions")
    ctx.count("shard.shuffle_pages", sum(pages))
    return parts, [(t,) for t in task_ids]


def _aligned_side(ctx, relation, sharded, node_tasks, key, shards, side):
    """A join side as ``shards`` parts partitioned on ``key``.

    Co-partitioned sides reuse their existing shard relations (and
    shard-aligned dependencies); everything else repartitions.
    """
    if (
        sharded is not None
        and sharded[0].key == key
        and sharded[0].shards == shards
    ):
        parts = sharded[1]
        if len(node_tasks) == shards:
            deps = [(node_tasks[i],) for i in range(shards)]
        else:
            deps = [_dedup(node_tasks)] * shards
        return parts, deps
    return _repartition(ctx, relation, key, shards, _dedup(node_tasks), side)


def _join_method(ctx, node, left):
    """Legacy hash→sort-merge degrade decision on the merged build side."""
    method = node.method
    if method == "hash" and ctx.guard is not None:
        build_pages = PageGeometry(left.arity).pages_for(left.ntuples)
        if not ctx.guard.build_side_fits(build_pages, ctx.workmem_pages):
            if not ctx.guard.allow_degrade:
                raise MemoryLimitExceeded(
                    f"hash-join build side needs {build_pages} pages, "
                    "over the memory allowance, and degradation is "
                    "disabled"
                )
            method = "sort_merge"
            ctx.record_degradation(
                node,
                f"hash join degraded to sort-merge: build side "
                f"({build_pages} pages) exceeds the memory allowance",
            )
    return method


def _groupby_method(ctx, node, child):
    """Legacy hash→sort degrade decision on the merged input."""
    method = node.method
    if method == "hash" and ctx.guard is not None:
        table_pages = PageGeometry(child.arity).pages_for(child.ntuples)
        if not ctx.guard.build_side_fits(table_pages, ctx.workmem_pages):
            if not ctx.guard.allow_degrade:
                raise MemoryLimitExceeded(
                    f"hash aggregation table needs {table_pages} pages, "
                    "over the memory allowance, and degradation is "
                    "disabled"
                )
            method = "sort"
            ctx.record_degradation(
                node,
                f"hash aggregation degraded to sort: table "
                f"({table_pages} pages) exceeds the memory allowance",
            )
    return method


def _execute_scan_sharded(ctx, node, deps):
    spec = _catalog_spec(ctx, node.table)
    writer = ctx._table_writers.get(node.table, ())
    deps = _dedup((*deps, *writer))
    if spec is None:
        return _single_task(ctx, node, (), deps)
    shards = ctx.catalog.shard_relations(node.table)
    files = ctx.catalog.shard_heapfiles(node.table)
    thunks = []
    for heapfile in files:
        def scan_shard(heapfile=heapfile):
            heapfile.scan(ctx.pool, ctx.stats, guard=ctx.guard)

        thunks.append(scan_shard)
    _, task_ids = _run_tasks(
        ctx, [deps] * spec.shards, thunks, node.label()
    )
    ctx.count("shard.tasks", spec.shards)
    return ctx.relation(node.table), (spec, shards), task_ids


def _execute_filterscan_sharded(ctx, node, deps):
    """Fused scan+filter per shard; selection preserves partitioning."""
    spec = _catalog_spec(ctx, node.table)
    writer = ctx._table_writers.get(node.table, ())
    deps = _dedup((*deps, *writer))
    if spec is None:
        return _single_task(ctx, node, (), deps)
    shards = ctx.catalog.shard_relations(node.table)
    files = ctx.catalog.shard_heapfiles(node.table)
    thunks = []
    for heapfile, part in zip(files, shards):
        def filter_shard(heapfile=heapfile, part=part):
            heapfile.scan(ctx.pool, ctx.stats, guard=ctx.guard)
            result = restrict(part, node.predicate)
            ctx.stats.charge_cpu(result.ntuples)
            return result

        thunks.append(filter_shard)
    results, task_ids = _run_tasks(
        ctx, [deps] * spec.shards, thunks, node.label()
    )
    ctx.count("shard.tasks", spec.shards)
    # Selection preserves key codes, hence the partitioning.
    return concat_relations(results), (spec, results), task_ids


def _execute_select_sharded(ctx, node, key, inputs, child_keys, deps):
    (child_key,) = child_keys
    sharded = ctx.shard_results.get(child_key)
    if sharded is None:
        return _single_task(ctx, node, inputs, deps)
    spec, parts = sharded
    per_deps = _align_deps(
        ctx._node_tasks.get(child_key, ()), spec.shards, deps
    )
    thunks = []
    for part in parts:
        def select_shard(part=part):
            ctx.stats.charge_cpu(part.ntuples)
            return restrict(part, node.predicate)

        thunks.append(select_shard)
    results, task_ids = _run_tasks(ctx, per_deps, thunks, node.label())
    ctx.count("shard.tasks", spec.shards)
    # Selection preserves key codes, hence the partitioning.
    return concat_relations(results), (spec, results), task_ids


def _execute_join_sharded(ctx, node, key, inputs, child_keys, deps):
    left_key, right_key = child_keys
    left, right = inputs
    left_sharded = ctx.shard_results.get(left_key)
    right_sharded = ctx.shard_results.get(right_key)
    if left_sharded is None and right_sharded is None:
        return _single_task(ctx, node, inputs, deps)
    shared = sorted(set(left.var_names) & set(right.var_names))
    if not shared:
        # Cross product: no key to align on; de-shard and run whole.
        return _single_task(ctx, node, inputs, deps)

    # Alignment key: an existing partition key among the join
    # variables wins (left preferred, deterministically); otherwise
    # both sides shuffle onto the lexicographically first shared
    # variable with the sharded side's shard count.
    if left_sharded is not None and left_sharded[0].key in shared:
        align_key, shards = left_sharded[0].key, left_sharded[0].shards
    elif right_sharded is not None and right_sharded[0].key in shared:
        align_key, shards = right_sharded[0].key, right_sharded[0].shards
    else:
        align_key = shared[0]
        shards = (left_sharded or right_sharded)[0].shards

    method = _join_method(ctx, node, left)
    left_parts, left_deps = _aligned_side(
        ctx, left, left_sharded, ctx._node_tasks.get(left_key, ()),
        align_key, shards, "left",
    )
    right_parts, right_deps = _aligned_side(
        ctx, right, right_sharded, ctx._node_tasks.get(right_key, ()),
        align_key, shards, "right",
    )

    thunks = []
    per_deps = []
    for i in range(shards):
        def join_shard(lp=left_parts[i], rp=right_parts[i]):
            result = product_join(lp, rp, ctx.semiring)
            if method == "sort_merge":
                nl, nr = max(lp.ntuples, 2), max(rp.ntuples, 2)
                ctx.stats.charge_cpu(
                    int(nl * math.log2(nl) + nr * math.log2(nr))
                )
            ctx.stats.charge_cpu(
                lp.ntuples + rp.ntuples + result.ntuples
            )
            ctx.maybe_spill(result)
            return result

        thunks.append(join_shard)
        per_deps.append(_dedup((*left_deps[i], *right_deps[i], *deps)))
    results, task_ids = _run_tasks(ctx, per_deps, thunks, node.label())
    ctx.count("shard.tasks", shards)
    # Matching rows share the key value, so output shard i only holds
    # rows hashing to bucket i: the join result stays partitioned.
    return (
        concat_relations(results),
        (PartitionSpec(align_key, shards), results),
        task_ids,
    )


def _execute_groupby_sharded(ctx, node, key, inputs, child_keys, deps):
    (child_key,) = child_keys
    sharded = ctx.shard_results.get(child_key)
    if sharded is None:
        return _single_task(ctx, node, inputs, deps)
    spec, parts = sharded
    (child,) = inputs
    method = _groupby_method(ctx, node, child)
    group_names = tuple(node.group_names)
    per_deps = _align_deps(
        ctx._node_tasks.get(child_key, ()), spec.shards, deps
    )
    thunks = []
    for part in parts:
        def aggregate_shard(part=part):
            n = max(part.ntuples, 2)
            if method == "sort":
                if _group_index_cached(part, group_names):
                    ctx.stats.charge_cpu(n)
                else:
                    ctx.stats.charge_cpu(int(n * math.log2(n)))
            else:
                ctx.stats.charge_cpu(n)
            result = marginalize(part, group_names, ctx.semiring)
            ctx.stats.charge_cpu(result.ntuples)
            ctx.maybe_spill(result)
            return result

        thunks.append(aggregate_shard)
    results, task_ids = _run_tasks(ctx, per_deps, thunks, node.label())
    ctx.count("shard.tasks", spec.shards)

    if spec.key in group_names:
        # The partitioning key survives aggregation: groups never span
        # shards, so per-shard aggregation is already complete.
        return concat_relations(results), (spec, results), task_ids

    # Partial aggregates: groups span shards; a final semiring-plus
    # merge combines them.  The combine is a barrier over all shards.
    def combine():
        stacked = concat_relations(results)
        ctx.stats.charge_cpu(stacked.ntuples)
        final = marginalize(stacked, group_names, ctx.semiring)
        ctx.stats.charge_cpu(final.ntuples)
        ctx.maybe_spill(final)
        return final

    (final,), combine_ids = _run_tasks(
        ctx, [task_ids], [combine], node.label() + "+combine"
    )
    ctx.count("shard.partial_aggregates")
    return final, None, combine_ids


def _execute_node_scheduled(ctx, dag, node, key, inputs):
    """Execute one DAG node on the scheduled path.

    Returns ``(merged_result, sharded_or_None, task_ids)``.  Work is
    decomposed over catalog shards where the operator composes with
    hash partitioning (Scan/Select/ProductJoin/GroupBy); everything
    else de-shards its inputs (the memo always has the merged form)
    and runs as a single task.
    """
    child_keys = dag.children[key]
    deps = _dedup(
        t for k in child_keys for t in ctx._node_tasks.get(k, ())
    )
    if isinstance(node, Scan):
        return _execute_scan_sharded(ctx, node, deps)
    if isinstance(node, FilterScan):
        return _execute_filterscan_sharded(ctx, node, deps)
    if isinstance(node, IndexScan):
        writer = ctx._table_writers.get(node.table, ())
        return _single_task(ctx, node, inputs, _dedup((*deps, *writer)))
    if isinstance(node, Select):
        return _execute_select_sharded(
            ctx, node, key, inputs, child_keys, deps
        )
    if isinstance(node, ProductJoin):
        return _execute_join_sharded(
            ctx, node, key, inputs, child_keys, deps
        )
    if isinstance(node, GroupBy):
        return _execute_groupby_sharded(
            ctx, node, key, inputs, child_keys, deps
        )
    return _single_task(ctx, node, inputs, deps)


# ----------------------------------------------------------------------
# Evaluation drivers
# ----------------------------------------------------------------------
def evaluate_dag(
    dag: PlanDAG,
    ctx: ExecutionContext,
    roots: Sequence[tuple] | None = None,
) -> list[FunctionalRelation]:
    """Evaluate (a subset of) a DAG's roots; returns results in order.

    Each unique node executes at most once; nodes already in the
    context memo (from this call or an earlier one against the same
    context) are served from it, charging a memo hit instead of work.
    Subtrees below a memoized node are skipped entirely.

    With ``workers > 1`` or a partitioned catalog the run goes through
    the *scheduled* path: operators over partitioned tables decompose
    into per-shard tasks, and every task lands on the context's
    :class:`CriticalPathClock` with its dependency edges.  Execution
    order — and therefore results, counters, and WAL records — is
    identical to the serial path by construction (ordered dispatch);
    parallelism shows up as the schedule's modeled makespan.  At
    ``workers=1`` with no partitioned tables this is exactly the
    historical serial loop.
    """
    if roots is None:
        roots = dag.roots
    if ctx.guard is not None:
        ctx.guard.ensure_started(ctx.stats)

    # Which nodes actually need executing: walk down from the requested
    # roots, stopping at memo boundaries.
    needed: set[tuple] = set()
    pending = [key for key in roots if key not in ctx.memo]
    while pending:
        key = pending.pop()
        if key in needed:
            continue
        needed.add(key)
        pending.extend(
            k for k in dag.children[key]
            if k not in needed and k not in ctx.memo
        )

    hits_counted: set[tuple] = set()

    def fetch(key: tuple) -> FunctionalRelation:
        result = ctx.memo[key]
        if key not in hits_counted and key not in executed:
            hits_counted.add(key)
            ctx.stats.charge_memo_hit()
            ctx.count("query.memo_hits")
            if ctx.tracer is not None:
                ctx.tracer.on_memo_hit(dag.nodes[key], result)
        return result

    scheduled = ctx.workers > 1 or (
        ctx.catalog is not None and ctx.catalog.has_partitions
    )
    if scheduled:
        ctx.scheduled_run = True

    executed: set[tuple] = set()
    for key in dag.topological():
        if key not in needed:
            continue
        # Guard check per operator: a deadline / cancellation fires
        # within one operator batch of the limit, and — because memo
        # insertion below only happens after success — a violated
        # query never publishes a partial result to later queries.
        if ctx.guard is not None:
            ctx.guard.check(ctx.stats)
        node = dag.nodes[key]
        inputs = tuple(fetch(k) for k in dag.children[key])
        snapshot = ctx.stats.snapshot()
        kernel_before = DEFAULT_GROUP_INDEX_CACHE.counters()
        if scheduled:
            result, sharded, task_ids = _execute_node_scheduled(
                ctx, dag, node, key, inputs
            )
            if sharded is not None:
                ctx.shard_results[key] = sharded
            else:
                ctx.shard_results.pop(key, None)
            ctx._node_tasks[key] = task_ids
        else:
            result = operator_for(node).execute(ctx, inputs)
        _publish_kernel_counters(ctx, kernel_before)
        ctx.stats.record_operator(node.label(), result.ntuples)
        ctx.memo[key] = result
        ctx._memo_reads[key] = dag.base_tables(key)
        ctx._memo_nodes[key] = node
        executed.add(key)
        delta = None
        if ctx.tracer is not None or ctx.metrics is not None:
            delta = ctx.stats.since(snapshot)
            ctx.publish_operator(node, delta)
            if ctx.tracer is not None:
                ctx.tracer.on_execute(node, result, delta)
        ctx.actuals[key] = (
            result.ntuples, None if delta is None else delta.elapsed()
        )
    if scheduled:
        ctx.last_root_tasks = _dedup(
            t for key in roots for t in ctx._node_tasks.get(key, ())
        )
    return [fetch(key) for key in roots]


def _publish_kernel_counters(ctx, before: tuple[int, int, int]) -> None:
    """Publish the group-index cache's counter deltas for one operator.

    Deltas only — the cache is process-wide, so absolute values would
    mix in other contexts' work — and only nonzero ones, so operators
    that never touch the kernel cache contribute no ``kernel.*`` rows
    to snapshot diffs.
    """
    hits, misses, evictions = DEFAULT_GROUP_INDEX_CACHE.counters()
    if hits > before[0]:
        ctx.count("kernel.groupindex_hits", hits - before[0])
    if misses > before[1]:
        ctx.count("kernel.groupindex_misses", misses - before[1])
    if evictions > before[2]:
        ctx.count("kernel.groupindex_evictions", evictions - before[2])


def evaluate(plan: PlanNode, ctx: ExecutionContext) -> FunctionalRelation:
    """Lower one plan tree and evaluate it through the context."""
    (result,) = evaluate_dag(
        lower(plan, fuse_select_scan=ctx.fuse_select_scan), ctx
    )
    return result
