"""The physical-operator runtime: one execution path for everything.

Every consumer of the algebra — ad-hoc MPF queries, batched workloads,
VE-cache construction, BP passes, junction-tree materialization,
Bayesian inference — evaluates plans through this module, so all of
them pay simulated IO through the shared buffer pool, show up in
:class:`~repro.storage.iostats.IOStats`, and benefit from memoized
shared subplans.

The pieces:

* :class:`ExecutionContext` — everything one evaluation environment
  owns: the name→relation environment (optionally catalog-backed), the
  semiring, the buffer pool, the stats clock, the work-mem budget, the
  memo table keyed by structural plan keys, and an optional tracer.
  Contexts are long-lived: a batch of queries (or a whole workload
  cache build) shares one context, which is what makes cross-query
  sharing real.

* per-node-type :class:`PhysicalOperator` classes — ``execute(ctx,
  inputs)`` runs one operator over already-evaluated inputs, charging
  the clock the way a disk-based engine would (sequential page reads
  through the pool for scans, hash/sort CPU for joins and aggregation,
  spill writes past ``workmem_pages``).

* :func:`evaluate` / :func:`evaluate_dag` — drive a lowered
  :class:`~repro.plans.lower.PlanDAG` in topological order.  A node
  whose structural key is already in the context memo is never
  re-executed; its cached result is reused and a memo hit is charged
  instead of IO.
"""

from __future__ import annotations

import math
from typing import Mapping, Protocol, Sequence

from repro.algebra.aggregate import marginalize
from repro.algebra.join import product_join
from repro.algebra.select import restrict
from repro.algebra.semijoin import product_semijoin, update_semijoin
from repro.catalog.catalog import Catalog
from repro.data.relation import FunctionalRelation
from repro.errors import MemoryLimitExceeded, PlanError
from repro.plans.guard import QueryGuard
from repro.plans.lower import PlanDAG, lower
from repro.plans.nodes import (
    GroupBy,
    IndexScan,
    PlanNode,
    ProductJoin,
    Scan,
    Select,
    SemiJoin,
)
from repro.semiring.base import Semiring
from repro.storage.buffer import BufferPool
from repro.storage.heapfile import HeapFile, TempFileAllocator
from repro.storage.iostats import IOStats
from repro.storage.page import PageGeometry

__all__ = [
    "DEFAULT_WORKMEM_PAGES",
    "ExecutionContext",
    "QueryGuard",
    "Tracer",
    "PhysicalOperator",
    "ScanOperator",
    "IndexScanOperator",
    "SelectOperator",
    "ProductJoinOperator",
    "GroupByOperator",
    "SemiJoinOperator",
    "operator_for",
    "evaluate",
    "evaluate_dag",
]

# Work-memory budget for a single operator, in pages (cf. work_mem).
DEFAULT_WORKMEM_PAGES = 2048


class Tracer(Protocol):
    """Observation hook invoked by the runtime per evaluated node."""

    def on_execute(
        self, node: PlanNode, result: FunctionalRelation, delta: IOStats
    ) -> None:
        """An operator ran; ``delta`` holds its own incremental work."""

    def on_memo_hit(
        self, node: PlanNode, result: FunctionalRelation
    ) -> None:
        """A node's result was served from the context memo."""

    def on_degrade(self, node: PlanNode, description: str) -> None:
        """The guard downgraded a hash operator to its spill path.

        Optional — the runtime tolerates tracers without this hook.
        """


class ExecutionContext:
    """Shared state for one evaluation environment.

    ``catalog`` may be a :class:`Catalog` (base tables get their
    catalog heap files and indexes) or a plain name→relation mapping
    (everything is ad-hoc).  Intermediates produced by workload code
    are added with :meth:`bind`, which also invalidates memo entries
    that read the rebound name.

    ``guard`` optionally attaches a :class:`QueryGuard`: operators
    check it per node and per row batch (deadline, cost budget,
    cancellation), materialized intermediates are admitted against its
    memory ceiling, and transient storage faults draw on its retry
    budget.  Results only reach the memo after an operator completes,
    so a guard violation (or storage fault) mid-query never leaves a
    partial result to be served to a later query.

    ``metrics`` optionally attaches a
    :class:`~repro.obs.metrics.MetricsRegistry`: the runtime publishes
    every operator's incremental work into it (the ``query.*``
    counters of the metric catalog), so one registry shared across
    contexts accumulates engine-wide totals that agree with the
    summed :class:`IOStats` clocks.
    """

    def __init__(
        self,
        catalog: Catalog | Mapping[str, FunctionalRelation],
        semiring: Semiring,
        pool: BufferPool | None = None,
        workmem_pages: int = DEFAULT_WORKMEM_PAGES,
        stats: IOStats | None = None,
        tracer: Tracer | None = None,
        guard: QueryGuard | None = None,
        metrics=None,
    ):
        self.catalog = catalog if isinstance(catalog, Catalog) else None
        self.env: dict[str, FunctionalRelation] = dict(
            catalog.environment() if isinstance(catalog, Catalog) else catalog
        )
        self.semiring = semiring
        self.pool = pool or BufferPool()
        self.workmem_pages = workmem_pages
        self.stats = stats if stats is not None else IOStats()
        self.tracer = tracer
        self.guard = guard
        self.metrics = metrics
        self.memo: dict[tuple, FunctionalRelation] = {}
        self.actuals: dict[tuple, tuple[int, float | None]] = {}
        """Per-executed-node actual ``(out_rows, elapsed)`` keyed by
        structural plan key — the execution side of the calibration
        layer's estimate→actual join (``elapsed`` is ``None`` when no
        tracer/registry asked for per-operator deltas)."""
        self._memo_reads: dict[tuple, frozenset[str]] = {}
        self._memo_nodes: dict[tuple, PlanNode] = {}
        self._temp = TempFileAllocator()
        self._adhoc_files: dict[str, HeapFile] = {}

    # ------------------------------------------------------------------
    # Environment
    # ------------------------------------------------------------------
    def relation(self, table: str) -> FunctionalRelation:
        try:
            return self.env[table]
        except KeyError:
            raise PlanError(f"unknown table {table!r}") from None

    def bind(self, name: str, relation: FunctionalRelation) -> None:
        """(Re)bind a name; memo entries reading it become invalid."""
        self.env[name] = relation
        self.invalidate(name)

    def invalidate(self, *tables: str) -> None:
        """Drop memoized results that scanned any of ``tables``."""
        names = set(tables)
        stale = [
            key
            for key, reads in self._memo_reads.items()
            if reads & names
        ]
        for key in stale:
            del self.memo[key]
            del self._memo_reads[key]
            self._memo_nodes.pop(key, None)
        for name in names:
            file = self._adhoc_files.pop(name, None)
            if file is not None:
                file.drop(self.pool)

    def reset_memo(self) -> None:
        self.memo.clear()
        self._memo_reads.clear()
        self._memo_nodes.clear()

    def memo_entries(self):
        """Yield ``(node, relation)`` for every memoized subplan.

        Only entries whose producing :class:`PlanNode` is known are
        yielded (results seeded or executed through this context) —
        this is what a checkpoint persists as completed shared work.
        """
        for key, relation in self.memo.items():
            node = self._memo_nodes.get(key)
            if node is not None:
                yield node, relation

    def seed_memo(self, node: PlanNode, relation: FunctionalRelation) -> None:
        """Install a completed subplan result (checkpoint restore).

        The entry behaves exactly like one produced by execution: it is
        keyed by the node's structural key, invalidated when any base
        table it reads is rebound, and re-persisted by later
        checkpoints.
        """
        key = node.structural_key()
        self.memo[key] = relation
        self._memo_reads[key] = frozenset(node.base_tables())
        self._memo_nodes[key] = node

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------
    def heapfile_for(
        self, table: str, relation: FunctionalRelation
    ) -> HeapFile:
        if self.catalog is not None and table in self.catalog:
            return self.catalog.heapfile(table)
        if table not in self._adhoc_files:
            self._adhoc_files[table] = self._temp.allocate(
                relation.ntuples, relation.arity
            )
        return self._adhoc_files[table]

    def maybe_spill(self, relation: FunctionalRelation) -> None:
        """Charge a materialization write when a result exceeds work-mem.

        With a guard attached, the materialized pages are also admitted
        against its hard memory ceiling — this is where a runaway
        (e.g. exponential CS) intermediate raises
        :class:`~repro.errors.MemoryLimitExceeded`.
        """
        geometry = PageGeometry(relation.arity)
        pages = geometry.pages_for(relation.ntuples)
        if self.guard is not None:
            self.guard.admit_pages(pages)
        if pages > self.workmem_pages:
            temp = self._temp.allocate(relation.ntuples, relation.arity)
            temp.write_out(self.pool, self.stats, guard=self.guard)

    def record_degradation(self, node: PlanNode, description: str) -> None:
        """Note a guard-driven hash→sort downgrade (guard + tracer)."""
        if self.guard is not None:
            self.guard.note_degradation(description)
        if self.tracer is not None:
            hook = getattr(self.tracer, "on_degrade", None)
            if hook is not None:
                hook(node, description)
        self.count("query.degradations")

    # ------------------------------------------------------------------
    # Metrics publication
    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1, **labels) -> None:
        """Increment a registry counter; no-op without a registry."""
        if self.metrics is not None:
            self.metrics.counter(name, **labels).inc(amount)

    def publish_operator(self, node: PlanNode, delta: IOStats) -> None:
        """Publish one executed operator's incremental work.

        The per-counter deltas sum to exactly the context's
        :class:`IOStats` totals for work done inside operators, which
        is everything the reads/writes/hits/retries clocks record —
        the agreement the integration tests assert.
        """
        m = self.metrics
        if m is None:
            return
        m.counter(
            "query.operator_runs", operator=type(node).__name__
        ).inc()
        m.counter("query.page_reads").inc(delta.page_reads)
        m.counter("query.page_writes").inc(delta.page_writes)
        m.counter("query.buffer_hits").inc(delta.buffer_hits)
        m.counter("query.tuples").inc(delta.tuples_processed)
        if delta.retries:
            m.counter("query.retries").inc(delta.retries)
            m.counter("query.retry_wait").inc(delta.retry_wait)
        m.histogram("query.operator_elapsed").observe(delta.elapsed())


# ----------------------------------------------------------------------
# Physical operators
# ----------------------------------------------------------------------
class PhysicalOperator:
    """One plan node's physical implementation."""

    def __init__(self, node: PlanNode):
        self.node = node

    def execute(
        self, ctx: ExecutionContext, inputs: Sequence[FunctionalRelation]
    ) -> FunctionalRelation:
        raise NotImplementedError


class ScanOperator(PhysicalOperator):
    """Sequential page reads of the base heap file through the pool."""

    node: Scan

    def execute(self, ctx, inputs):
        relation = ctx.relation(self.node.table)
        heapfile = ctx.heapfile_for(self.node.table, relation)
        heapfile.scan(ctx.pool, ctx.stats, guard=ctx.guard)
        return relation


class IndexScanOperator(PhysicalOperator):
    """Equality probe through a catalog hash index."""

    node: IndexScan

    def execute(self, ctx, inputs):
        relation = ctx.relation(self.node.table)
        if ctx.catalog is None:
            raise PlanError("IndexScan requires a catalog-backed context")
        index = ctx.catalog.index_on(self.node.table, self.node.variable)
        if index is None:
            raise PlanError(
                f"no index on {self.node.table}({self.node.variable})"
            )
        value = self.node.predicate[self.node.variable]
        code = relation.variables[self.node.variable].domain.code_of(value)
        rows = index.lookup(code, ctx.pool, ctx.stats, guard=ctx.guard)
        return relation.take(rows)


class SelectOperator(PhysicalOperator):
    """One pass over the input applying equality predicates."""

    node: Select

    def execute(self, ctx, inputs):
        (child,) = inputs
        ctx.stats.charge_cpu(child.ntuples)
        return restrict(child, self.node.predicate)


class ProductJoinOperator(PhysicalOperator):
    """Hash (or sort-merge) product join with spill accounting.

    A hash join needs its build side (the left input) resident in
    memory.  Under a guard, a build side that does not fit in work-mem
    (or the guard's remaining memory allowance) *degrades* to the
    sort-merge spill path rather than aborting — unless the guard
    forbids degradation, in which case it raises
    :class:`~repro.errors.MemoryLimitExceeded`.
    """

    node: ProductJoin

    def execute(self, ctx, inputs):
        left, right = inputs
        method = self.node.method
        if method == "hash" and ctx.guard is not None:
            build_pages = PageGeometry(left.arity).pages_for(left.ntuples)
            if not ctx.guard.build_side_fits(build_pages, ctx.workmem_pages):
                if not ctx.guard.allow_degrade:
                    raise MemoryLimitExceeded(
                        f"hash-join build side needs {build_pages} pages, "
                        "over the memory allowance, and degradation is "
                        "disabled"
                    )
                method = "sort_merge"
                ctx.record_degradation(
                    self.node,
                    f"hash join degraded to sort-merge: build side "
                    f"({build_pages} pages) exceeds the memory allowance",
                )
        result = product_join(left, right, ctx.semiring)
        if method == "sort_merge":
            nl, nr = max(left.ntuples, 2), max(right.ntuples, 2)
            ctx.stats.charge_cpu(
                int(nl * math.log2(nl) + nr * math.log2(nr))
            )
        ctx.stats.charge_cpu(left.ntuples + right.ntuples + result.ntuples)
        ctx.maybe_spill(result)
        return result


class GroupByOperator(PhysicalOperator):
    """Sort- or hash-based semiring aggregation with spill accounting."""

    node: GroupBy

    def execute(self, ctx, inputs):
        (child,) = inputs
        n = max(child.ntuples, 2)
        method = self.node.method
        if method == "hash" and ctx.guard is not None:
            # Pessimistic: the hash table may hold every input group.
            table_pages = PageGeometry(child.arity).pages_for(child.ntuples)
            if not ctx.guard.build_side_fits(table_pages, ctx.workmem_pages):
                if not ctx.guard.allow_degrade:
                    raise MemoryLimitExceeded(
                        f"hash aggregation table needs {table_pages} pages, "
                        "over the memory allowance, and degradation is "
                        "disabled"
                    )
                method = "sort"
                ctx.record_degradation(
                    self.node,
                    f"hash aggregation degraded to sort: table "
                    f"({table_pages} pages) exceeds the memory allowance",
                )
        if method == "sort":
            ctx.stats.charge_cpu(int(n * math.log2(n)))
        else:  # hash aggregation: one pass + group emission
            ctx.stats.charge_cpu(n)
        result = marginalize(child, self.node.group_names, ctx.semiring)
        ctx.stats.charge_cpu(result.ntuples)
        ctx.maybe_spill(result)
        return result


class SemiJoinOperator(PhysicalOperator):
    """Product / update semijoin — the workload message primitive."""

    node: SemiJoin

    def execute(self, ctx, inputs):
        target, source = inputs
        if self.node.kind == "product":
            result = product_semijoin(target, source, ctx.semiring)
        else:
            result = update_semijoin(target, source, ctx.semiring)
        ctx.stats.charge_cpu(
            target.ntuples + source.ntuples + result.ntuples
        )
        ctx.maybe_spill(result)
        return result


OPERATORS: dict[type[PlanNode], type[PhysicalOperator]] = {
    Scan: ScanOperator,
    IndexScan: IndexScanOperator,
    Select: SelectOperator,
    ProductJoin: ProductJoinOperator,
    GroupBy: GroupByOperator,
    SemiJoin: SemiJoinOperator,
}


def operator_for(node: PlanNode) -> PhysicalOperator:
    try:
        return OPERATORS[type(node)](node)
    except KeyError:
        raise PlanError(
            f"unknown plan node {type(node).__name__}"
        ) from None


# ----------------------------------------------------------------------
# Evaluation drivers
# ----------------------------------------------------------------------
def evaluate_dag(
    dag: PlanDAG,
    ctx: ExecutionContext,
    roots: Sequence[tuple] | None = None,
) -> list[FunctionalRelation]:
    """Evaluate (a subset of) a DAG's roots; returns results in order.

    Each unique node executes at most once; nodes already in the
    context memo (from this call or an earlier one against the same
    context) are served from it, charging a memo hit instead of work.
    Subtrees below a memoized node are skipped entirely.
    """
    if roots is None:
        roots = dag.roots
    if ctx.guard is not None:
        ctx.guard.ensure_started(ctx.stats)

    # Which nodes actually need executing: walk down from the requested
    # roots, stopping at memo boundaries.
    needed: set[tuple] = set()
    pending = [key for key in roots if key not in ctx.memo]
    while pending:
        key = pending.pop()
        if key in needed:
            continue
        needed.add(key)
        pending.extend(
            k for k in dag.children[key]
            if k not in needed and k not in ctx.memo
        )

    hits_counted: set[tuple] = set()

    def fetch(key: tuple) -> FunctionalRelation:
        result = ctx.memo[key]
        if key not in hits_counted and key not in executed:
            hits_counted.add(key)
            ctx.stats.charge_memo_hit()
            ctx.count("query.memo_hits")
            if ctx.tracer is not None:
                ctx.tracer.on_memo_hit(dag.nodes[key], result)
        return result

    executed: set[tuple] = set()
    for key in dag.topological():
        if key not in needed:
            continue
        # Guard check per operator: a deadline / cancellation fires
        # within one operator batch of the limit, and — because memo
        # insertion below only happens after success — a violated
        # query never publishes a partial result to later queries.
        if ctx.guard is not None:
            ctx.guard.check(ctx.stats)
        node = dag.nodes[key]
        inputs = tuple(fetch(k) for k in dag.children[key])
        snapshot = ctx.stats.snapshot()
        result = operator_for(node).execute(ctx, inputs)
        ctx.stats.record_operator(node.label(), result.ntuples)
        ctx.memo[key] = result
        ctx._memo_reads[key] = dag.base_tables(key)
        ctx._memo_nodes[key] = node
        executed.add(key)
        delta = None
        if ctx.tracer is not None or ctx.metrics is not None:
            delta = ctx.stats.since(snapshot)
            ctx.publish_operator(node, delta)
            if ctx.tracer is not None:
                ctx.tracer.on_execute(node, result, delta)
        ctx.actuals[key] = (
            result.ntuples, None if delta is None else delta.elapsed()
        )
    return [fetch(key) for key in roots]


def evaluate(plan: PlanNode, ctx: ExecutionContext) -> FunctionalRelation:
    """Lower one plan tree and evaluate it through the context."""
    (result,) = evaluate_dag(lower(plan), ctx)
    return result
