"""EXPLAIN-style rendering of plan trees.

Produces ASCII trees in the spirit of the paper's Figures 3-5, with
estimated cardinalities and costs when the plan has been annotated:

    GroupBy(wid)  [card=5000, cost=2.1e+09]
      ProductJoin  [card=...]
        Scan(location)
        ...

With a :class:`~repro.obs.calib.PlanCalibration` from a profiled run
of the same plan, the bracket additionally shows what actually
happened — ``[card=5000, cost=2.1e+09, act=9800, q=1.96]`` — so an
``EXPLAIN ANALYZE`` reads estimate and actual side by side.
"""

from __future__ import annotations

from repro.plans.nodes import PlanNode

__all__ = ["explain"]


def _format_number(x: float) -> str:
    if x >= 1e6 or (0 < x < 1e-2):
        return f"{x:.3g}"
    if x == int(x):
        return str(int(x))
    return f"{x:.2f}"


def explain(plan: PlanNode, indent: str = "  ", calibration=None) -> str:
    """Render the plan as an indented ASCII tree.

    ``calibration`` (a :class:`~repro.obs.calib.PlanCalibration`)
    merges actual row counts and Q-errors into each node's bracket.
    """
    lines: list[str] = []

    def visit(node: PlanNode, depth: int) -> None:
        parts: list[str] = []
        if node.stats is not None:
            parts.append(f"card={_format_number(node.stats.cardinality)}")
            if node.total_cost is not None:
                parts.append(f"cost={_format_number(node.total_cost)}")
        if calibration is not None:
            row = calibration.lookup(node.structural_key())
            if row is not None and row.actual_rows is not None:
                parts.append(f"act={_format_number(row.actual_rows)}")
                if row.q_error is not None:
                    parts.append(f"q={row.q_error:.2f}")
        annotation = f"  [{', '.join(parts)}]" if parts else ""
        lines.append(f"{indent * depth}{node.label()}{annotation}")
        for child in node.children():
            visit(child, depth + 1)

    visit(plan, 0)
    return "\n".join(lines)
