"""EXPLAIN-style rendering of plan trees.

Produces ASCII trees in the spirit of the paper's Figures 3-5, with
estimated cardinalities and costs when the plan has been annotated:

    GroupBy(wid)  [card=5000, cost=2.1e+09]
      ProductJoin  [card=...]
        Scan(location)
        ...
"""

from __future__ import annotations

from repro.plans.nodes import PlanNode

__all__ = ["explain"]


def _format_number(x: float) -> str:
    if x >= 1e6 or (0 < x < 1e-2):
        return f"{x:.3g}"
    if x == int(x):
        return str(int(x))
    return f"{x:.2f}"


def explain(plan: PlanNode, indent: str = "  ") -> str:
    """Render the plan as an indented ASCII tree."""
    lines: list[str] = []

    def visit(node: PlanNode, depth: int) -> None:
        annotation = ""
        if node.stats is not None:
            annotation = f"  [card={_format_number(node.stats.cardinality)}"
            if node.total_cost is not None:
                annotation += f", cost={_format_number(node.total_cost)}"
            annotation += "]"
        lines.append(f"{indent * depth}{node.label()}{annotation}")
        for child in node.children():
            visit(child, depth + 1)

    visit(plan, 0)
    return "\n".join(lines)
