"""Evaluation-plan trees.

A plan is a tree of Scan / Select / ProductJoin / GroupBy nodes — the
node vocabulary of the GDL plan space (Definition 4): inner nodes are
product joins or GroupBys, and every plan is equivalent to the naive
plan with only joins and a single GroupBy at the root.

Nodes are structural; estimated statistics and costs are attached by
:func:`repro.plans.annotate.annotate` so the same tree can be re-costed
under different cost models.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.catalog.statistics import TableStats
from repro.errors import PlanError

__all__ = ["PlanNode", "Scan", "IndexScan", "Select", "ProductJoin", "GroupBy"]


class PlanNode:
    """Base plan node with optimizer annotations."""

    __slots__ = ("stats", "op_cost", "total_cost")

    def __init__(self):
        self.stats: TableStats | None = None
        self.op_cost: float | None = None
        self.total_cost: float | None = None

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def label(self) -> str:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Tree utilities
    # ------------------------------------------------------------------
    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal."""
        yield self
        for child in self.children():
            yield from child.walk()

    def base_tables(self) -> tuple[str, ...]:
        """Names of all scanned base tables, left to right."""
        return tuple(
            node.table
            for node in self.walk()
            if isinstance(node, (Scan, IndexScan))
        )

    def count_nodes(self, node_type=None) -> int:
        return sum(
            1
            for node in self.walk()
            if node_type is None or isinstance(node, node_type)
        )

    def is_linear(self) -> bool:
        """Left-deep check: every join's right input contains one scan.

        The paper's linear plans join one base relation at a time
        (possibly through Select/GroupBy wrappers); nonlinear (bushy)
        plans may join two composite subplans (Section 5.1).
        """
        for node in self.walk():
            if isinstance(node, ProductJoin):
                if len(node.right.base_tables()) != 1:
                    return False
        return True

    def output_variables(self) -> tuple[str, ...]:
        """Variables of the node's result (requires annotation or scans)."""
        if self.stats is not None:
            return self.stats.variables
        raise PlanError("plan not annotated; call annotate() first")

    def __repr__(self) -> str:
        from repro.plans.printer import explain

        return explain(self)


class Scan(PlanNode):
    """Sequential scan of a named base relation."""

    __slots__ = ("table",)

    def __init__(self, table: str):
        super().__init__()
        self.table = table

    def label(self) -> str:
        return f"Scan({self.table})"


class IndexScan(PlanNode):
    """Equality access via a hash index: probe instead of scan.

    ``predicate`` must be a single-variable equality on an indexed
    variable of the base relation; the optimizer only emits this node
    when the catalog holds a matching index and the cost model favors
    the probe over Select(Scan).
    """

    __slots__ = ("table", "predicate")

    def __init__(self, table: str, predicate: Mapping[str, object]):
        super().__init__()
        if len(predicate) != 1:
            raise PlanError(
                "IndexScan takes exactly one equality predicate"
            )
        self.table = table
        self.predicate = dict(predicate)

    @property
    def variable(self) -> str:
        return next(iter(self.predicate))

    def label(self) -> str:
        (var_name, value), = self.predicate.items()
        return f"IndexScan({self.table}, {var_name}={value})"


class Select(PlanNode):
    """Equality selection ``{variable: value}`` on a child plan."""

    __slots__ = ("child", "predicate")

    def __init__(self, child: PlanNode, predicate: Mapping[str, object]):
        super().__init__()
        if not predicate:
            raise PlanError("Select requires a non-empty predicate")
        self.child = child
        self.predicate = dict(predicate)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        preds = ", ".join(f"{k}={v}" for k, v in self.predicate.items())
        return f"Select({preds})"


class ProductJoin(PlanNode):
    """Product join ``left ⋈* right`` (Definition 2).

    ``method`` names the physical algorithm ("hash" or "sort_merge");
    the default matches the executor's hash join, and
    :func:`repro.plans.annotate.annotate` can re-choose it per the
    cost model (``choose_methods=True``).
    """

    __slots__ = ("left", "right", "method")

    JOIN_METHODS = ("hash", "sort_merge")

    def __init__(self, left: PlanNode, right: PlanNode,
                 method: str = "hash"):
        super().__init__()
        self.left = left
        self.right = right
        self.method = method

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        suffix = "" if self.method == "hash" else f" [{self.method}]"
        return f"ProductJoin{suffix}"


class GroupBy(PlanNode):
    """GroupBy on the named variables, aggregating with the semiring.

    ``method`` is "sort" (n log n) or "hash" (linear, memory-bound).
    """

    __slots__ = ("child", "group_names", "method")

    GROUP_METHODS = ("sort", "hash")

    def __init__(self, child: PlanNode, group_names, method: str = "sort"):
        super().__init__()
        self.child = child
        self.group_names = tuple(group_names)
        self.method = method

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"GroupBy({', '.join(self.group_names) or '∅'})"
