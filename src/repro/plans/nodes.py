"""Evaluation-plan trees.

A plan is a tree of Scan / Select / ProductJoin / GroupBy nodes — the
node vocabulary of the GDL plan space (Definition 4): inner nodes are
product joins or GroupBys, and every plan is equivalent to the naive
plan with only joins and a single GroupBy at the root.

Nodes are structural; estimated statistics and costs are attached by
:func:`repro.plans.annotate.annotate` so the same tree can be re-costed
under different cost models.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.catalog.statistics import TableStats
from repro.errors import PlanError

__all__ = [
    "PlanNode",
    "Scan",
    "IndexScan",
    "FilterScan",
    "Select",
    "ProductJoin",
    "GroupBy",
    "SemiJoin",
]


# Structural keys are interned: equal keys are the *same* tuple
# object.  Nested-tuple equality recurses per level, so comparing two
# independently built deep keys (thousands of operators) would blow
# the C stack; with interning every shared child compares by identity
# and deep-plan CSE across separately built trees stays flat.
_KEY_CACHE: dict[tuple, tuple] = {}


class PlanNode:
    """Base plan node with optimizer annotations."""

    __slots__ = ("stats", "op_cost", "total_cost", "_structural_key")

    def __init__(self):
        self.stats: TableStats | None = None
        self.op_cost: float | None = None
        self.total_cost: float | None = None
        self._structural_key: tuple | None = None

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def label(self) -> str:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Structural identity
    # ------------------------------------------------------------------
    def structural_key(self) -> tuple:
        """Canonical hashable key: equal keys ⇔ structurally equal plans.

        The key covers everything execution depends on (node type,
        table names, predicates, group lists, physical methods) and
        nothing else; annotations are ignored.  It is the identity
        used by :func:`repro.plans.lower.lower` for common-subexpression
        elimination and by the runtime memo table.  Cached after first
        computation — plan trees must not be mutated afterwards.
        """
        if self._structural_key is None:
            # Fill caches bottom-up with an explicit stack: a deep
            # plan (a long Select/GroupBy chain) must not hit the
            # interpreter recursion limit.  ``_key`` may call
            # ``child.structural_key()`` freely — every child is
            # cached by the time its parent is keyed.
            stack = [self]
            while stack:
                node = stack[-1]
                if node._structural_key is not None:
                    stack.pop()
                    continue
                pending = [
                    c for c in node.children()
                    if c._structural_key is None
                ]
                if pending:
                    stack.extend(pending)
                else:
                    key = node._key()
                    node._structural_key = _KEY_CACHE.setdefault(key, key)
                    stack.pop()
        return self._structural_key

    def _key(self) -> tuple:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Tree utilities
    # ------------------------------------------------------------------
    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal (iterative: safe on deep trees)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def base_tables(self) -> tuple[str, ...]:
        """Names of all scanned base tables, left to right."""
        return tuple(
            node.table
            for node in self.walk()
            if isinstance(node, (Scan, IndexScan, FilterScan))
        )

    def count_nodes(self, node_type=None) -> int:
        return sum(
            1
            for node in self.walk()
            if node_type is None or isinstance(node, node_type)
        )

    def is_linear(self) -> bool:
        """Left-deep check: every join's right input contains one scan.

        The paper's linear plans join one base relation at a time
        (possibly through Select/GroupBy wrappers); nonlinear (bushy)
        plans may join two composite subplans (Section 5.1).
        """
        for node in self.walk():
            if isinstance(node, ProductJoin):
                if len(node.right.base_tables()) != 1:
                    return False
        return True

    def output_variables(self) -> tuple[str, ...]:
        """Variables of the node's result (requires annotation or scans)."""
        if self.stats is not None:
            return self.stats.variables
        raise PlanError("plan not annotated; call annotate() first")

    def __repr__(self) -> str:
        from repro.plans.printer import explain

        return explain(self)


class Scan(PlanNode):
    """Sequential scan of a named base relation."""

    __slots__ = ("table",)

    def __init__(self, table: str):
        super().__init__()
        self.table = table

    def label(self) -> str:
        return f"Scan({self.table})"

    def _key(self) -> tuple:
        return ("scan", self.table)


class IndexScan(PlanNode):
    """Equality access via a hash index: probe instead of scan.

    ``predicate`` must be a single-variable equality on an indexed
    variable of the base relation; the optimizer only emits this node
    when the catalog holds a matching index and the cost model favors
    the probe over Select(Scan).
    """

    __slots__ = ("table", "predicate")

    def __init__(self, table: str, predicate: Mapping[str, object]):
        super().__init__()
        if len(predicate) != 1:
            raise PlanError(
                "IndexScan takes exactly one equality predicate"
            )
        self.table = table
        self.predicate = dict(predicate)

    @property
    def variable(self) -> str:
        return next(iter(self.predicate))

    def label(self) -> str:
        (var_name, value), = self.predicate.items()
        return f"IndexScan({self.table}, {var_name}={value})"

    def _key(self) -> tuple:
        return ("index_scan", self.table, tuple(sorted(self.predicate.items())))


class FilterScan(PlanNode):
    """Fused Select→Scan: evaluate equality predicates during the scan.

    Produced by :func:`repro.plans.lower.lower` (``fuse_select_scan``)
    when a ``Select`` sits directly over a ``Scan`` that no other node
    shares: the scan's single pass evaluates the predicate in-stream,
    so the selection's separate full-input pass (and its materialized
    intermediate) disappears.  Never emitted by the optimizer itself —
    it is a lowering rewrite, which keeps plan trees, ``EXPLAIN``
    output, and the plan cache in the unfused vocabulary.
    """

    __slots__ = ("table", "predicate")

    def __init__(self, table: str, predicate: Mapping[str, object]):
        super().__init__()
        if not predicate:
            raise PlanError("FilterScan requires a non-empty predicate")
        self.table = table
        self.predicate = dict(predicate)

    def label(self) -> str:
        preds = ", ".join(f"{k}={v}" for k, v in self.predicate.items())
        return f"FilterScan({self.table}, {preds})"

    def _key(self) -> tuple:
        return (
            "filter_scan",
            self.table,
            tuple(sorted(self.predicate.items())),
        )


class Select(PlanNode):
    """Equality selection ``{variable: value}`` on a child plan."""

    __slots__ = ("child", "predicate")

    def __init__(self, child: PlanNode, predicate: Mapping[str, object]):
        super().__init__()
        if not predicate:
            raise PlanError("Select requires a non-empty predicate")
        self.child = child
        self.predicate = dict(predicate)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        preds = ", ".join(f"{k}={v}" for k, v in self.predicate.items())
        return f"Select({preds})"

    def _key(self) -> tuple:
        return (
            "select",
            tuple(sorted(self.predicate.items())),
            self.child.structural_key(),
        )


class ProductJoin(PlanNode):
    """Product join ``left ⋈* right`` (Definition 2).

    ``method`` names the physical algorithm ("hash" or "sort_merge");
    the default matches the executor's hash join, and
    :func:`repro.plans.annotate.annotate` can re-choose it per the
    cost model (``choose_methods=True``).
    """

    __slots__ = ("left", "right", "method")

    JOIN_METHODS = ("hash", "sort_merge")

    def __init__(self, left: PlanNode, right: PlanNode,
                 method: str = "hash"):
        super().__init__()
        self.left = left
        self.right = right
        self.method = method

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        suffix = "" if self.method == "hash" else f" [{self.method}]"
        return f"ProductJoin{suffix}"

    def _key(self) -> tuple:
        return (
            "product_join",
            self.method,
            self.left.structural_key(),
            self.right.structural_key(),
        )


class GroupBy(PlanNode):
    """GroupBy on the named variables, aggregating with the semiring.

    ``method`` is "sort" (n log n) or "hash" (linear, memory-bound).
    """

    __slots__ = ("child", "group_names", "method")

    GROUP_METHODS = ("sort", "hash")

    def __init__(self, child: PlanNode, group_names, method: str = "sort"):
        super().__init__()
        self.child = child
        self.group_names = tuple(group_names)
        self.method = method

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"GroupBy({', '.join(self.group_names) or '∅'})"

    def _key(self) -> tuple:
        return (
            "group_by",
            self.group_names,
            self.method,
            self.child.structural_key(),
        )


class SemiJoin(PlanNode):
    """Semijoin reduction ``target ⋉ source`` (Definition 6).

    ``kind`` selects the message direction: ``"product"`` is the
    forward message ``t ⋉* s`` (absorb the source's marginal) and
    ``"update"`` the backward message ``t ⋉ s`` (absorb while dividing
    out the target's own marginal; needs semiring division).  These are
    the physical operators of the workload machinery — BP passes,
    VE-cache calibration, and evidence absorption all compile to plans
    of SemiJoins over cached tables.
    """

    __slots__ = ("target", "source", "kind")

    KINDS = ("product", "update")

    def __init__(self, target: PlanNode, source: PlanNode,
                 kind: str = "product"):
        super().__init__()
        if kind not in self.KINDS:
            raise PlanError(f"unknown semijoin kind {kind!r}")
        self.target = target
        self.source = source
        self.kind = kind

    def children(self) -> tuple[PlanNode, ...]:
        return (self.target, self.source)

    def label(self) -> str:
        symbol = "⋉*" if self.kind == "product" else "⋉"
        return f"SemiJoin[{symbol}]"

    def _key(self) -> tuple:
        return (
            "semijoin",
            self.kind,
            self.target.structural_key(),
            self.source.structural_key(),
        )
