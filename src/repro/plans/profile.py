"""Execution profiling: per-operator breakdown of a plan run.

``profile_execution`` is an ``EXPLAIN ANALYZE`` for the simulated
engine.  It is no longer a parallel execution path: profiling is a
:class:`~repro.plans.runtime.Tracer` attached to an ordinary
:class:`~repro.plans.runtime.ExecutionContext`, so the profiled run is
exactly the run the engine would do — same operators, same memo
behavior — with each operator's incremental work captured from the
stats deltas the runtime hands the tracer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.catalog.catalog import Catalog
from repro.data.relation import FunctionalRelation
from repro.plans.lower import lower
from repro.plans.nodes import PlanNode
from repro.plans.runtime import (
    DEFAULT_WORKMEM_PAGES,
    ExecutionContext,
    evaluate_dag,
)
from repro.semiring.base import Semiring
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStats

__all__ = [
    "OperatorProfile",
    "ExecutionProfile",
    "ProfilingTracer",
    "profile_execution",
]


@dataclass(frozen=True)
class OperatorProfile:
    """One operator's share of the run."""

    label: str
    out_rows: int
    tuples: int
    page_reads: int
    page_writes: int
    elapsed: float
    memoized: bool = False
    degraded: str | None = None
    """Guard downgrade note (hash → sort spill path), if any."""


@dataclass
class ExecutionProfile:
    """The full breakdown plus the result."""

    result: FunctionalRelation
    operators: list[OperatorProfile]
    total: IOStats

    def formatted(self) -> str:
        header = (
            f"{'operator':40s} {'rows':>9s} {'tuples':>10s} "
            f"{'reads':>7s} {'writes':>7s} {'elapsed':>12s}"
        )
        lines = [header, "-" * len(header)]
        for op in self.operators:
            label = f"{op.label} [memo]" if op.memoized else op.label
            if op.degraded is not None:
                label = f"{label} [degraded]"
            lines.append(
                f"{label:40s} {op.out_rows:>9,} {op.tuples:>10,} "
                f"{op.page_reads:>7} {op.page_writes:>7} "
                f"{op.elapsed:>12,.0f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'total':40s} {self.result.ntuples:>9,} "
            f"{self.total.tuples_processed:>10,} "
            f"{self.total.page_reads:>7} {self.total.page_writes:>7} "
            f"{self.total.elapsed():>12,.0f}"
        )
        for op in self.operators:
            if op.degraded is not None:
                lines.append(f"degraded: {op.degraded}")
        return "\n".join(lines)


class ProfilingTracer:
    """Runtime tracer that collects one profile row per operator."""

    def __init__(self):
        self.operators: list[OperatorProfile] = []
        self._pending_degrade: str | None = None

    def on_degrade(self, node: PlanNode, description: str) -> None:
        # Fires from inside the operator, before its on_execute;
        # remember it and attach it to the next executed row.
        self._pending_degrade = description

    def on_execute(
        self, node: PlanNode, result: FunctionalRelation, delta: IOStats
    ) -> None:
        degraded, self._pending_degrade = self._pending_degrade, None
        self.operators.append(
            OperatorProfile(
                label=node.label(),
                out_rows=result.ntuples,
                tuples=delta.tuples_processed,
                page_reads=delta.page_reads,
                page_writes=delta.page_writes,
                elapsed=delta.elapsed(),
                degraded=degraded,
            )
        )

    def on_memo_hit(
        self, node: PlanNode, result: FunctionalRelation
    ) -> None:
        self.operators.append(
            OperatorProfile(
                label=node.label(),
                out_rows=result.ntuples,
                tuples=0,
                page_reads=0,
                page_writes=0,
                elapsed=0.0,
                memoized=True,
            )
        )


def profile_execution(
    plan: PlanNode,
    catalog: Catalog | Mapping[str, FunctionalRelation],
    semiring: Semiring,
    pool: BufferPool | None = None,
    workmem_pages: int = DEFAULT_WORKMEM_PAGES,
    guard=None,
) -> ExecutionProfile:
    """Run the plan and return the per-operator breakdown.

    With a ``guard``, resource checks apply to the profiled run and
    any hash→sort degradations it forces appear in the breakdown.
    """
    tracer = ProfilingTracer()
    ctx = ExecutionContext(
        catalog,
        semiring,
        pool=pool,
        workmem_pages=workmem_pages,
        tracer=tracer,
        guard=guard,
    )
    (result,) = evaluate_dag(lower(plan), ctx)
    return ExecutionProfile(
        result=result,
        operators=tracer.operators,
        total=ctx.stats,
    )
