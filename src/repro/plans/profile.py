"""Execution profiling: per-operator breakdown of a plan run.

``profile_execution`` runs a plan while recording, for every operator,
its output cardinality and the incremental work (tuples + page IO)
attributable to it — an ``EXPLAIN ANALYZE`` for the simulated engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.catalog.catalog import Catalog
from repro.data.relation import FunctionalRelation
from repro.plans.executor import DEFAULT_WORKMEM_PAGES, Executor
from repro.plans.nodes import PlanNode
from repro.semiring.base import Semiring
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStats

__all__ = ["OperatorProfile", "ExecutionProfile", "profile_execution"]


@dataclass(frozen=True)
class OperatorProfile:
    """One operator's share of the run."""

    label: str
    out_rows: int
    tuples: int
    page_reads: int
    page_writes: int
    elapsed: float


@dataclass
class ExecutionProfile:
    """The full breakdown plus the result."""

    result: FunctionalRelation
    operators: list[OperatorProfile]
    total: IOStats

    def formatted(self) -> str:
        header = (
            f"{'operator':40s} {'rows':>9s} {'tuples':>10s} "
            f"{'reads':>7s} {'writes':>7s} {'elapsed':>12s}"
        )
        lines = [header, "-" * len(header)]
        for op in self.operators:
            lines.append(
                f"{op.label:40s} {op.out_rows:>9,} {op.tuples:>10,} "
                f"{op.page_reads:>7} {op.page_writes:>7} "
                f"{op.elapsed:>12,.0f}"
            )
        lines.append("-" * len(header))
        lines.append(
            f"{'total':40s} {self.result.ntuples:>9,} "
            f"{self.total.tuples_processed:>10,} "
            f"{self.total.page_reads:>7} {self.total.page_writes:>7} "
            f"{self.total.elapsed():>12,.0f}"
        )
        return "\n".join(lines)


class _ProfilingExecutor(Executor):
    """Executor that snapshots the stats clock around every operator."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.operator_profiles: list[OperatorProfile] = []

    def _eval(self, node: PlanNode, stats: IOStats) -> FunctionalRelation:
        # Children are profiled by their own recursive calls; this
        # operator's increment is the delta net of its subtree.
        before_children = (
            stats.tuples_processed, stats.page_reads, stats.page_writes,
            stats.elapsed(),
        )
        child_totals = [0, 0, 0, 0.0]
        # Temporarily wrap: run children first through the normal path
        # is interwoven inside super()._eval, so measure the whole
        # subtree and subtract previously recorded child deltas.
        recorded_before = len(self.operator_profiles)
        result = super()._eval(node, stats)
        for profile in self.operator_profiles[recorded_before:]:
            child_totals[0] += profile.tuples
            child_totals[1] += profile.page_reads
            child_totals[2] += profile.page_writes
            child_totals[3] += profile.elapsed
        self.operator_profiles.append(
            OperatorProfile(
                label=node.label(),
                out_rows=result.ntuples,
                tuples=stats.tuples_processed
                - before_children[0]
                - child_totals[0],
                page_reads=stats.page_reads
                - before_children[1]
                - child_totals[1],
                page_writes=stats.page_writes
                - before_children[2]
                - child_totals[2],
                elapsed=stats.elapsed()
                - before_children[3]
                - child_totals[3],
            )
        )
        return result


def profile_execution(
    plan: PlanNode,
    catalog: Catalog | Mapping[str, FunctionalRelation],
    semiring: Semiring,
    pool: BufferPool | None = None,
    workmem_pages: int = DEFAULT_WORKMEM_PAGES,
) -> ExecutionProfile:
    """Run the plan and return the per-operator breakdown."""
    executor = _ProfilingExecutor(
        catalog, semiring, pool=pool, workmem_pages=workmem_pages
    )
    stats = IOStats()
    result = executor._eval(plan, stats)
    return ExecutionProfile(
        result=result,
        operators=executor.operator_profiles,
        total=stats,
    )
