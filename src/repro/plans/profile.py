"""Execution profiling: per-operator breakdown of a plan run.

``profile_execution`` is an ``EXPLAIN ANALYZE`` for the simulated
engine.  It is no longer a parallel execution path: profiling is a
:class:`~repro.plans.runtime.Tracer` attached to an ordinary
:class:`~repro.plans.runtime.ExecutionContext`, so the profiled run is
exactly the run the engine would do — same operators, same memo
behavior — with each operator's incremental work captured from the
stats deltas the runtime hands the tracer.

The tracer itself lives in :mod:`repro.obs.trace`:
:class:`~repro.obs.trace.QueryTracer` subsumes the old
``ProfilingTracer`` (kept as an alias) and additionally records the
query's lifecycle as a span tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.catalog.catalog import Catalog
from repro.data.relation import FunctionalRelation
from repro.obs.trace import OperatorProfile, QueryTracer, Span
from repro.plans.lower import lower
from repro.plans.nodes import PlanNode
from repro.plans.runtime import (
    DEFAULT_WORKMEM_PAGES,
    ExecutionContext,
    evaluate_dag,
)
from repro.semiring.base import Semiring
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStats

if TYPE_CHECKING:
    from repro.obs.calib import PlanCalibration

__all__ = [
    "OperatorProfile",
    "ExecutionProfile",
    "ProfilingTracer",
    "profile_execution",
]

# The span-based tracer subsumed the old profiling-only tracer; the
# name survives for callers constructing one directly.
ProfilingTracer = QueryTracer


@dataclass
class ExecutionProfile:
    """The full breakdown plus the result."""

    result: FunctionalRelation
    operators: list[OperatorProfile]
    total: IOStats
    trace: Span | None = None
    """Lifecycle span tree of the profiled run, when traced."""
    calibration: "PlanCalibration | None" = None
    """Estimate→actual join (:mod:`repro.obs.calib`), when calibrated:
    adds ``est.rows`` / ``q-err`` columns to :meth:`formatted`."""

    def _calibration_columns(self, op: OperatorProfile) -> str:
        row = (
            None
            if self.calibration is None or op.node_key is None
            else self.calibration.lookup(op.node_key)
        )
        if row is None:
            return f" {'-':>9s} {'-':>6s}"
        q = "-" if row.q_error is None else f"{row.q_error:.2f}"
        return f" {row.estimated_rows:>9,.0f} {q:>6s}"

    def formatted(self) -> str:
        calibrated = self.calibration is not None
        header = (
            f"{'operator':40s} {'rows':>9s} {'tuples':>10s} "
            f"{'reads':>7s} {'hits':>7s} {'writes':>7s} "
            f"{'retries':>7s} {'elapsed':>12s}"
        )
        if calibrated:
            header += f" {'est.rows':>9s} {'q-err':>6s}"
        lines = [header, "-" * len(header)]
        for op in self.operators:
            label = f"{op.label} [memo]" if op.memoized else op.label
            if op.degraded is not None:
                label = f"{label} [degraded]"
            line = (
                f"{label:40s} {op.out_rows:>9,} {op.tuples:>10,} "
                f"{op.page_reads:>7} {op.buffer_hits:>7} "
                f"{op.page_writes:>7} {op.retries:>7} "
                f"{op.elapsed:>12,.0f}"
            )
            if calibrated:
                line += self._calibration_columns(op)
            lines.append(line)
        lines.append("-" * len(header))
        lines.append(
            f"{'total':40s} {self.result.ntuples:>9,} "
            f"{self.total.tuples_processed:>10,} "
            f"{self.total.page_reads:>7} {self.total.buffer_hits:>7} "
            f"{self.total.page_writes:>7} {self.total.retries:>7} "
            f"{self.total.elapsed():>12,.0f}"
        )
        if calibrated:
            lines.append(
                f"plan q-error: {self.calibration.plan_q_error:.2f} "
                f"(geometric mean {self.calibration.mean_q_error:.2f})"
            )
            dominant = self.calibration.dominant
            if dominant is not None:
                lines.append(
                    f"dominant misestimate: {dominant.label} "
                    f"(q={dominant.q_error:.2f}, source={dominant.source})"
                )
        memo_hits = sum(1 for op in self.operators if op.memoized)
        if memo_hits:
            lines.append(f"memo hits: {memo_hits}")
        if self.total.retries:
            lines.append(
                f"retries: {self.total.retries} "
                f"(waited {self.total.retry_wait:,.0f} cost units)"
            )
        for op in self.operators:
            if op.degraded is not None:
                lines.append(f"degraded: {op.degraded}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe breakdown (schema: the explain document's

        ``operators`` array plus the run's IOStats totals and, when
        traced, the lifecycle span tree)."""
        out = {
            "operators": [op.to_dict() for op in self.operators],
            "total": {
                "page_reads": self.total.page_reads,
                "page_writes": self.total.page_writes,
                "buffer_hits": self.total.buffer_hits,
                "tuples": self.total.tuples_processed,
                "memo_hits": self.total.memo_hits,
                "retries": self.total.retries,
                "retry_wait": self.total.retry_wait,
                "elapsed": self.total.elapsed(),
            },
            "rows": self.result.ntuples,
        }
        if self.trace is not None:
            out["trace"] = self.trace.to_dict()
        if self.calibration is not None:
            out["calibration"] = self.calibration.to_dict()
        return out


def profile_execution(
    plan: PlanNode,
    catalog: Catalog | Mapping[str, FunctionalRelation],
    semiring: Semiring,
    pool: BufferPool | None = None,
    workmem_pages: int = DEFAULT_WORKMEM_PAGES,
    guard=None,
    metrics=None,
) -> ExecutionProfile:
    """Run the plan and return the per-operator breakdown.

    With a ``guard``, resource checks apply to the profiled run and
    any hash→sort degradations it forces appear in the breakdown.
    ``metrics`` additionally publishes the run into a registry.
    """
    tracer = QueryTracer()
    ctx = ExecutionContext(
        catalog,
        semiring,
        pool=pool,
        workmem_pages=workmem_pages,
        tracer=tracer,
        guard=guard,
        metrics=metrics,
    )
    tracer.bind_stats(ctx.stats)
    with tracer.span("execute"):
        (result,) = evaluate_dag(lower(plan), ctx)
    return ExecutionProfile(
        result=result,
        operators=tracer.operators,
        total=ctx.stats,
        trace=tracer.finish(),
    )
