"""Lowering: plan trees → a shared physical DAG (CSE).

``lower`` converts one or more plan trees into a :class:`PlanDAG`:
nodes are deduplicated by :meth:`PlanNode.structural_key`, so repeated
``Scan``s and structurally identical subplans — within one query or
across a batch — become a single DAG node.  The runtime evaluates each
unique node at most once (see :mod:`repro.plans.runtime`), which is the
physical counterpart of the paper's Section 6 workload sharing: common
work across an MPF query batch is detected and paid for once.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.plans.nodes import IndexScan, PlanNode, Scan

__all__ = ["PlanDAG", "lower"]


class PlanDAG:
    """A deduplicated plan DAG over structural keys.

    ``nodes`` maps each structural key to one representative plan node;
    ``children`` gives each key's input keys; ``roots`` are the keys of
    the input trees, in input order (duplicates preserved so batch
    callers can zip results back to queries); ``order`` is a
    topological order with children before parents.
    """

    def __init__(
        self,
        nodes: dict[tuple, PlanNode],
        children: dict[tuple, tuple[tuple, ...]],
        depends_on: dict[tuple, frozenset[str]],
        roots: tuple[tuple, ...],
        order: tuple[tuple, ...],
        tree_nodes: int,
    ):
        self.nodes = nodes
        self.children = children
        self.depends_on = depends_on
        self.roots = roots
        self.order = order
        self.tree_nodes = tree_nodes

    # ------------------------------------------------------------------
    @property
    def unique_nodes(self) -> int:
        return len(self.nodes)

    @property
    def shared_nodes(self) -> int:
        """Tree occurrences eliminated by CSE."""
        return self.tree_nodes - self.unique_nodes

    def node(self, key: tuple) -> PlanNode:
        return self.nodes[key]

    def topological(self) -> Iterator[tuple]:
        """Keys with every child before its parents."""
        return iter(self.order)

    def base_tables(self, key: tuple) -> frozenset[str]:
        """Base tables the subplan rooted at ``key`` reads."""
        return self.depends_on[key]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PlanDAG(roots={len(self.roots)}, unique={self.unique_nodes}, "
            f"shared={self.shared_nodes})"
        )


def lower(plans: PlanNode | Sequence[PlanNode]) -> PlanDAG:
    """Common-subexpression-eliminate plan trees into one DAG."""
    if isinstance(plans, PlanNode):
        plans = [plans]
    nodes: dict[tuple, PlanNode] = {}
    children: dict[tuple, tuple[tuple, ...]] = {}
    depends_on: dict[tuple, frozenset[str]] = {}
    order: list[tuple] = []

    def visit(root: PlanNode) -> tuple:
        # Iterative post-order: lowering must survive plans far deeper
        # than the interpreter recursion limit (long operator chains).
        stack = [root]
        while stack:
            node = stack[-1]
            key = node.structural_key()
            if key in nodes:
                stack.pop()
                continue
            pending = [
                c for c in node.children()
                if c.structural_key() not in nodes
            ]
            if pending:
                stack.extend(pending)
                continue
            child_keys = tuple(c.structural_key() for c in node.children())
            nodes[key] = node
            children[key] = child_keys
            tables = set()
            if isinstance(node, (Scan, IndexScan)):
                tables.add(node.table)
            for child_key in child_keys:
                tables |= depends_on[child_key]
            depends_on[key] = frozenset(tables)
            order.append(key)  # post-order ⇒ children first
            stack.pop()
        return root.structural_key()

    roots = tuple(visit(plan) for plan in plans)
    tree_nodes = sum(plan.count_nodes() for plan in plans)
    return PlanDAG(
        nodes=nodes,
        children=children,
        depends_on=depends_on,
        roots=roots,
        order=tuple(order),
        tree_nodes=tree_nodes,
    )
