"""Lowering: plan trees → a shared physical DAG (CSE).

``lower`` converts one or more plan trees into a :class:`PlanDAG`:
nodes are deduplicated by :meth:`PlanNode.structural_key`, so repeated
``Scan``s and structurally identical subplans — within one query or
across a batch — become a single DAG node.  The runtime evaluates each
unique node at most once (see :mod:`repro.plans.runtime`), which is the
physical counterpart of the paper's Section 6 workload sharing: common
work across an MPF query batch is detected and paid for once.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.plans.nodes import FilterScan, IndexScan, PlanNode, Scan, Select

__all__ = ["PlanDAG", "lower"]


class PlanDAG:
    """A deduplicated plan DAG over structural keys.

    ``nodes`` maps each structural key to one representative plan node;
    ``children`` gives each key's input keys; ``roots`` are the keys of
    the input trees, in input order (duplicates preserved so batch
    callers can zip results back to queries); ``order`` is a
    topological order with children before parents.
    """

    def __init__(
        self,
        nodes: dict[tuple, PlanNode],
        children: dict[tuple, tuple[tuple, ...]],
        depends_on: dict[tuple, frozenset[str]],
        roots: tuple[tuple, ...],
        order: tuple[tuple, ...],
        tree_nodes: int,
    ):
        self.nodes = nodes
        self.children = children
        self.depends_on = depends_on
        self.roots = roots
        self.order = order
        self.tree_nodes = tree_nodes

    # ------------------------------------------------------------------
    @property
    def unique_nodes(self) -> int:
        return len(self.nodes)

    @property
    def shared_nodes(self) -> int:
        """Tree occurrences eliminated by CSE."""
        return self.tree_nodes - self.unique_nodes

    def node(self, key: tuple) -> PlanNode:
        return self.nodes[key]

    def topological(self) -> Iterator[tuple]:
        """Keys with every child before its parents."""
        return iter(self.order)

    def base_tables(self, key: tuple) -> frozenset[str]:
        """Base tables the subplan rooted at ``key`` reads."""
        return self.depends_on[key]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PlanDAG(roots={len(self.roots)}, unique={self.unique_nodes}, "
            f"shared={self.shared_nodes})"
        )


def lower(
    plans: PlanNode | Sequence[PlanNode],
    fuse_select_scan: bool = False,
) -> PlanDAG:
    """Common-subexpression-eliminate plan trees into one DAG.

    ``fuse_select_scan`` additionally rewrites each ``Select`` whose
    only child is a ``Scan`` *exclusively feeding that Select* into a
    single :class:`~repro.plans.nodes.FilterScan` node, which
    evaluates the predicate during the scan and skips one full
    materialization pass.  Shared scans (another DAG node, or a root,
    also reads the table's scan) are never fused — fusing them would
    duplicate the page reads the CSE just eliminated.  Results are
    byte-identical fused or not.
    """
    if isinstance(plans, PlanNode):
        plans = [plans]
    nodes: dict[tuple, PlanNode] = {}
    children: dict[tuple, tuple[tuple, ...]] = {}
    depends_on: dict[tuple, frozenset[str]] = {}
    order: list[tuple] = []

    def visit(root: PlanNode) -> tuple:
        # Iterative post-order: lowering must survive plans far deeper
        # than the interpreter recursion limit (long operator chains).
        stack = [root]
        while stack:
            node = stack[-1]
            key = node.structural_key()
            if key in nodes:
                stack.pop()
                continue
            pending = [
                c for c in node.children()
                if c.structural_key() not in nodes
            ]
            if pending:
                stack.extend(pending)
                continue
            child_keys = tuple(c.structural_key() for c in node.children())
            nodes[key] = node
            children[key] = child_keys
            tables = set()
            if isinstance(node, (Scan, IndexScan, FilterScan)):
                tables.add(node.table)
            for child_key in child_keys:
                tables |= depends_on[child_key]
            depends_on[key] = frozenset(tables)
            order.append(key)  # post-order ⇒ children first
            stack.pop()
        return root.structural_key()

    roots = tuple(visit(plan) for plan in plans)
    tree_nodes = sum(plan.count_nodes() for plan in plans)
    dag = PlanDAG(
        nodes=nodes,
        children=children,
        depends_on=depends_on,
        roots=roots,
        order=tuple(order),
        tree_nodes=tree_nodes,
    )
    if fuse_select_scan:
        dag = _fuse_select_scans(dag)
    return dag


def _fuse_select_scans(dag: PlanDAG) -> PlanDAG:
    """Rewrite exclusive Select→Scan pairs into FilterScan nodes."""
    parents: dict[tuple, set[tuple]] = {key: set() for key in dag.nodes}
    for key, child_keys in dag.children.items():
        for child_key in child_keys:
            parents[child_key].add(key)
    root_keys = set(dag.roots)

    remap: dict[tuple, tuple] = {}     # select key -> filter-scan key
    fused: dict[tuple, FilterScan] = {}
    dropped: set[tuple] = set()        # scan keys absorbed into a fusion
    for key, node in dag.nodes.items():
        if not isinstance(node, Select):
            continue
        (scan_key,) = dag.children[key]
        scan = dag.nodes[scan_key]
        if not isinstance(scan, Scan):
            continue
        if scan_key in root_keys or parents[scan_key] != {key}:
            continue
        fs = FilterScan(scan.table, node.predicate)
        remap[key] = fs.structural_key()
        fused[key] = fs
        dropped.add(scan_key)
    if not remap:
        return dag

    nodes: dict[tuple, PlanNode] = {}
    children: dict[tuple, tuple[tuple, ...]] = {}
    depends_on: dict[tuple, frozenset[str]] = {}
    order: list[tuple] = []
    for key in dag.order:
        if key in dropped:
            continue
        if key in remap:
            fs = fused[key]
            fs_key = remap[key]
            nodes[fs_key] = fs
            children[fs_key] = ()
            depends_on[fs_key] = frozenset({fs.table})
            order.append(fs_key)
            continue
        nodes[key] = dag.nodes[key]
        children[key] = tuple(
            remap.get(k, k) for k in dag.children[key]
        )
        depends_on[key] = dag.depends_on[key]
        order.append(key)
    return PlanDAG(
        nodes=nodes,
        children=children,
        depends_on=depends_on,
        roots=tuple(remap.get(k, k) for k in dag.roots),
        order=tuple(order),
        tree_nodes=dag.tree_nodes,
    )
