"""Plan annotation: estimated statistics and costs per node.

``annotate(plan, catalog, model)`` fills every node's ``stats`` (a
derived :class:`TableStats`), ``op_cost`` (this operator alone) and
``total_cost`` (operator + subtree).  Optimizers compare plans by root
``total_cost``.
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.catalog.statistics import TableStats
from repro.cost.cardinality import group_stats, join_stats, select_stats
from repro.cost.model import CostModel, SimpleCostModel
from repro.errors import PlanError
from repro.plans.nodes import GroupBy, IndexScan, PlanNode, ProductJoin, Scan, Select

__all__ = ["annotate", "plan_cost", "estimate_map"]


def annotate(
    plan: PlanNode,
    catalog: Catalog,
    model: CostModel | None = None,
    overrides: dict[str, TableStats] | None = None,
    choose_methods: bool = False,
) -> PlanNode:
    """Attach stats and costs to every node; returns the same plan.

    ``overrides`` substitutes statistics for named base tables — used
    when a selection was pushed into a base relation before planning,
    so the optimizer sees post-selection cardinalities.

    ``choose_methods`` additionally performs physical optimization:
    each ProductJoin / GroupBy node gets the cheapest algorithm under
    ``model`` ("hash" vs "sort_merge" joins, "sort" vs "hash"
    aggregation) written into its ``method`` attribute.
    """
    model = model or SimpleCostModel()
    overrides = overrides or {}

    def visit(node: PlanNode) -> None:
        if isinstance(node, Scan):
            node.stats = overrides.get(node.table) or catalog.stats(node.table)
            node.op_cost = model.scan_cost(node.stats)
            node.total_cost = node.op_cost
            return
        if isinstance(node, IndexScan):
            base = overrides.get(node.table) or catalog.stats(node.table)
            node.stats = select_stats(base, node.predicate)
            node.op_cost = model.index_scan_cost(base, node.stats)
            node.total_cost = node.op_cost
            return
        for child in node.children():
            visit(child)
        if isinstance(node, Select):
            node.stats = select_stats(node.child.stats, node.predicate)
            node.op_cost = model.select_cost(node.child.stats, node.stats)
            node.total_cost = node.op_cost + node.child.total_cost
        elif isinstance(node, ProductJoin):
            node.stats = join_stats(node.left.stats, node.right.stats)
            if choose_methods:
                node.method = min(
                    ProductJoin.JOIN_METHODS,
                    key=lambda m: model.join_cost(
                        node.left.stats, node.right.stats, node.stats, m
                    ),
                )
            node.op_cost = model.join_cost(
                node.left.stats, node.right.stats, node.stats, node.method
            )
            node.total_cost = (
                node.op_cost + node.left.total_cost + node.right.total_cost
            )
        elif isinstance(node, GroupBy):
            unknown = set(node.group_names) - set(node.child.stats.var_sizes)
            if unknown:
                raise PlanError(
                    f"GroupBy on {sorted(unknown)} not produced by child "
                    f"(has {list(node.child.stats.var_sizes)})"
                )
            node.stats = group_stats(node.child.stats, node.group_names)
            if choose_methods:
                node.method = min(
                    GroupBy.GROUP_METHODS,
                    key=lambda m: model.group_cost(
                        node.child.stats, node.stats, m
                    ),
                )
            node.op_cost = model.group_cost(
                node.child.stats, node.stats, node.method
            )
            node.total_cost = node.op_cost + node.child.total_cost
        else:  # pragma: no cover - defensive
            raise PlanError(f"unknown plan node {type(node).__name__}")

    visit(plan)
    return plan


def plan_cost(
    plan: PlanNode,
    catalog: Catalog,
    model: CostModel | None = None,
    overrides: dict[str, TableStats] | None = None,
) -> float:
    """Annotate and return the root's cumulative estimated cost."""
    annotate(plan, catalog, model, overrides)
    return float(plan.total_cost)


def estimate_map(plan: PlanNode) -> dict[tuple, tuple[float, float]]:
    """Per-node estimates keyed by structural plan key.

    Returns ``{structural_key: (estimated_rows, estimated_op_cost)}``
    for every annotated node of the tree.  The structural key is the
    same identity :func:`repro.plans.lower.lower` and the runtime memo
    use, so estimates from the annotated plan tree can be joined with
    the *actual* per-node counts an execution recorded
    (:attr:`~repro.plans.runtime.ExecutionContext.actuals`, or the
    tracer's :class:`~repro.obs.trace.OperatorProfile` rows) — the
    estimate→actual join the calibration layer is built on.  Nodes
    sharing a structural key are structurally identical, so their
    estimates agree and the collapse is lossless.
    """
    out: dict[tuple, tuple[float, float]] = {}
    for node in plan.walk():
        if node.stats is None:
            continue
        out[node.structural_key()] = (
            float(node.stats.cardinality),
            float(node.op_cost or 0.0),
        )
    return out
