"""Plan (de)serialization: plans as plain dicts / JSON.

Lets callers persist a chosen plan (e.g. a plan cache keyed by query
shape) and re-execute it later without re-optimizing — the relational
engine's equivalent of a prepared statement.  Only structure and
physical methods are stored; statistics/cost annotations are
re-derivable via :func:`repro.plans.annotate.annotate`.
"""

from __future__ import annotations

import json

from repro.errors import PlanError
from repro.plans.nodes import (
    FilterScan,
    GroupBy,
    IndexScan,
    PlanNode,
    ProductJoin,
    Scan,
    Select,
    SemiJoin,
)

__all__ = ["plan_to_dict", "plan_from_dict", "plan_to_json", "plan_from_json"]


def plan_to_dict(plan: PlanNode) -> dict:
    """Structural dict encoding of a plan tree."""
    if isinstance(plan, Scan):
        return {"op": "scan", "table": plan.table}
    if isinstance(plan, IndexScan):
        return {
            "op": "index_scan",
            "table": plan.table,
            "predicate": dict(plan.predicate),
        }
    if isinstance(plan, FilterScan):
        return {
            "op": "filter_scan",
            "table": plan.table,
            "predicate": dict(plan.predicate),
        }
    if isinstance(plan, Select):
        return {
            "op": "select",
            "predicate": dict(plan.predicate),
            "child": plan_to_dict(plan.child),
        }
    if isinstance(plan, ProductJoin):
        return {
            "op": "product_join",
            "method": plan.method,
            "left": plan_to_dict(plan.left),
            "right": plan_to_dict(plan.right),
        }
    if isinstance(plan, GroupBy):
        return {
            "op": "group_by",
            "group_names": list(plan.group_names),
            "method": plan.method,
            "child": plan_to_dict(plan.child),
        }
    if isinstance(plan, SemiJoin):
        return {
            "op": "semijoin",
            "kind": plan.kind,
            "target": plan_to_dict(plan.target),
            "source": plan_to_dict(plan.source),
        }
    raise PlanError(f"cannot serialize node {type(plan).__name__}")


def plan_from_dict(data: dict) -> PlanNode:
    """Rebuild a plan tree from :func:`plan_to_dict` output."""
    try:
        op = data["op"]
    except (TypeError, KeyError):
        raise PlanError(f"malformed plan dict: {data!r}") from None
    if op == "scan":
        return Scan(data["table"])
    if op == "index_scan":
        return IndexScan(data["table"], data["predicate"])
    if op == "filter_scan":
        return FilterScan(data["table"], data["predicate"])
    if op == "select":
        return Select(plan_from_dict(data["child"]), data["predicate"])
    if op == "product_join":
        return ProductJoin(
            plan_from_dict(data["left"]),
            plan_from_dict(data["right"]),
            method=data.get("method", "hash"),
        )
    if op == "group_by":
        return GroupBy(
            plan_from_dict(data["child"]),
            data["group_names"],
            method=data.get("method", "sort"),
        )
    if op == "semijoin":
        return SemiJoin(
            plan_from_dict(data["target"]),
            plan_from_dict(data["source"]),
            kind=data.get("kind", "product"),
        )
    raise PlanError(f"unknown plan op {op!r}")


def plan_to_json(plan: PlanNode, indent: int | None = None) -> str:
    return json.dumps(plan_to_dict(plan), indent=indent)


def plan_from_json(text: str) -> PlanNode:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PlanError(f"invalid plan JSON: {exc}") from exc
    return plan_from_dict(data)
