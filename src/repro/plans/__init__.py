"""Evaluation plans: nodes, costing annotations, printing, execution."""

from repro.plans.annotate import annotate, plan_cost
from repro.plans.executor import Executor, execute
from repro.plans.guard import QueryGuard
from repro.plans.lower import PlanDAG, lower
from repro.plans.nodes import (
    FilterScan,
    GroupBy,
    IndexScan,
    PlanNode,
    ProductJoin,
    Scan,
    Select,
    SemiJoin,
)
from repro.plans.printer import explain
from repro.plans.profile import (
    ExecutionProfile,
    OperatorProfile,
    ProfilingTracer,
    profile_execution,
)
from repro.plans.runtime import (
    DEFAULT_WORKMEM_PAGES,
    ExecutionContext,
    PhysicalOperator,
    Tracer,
    evaluate,
    evaluate_dag,
    operator_for,
)
from repro.plans.serialize import (
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
)

__all__ = [
    "PlanNode",
    "Scan",
    "IndexScan",
    "FilterScan",
    "Select",
    "ProductJoin",
    "GroupBy",
    "SemiJoin",
    "annotate",
    "plan_cost",
    "explain",
    "Executor",
    "execute",
    "PlanDAG",
    "lower",
    "ExecutionContext",
    "PhysicalOperator",
    "QueryGuard",
    "Tracer",
    "evaluate",
    "evaluate_dag",
    "operator_for",
    "DEFAULT_WORKMEM_PAGES",
    "profile_execution",
    "ProfilingTracer",
    "ExecutionProfile",
    "OperatorProfile",
    "plan_to_dict",
    "plan_from_dict",
    "plan_to_json",
    "plan_from_json",
]
