"""Evaluation plans: nodes, costing annotations, printing, execution."""

from repro.plans.annotate import annotate, plan_cost
from repro.plans.executor import Executor, execute
from repro.plans.nodes import GroupBy, IndexScan, PlanNode, ProductJoin, Scan, Select
from repro.plans.printer import explain
from repro.plans.profile import ExecutionProfile, OperatorProfile, profile_execution
from repro.plans.serialize import (
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
)

__all__ = [
    "PlanNode",
    "Scan",
    "IndexScan",
    "Select",
    "ProductJoin",
    "GroupBy",
    "annotate",
    "plan_cost",
    "explain",
    "Executor",
    "execute",
    "profile_execution",
    "ExecutionProfile",
    "OperatorProfile",
    "plan_to_dict",
    "plan_from_dict",
    "plan_to_json",
    "plan_from_json",
]
