"""Query guards: deadlines, memory ceilings, cancellation, retry budgets.

Section 7 of the paper shows MPF plans whose costs differ by orders of
magnitude — an unguarded runtime will happily execute an exponential
CS plan until the process dies.  A :class:`QueryGuard` is the
resource-governance contract one query (or one query window inside a
batch) runs under:

* a **deadline** — wall-clock seconds, and/or a *simulated-cost
  budget* in :meth:`IOStats.elapsed` units (deterministic, so tests
  and CI can exercise timeouts without real clocks);
* a hard **memory ceiling** in pages on materialized intermediates —
  the exponential-intermediate killer;
* a cooperative **cancellation token** (:meth:`cancel`);
* a **retry budget** and :class:`~repro.storage.faults.RetryPolicy`
  for transient storage faults.

The runtime checks the guard at operator and row-batch granularity
(:func:`repro.plans.runtime.evaluate_dag`,
:meth:`repro.storage.heapfile.HeapFile.scan`), so a violation raises
within one batch of crossing the limit and never publishes a partial
result to the memo.  Under memory pressure the guard can *degrade*
hash joins/aggregations to their sort-based spill path instead of
aborting (``allow_degrade``); the runtime records each downgrade with
the tracer so EXPLAIN ANALYZE shows it.
"""

from __future__ import annotations

import time

from repro.errors import (
    MemoryLimitExceeded,
    QueryCancelled,
    QueryTimeout,
)
from repro.storage.faults import DEFAULT_RETRY_POLICY, RetryPolicy
from repro.storage.iostats import IOStats

__all__ = ["QueryGuard"]


class QueryGuard:
    """Resource bounds for one query window.

    Parameters
    ----------
    deadline_seconds:
        Wall-clock budget per query window (``restart`` opens a new
        window; a batch restarts the guard before each query).
    cost_budget:
        Simulated-cost budget per window, in ``IOStats.elapsed()``
        units.  Deterministic alternative (or complement) to the
        wall clock.
    memory_limit_pages:
        Hard ceiling on pages of intermediates materialized within the
        window.  ``None`` disables the ceiling.
    retry_budget:
        Total transient-fault retries one window may consume.
    retry_policy:
        Per-page backoff schedule for transient faults.
    allow_degrade:
        Permit downgrading hash join/aggregation to the sort/spill
        path when the build side does not fit, instead of raising
        :class:`MemoryLimitExceeded`.
    clock:
        Injectable monotonic clock (tests freeze it).
    """

    def __init__(
        self,
        deadline_seconds: float | None = None,
        cost_budget: float | None = None,
        memory_limit_pages: int | None = None,
        retry_budget: int = 64,
        retry_policy: RetryPolicy | None = DEFAULT_RETRY_POLICY,
        allow_degrade: bool = True,
        clock=time.monotonic,
    ):
        self.deadline_seconds = deadline_seconds
        self.cost_budget = cost_budget
        self.memory_limit_pages = memory_limit_pages
        self.retry_budget = retry_budget
        self.retry_policy = retry_policy
        self.allow_degrade = allow_degrade
        self._clock = clock
        self._cancelled = False
        self._started = False
        self._t0 = 0.0
        self._cost0 = 0.0
        self.retries_used = 0
        self.pages_admitted = 0
        self.degradations: list[str] = []

    # ------------------------------------------------------------------
    # Window management
    # ------------------------------------------------------------------
    def restart(self, stats: IOStats | None = None) -> None:
        """Open a new query window: deadline, quota, retries reset.

        Cancellation is *not* reset — a cancelled guard stays
        cancelled until :meth:`uncancel`.
        """
        self._started = True
        self._t0 = self._clock()
        self._cost0 = stats.elapsed() if stats is not None else 0.0
        self.retries_used = 0
        self.pages_admitted = 0
        self.degradations = []

    def ensure_started(self, stats: IOStats | None = None) -> None:
        if not self._started:
            self.restart(stats)

    # ------------------------------------------------------------------
    # Cancellation token
    # ------------------------------------------------------------------
    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Request cooperative cancellation of the guarded query."""
        self._cancelled = True

    def uncancel(self) -> None:
        self._cancelled = False

    # ------------------------------------------------------------------
    # Checks (called by the runtime per operator / row batch)
    # ------------------------------------------------------------------
    def check(self, stats: IOStats) -> None:
        """Raise if cancelled or past the deadline / cost budget."""
        if self._cancelled:
            raise QueryCancelled("query cancelled by its guard")
        self.ensure_started(stats)
        if self.deadline_seconds is not None:
            elapsed = self._clock() - self._t0
            if elapsed > self.deadline_seconds:
                raise QueryTimeout(
                    f"deadline exceeded: {elapsed:.3f}s > "
                    f"{self.deadline_seconds:.3f}s"
                )
        if self.cost_budget is not None:
            spent = stats.elapsed() - self._cost0
            if spent > self.cost_budget:
                raise QueryTimeout(
                    f"simulated cost budget exceeded: {spent:.0f} > "
                    f"{self.cost_budget:.0f} cost units"
                )

    def admit_pages(self, pages: int) -> None:
        """Account a materialized intermediate against the ceiling."""
        if self.memory_limit_pages is None:
            return
        self.pages_admitted += int(pages)
        if self.pages_admitted > self.memory_limit_pages:
            raise MemoryLimitExceeded(
                f"materialized {self.pages_admitted} pages of "
                f"intermediates, over the {self.memory_limit_pages}-page "
                "ceiling"
            )

    def build_side_fits(self, pages: int, workmem_pages: int) -> bool:
        """Whether a hash build of ``pages`` pages may stay in memory."""
        limit = workmem_pages
        if self.memory_limit_pages is not None:
            limit = min(limit, self.memory_limit_pages - self.pages_admitted)
        return pages <= limit

    def note_degradation(self, description: str) -> None:
        self.degradations.append(description)

    # ------------------------------------------------------------------
    # Retry budget (consumed by the storage retry loop)
    # ------------------------------------------------------------------
    def consume_retry(self) -> bool:
        """Spend one retry; ``False`` when the window's budget is dry."""
        self.retries_used += 1
        return self.retries_used <= self.retry_budget

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        parts = []
        if self.deadline_seconds is not None:
            parts.append(f"deadline={self.deadline_seconds}s")
        if self.cost_budget is not None:
            parts.append(f"cost={self.cost_budget:g}")
        if self.memory_limit_pages is not None:
            parts.append(f"mem={self.memory_limit_pages}p")
        if self._cancelled:
            parts.append("cancelled")
        return f"QueryGuard({', '.join(parts)})"
