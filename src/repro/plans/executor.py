"""Plan execution over the simulated storage substrate.

The executor evaluates a plan tree bottom-up with the vectorized
algebra operators, while charging the :class:`IOStats` clock the way a
disk-based engine would pay:

* ``Scan`` — sequential page reads of the base heap file through the
  buffer pool (repeat scans of small tables hit the cache);
* ``ProductJoin`` — hash-join CPU work proportional to
  ``|L| + |R| + |out|``; results wider than the work-memory budget are
  spilled (page writes) like PostgreSQL materializing a hash join that
  exceeds ``work_mem``;
* ``GroupBy`` — sort-based aggregation: ``n·log2(n)`` CPU plus the
  output tuples, with the same spill rule;
* ``Select`` — one pass over the input.

``execute`` returns the result relation and the populated stats, whose
``elapsed()`` is the deterministic evaluation-time proxy used by the
benchmark harness.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.algebra.aggregate import marginalize
from repro.algebra.join import product_join
from repro.algebra.select import restrict
from repro.catalog.catalog import Catalog
from repro.data.relation import FunctionalRelation
from repro.errors import PlanError
from repro.plans.nodes import GroupBy, IndexScan, PlanNode, ProductJoin, Scan, Select
from repro.semiring.base import Semiring
from repro.storage.buffer import BufferPool
from repro.storage.heapfile import HeapFile, TempFileAllocator
from repro.storage.iostats import IOStats
from repro.storage.page import PageGeometry

__all__ = ["Executor", "execute"]

# Work-memory budget for a single operator, in pages (cf. work_mem).
DEFAULT_WORKMEM_PAGES = 2048


class Executor:
    """Evaluates plan trees against a catalog (or a plain name→FR map)."""

    def __init__(
        self,
        catalog: Catalog | Mapping[str, FunctionalRelation],
        semiring: Semiring,
        pool: BufferPool | None = None,
        workmem_pages: int = DEFAULT_WORKMEM_PAGES,
    ):
        self._catalog = catalog if isinstance(catalog, Catalog) else None
        self._env: Mapping[str, FunctionalRelation] = (
            catalog.environment() if isinstance(catalog, Catalog) else dict(catalog)
        )
        self.semiring = semiring
        # `pool or BufferPool()` would discard an *empty* caller pool:
        # BufferPool defines __len__, so a fresh pool is falsy.
        self.pool = pool if pool is not None else BufferPool()
        self.workmem_pages = workmem_pages
        self._temp = TempFileAllocator()
        self._adhoc_files: dict[str, HeapFile] = {}

    # ------------------------------------------------------------------
    def run(self, plan: PlanNode, stats: IOStats | None = None):
        """Execute ``plan``; returns ``(relation, stats)``."""
        stats = stats or IOStats()
        result = self._eval(plan, stats)
        return result, stats

    # ------------------------------------------------------------------
    def _heapfile_for(self, table: str, relation: FunctionalRelation) -> HeapFile:
        if self._catalog is not None and table in self._catalog:
            return self._catalog.heapfile(table)
        if table not in self._adhoc_files:
            self._adhoc_files[table] = self._temp.allocate(
                relation.ntuples, relation.arity
            )
        return self._adhoc_files[table]

    def _maybe_spill(self, relation: FunctionalRelation, stats: IOStats) -> None:
        """Charge a materialization write when the result exceeds work-mem."""
        geometry = PageGeometry(relation.arity)
        pages = geometry.pages_for(relation.ntuples)
        if pages > self.workmem_pages:
            temp = self._temp.allocate(relation.ntuples, relation.arity)
            temp.write_out(self.pool, stats)

    def _eval(self, node: PlanNode, stats: IOStats) -> FunctionalRelation:
        if isinstance(node, Scan):
            try:
                relation = self._env[node.table]
            except KeyError:
                raise PlanError(f"unknown table {node.table!r}") from None
            heapfile = self._heapfile_for(node.table, relation)
            heapfile.scan(self.pool, stats)
            stats.record_operator(node.label(), relation.ntuples)
            return relation

        if isinstance(node, IndexScan):
            try:
                relation = self._env[node.table]
            except KeyError:
                raise PlanError(f"unknown table {node.table!r}") from None
            if self._catalog is None:
                raise PlanError(
                    "IndexScan requires a catalog-backed executor"
                )
            index = self._catalog.index_on(node.table, node.variable)
            if index is None:
                raise PlanError(
                    f"no index on {node.table}({node.variable})"
                )
            value = node.predicate[node.variable]
            code = relation.variables[node.variable].domain.code_of(value)
            rows = index.lookup(code, self.pool, stats)
            result = relation.take(rows)
            stats.record_operator(node.label(), result.ntuples)
            return result

        if isinstance(node, Select):
            child = self._eval(node.child, stats)
            stats.charge_cpu(child.ntuples)
            result = restrict(child, node.predicate)
            stats.record_operator(node.label(), result.ntuples)
            return result

        if isinstance(node, ProductJoin):
            left = self._eval(node.left, stats)
            right = self._eval(node.right, stats)
            result = product_join(left, right, self.semiring)
            if node.method == "sort_merge":
                nl, nr = max(left.ntuples, 2), max(right.ntuples, 2)
                stats.charge_cpu(
                    int(nl * math.log2(nl) + nr * math.log2(nr))
                )
            stats.charge_cpu(left.ntuples + right.ntuples + result.ntuples)
            self._maybe_spill(result, stats)
            stats.record_operator(node.label(), result.ntuples)
            return result

        if isinstance(node, GroupBy):
            child = self._eval(node.child, stats)
            n = max(child.ntuples, 2)
            if node.method == "sort":
                stats.charge_cpu(int(n * math.log2(n)))
            else:  # hash aggregation: one pass + group emission
                stats.charge_cpu(n)
            result = marginalize(child, node.group_names, self.semiring)
            stats.charge_cpu(result.ntuples)
            self._maybe_spill(result, stats)
            stats.record_operator(node.label(), result.ntuples)
            return result

        raise PlanError(f"unknown plan node {type(node).__name__}")


def execute(
    plan: PlanNode,
    catalog: Catalog | Mapping[str, FunctionalRelation],
    semiring: Semiring,
    pool: BufferPool | None = None,
    workmem_pages: int = DEFAULT_WORKMEM_PAGES,
):
    """One-shot convenience wrapper around :class:`Executor`."""
    executor = Executor(catalog, semiring, pool=pool, workmem_pages=workmem_pages)
    return executor.run(plan)
