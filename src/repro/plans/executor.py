"""Compatibility wrapper over the physical-operator runtime.

Historically this module held a recursive tree interpreter; execution
now lives in :mod:`repro.plans.runtime` (operator classes over an
:class:`~repro.plans.runtime.ExecutionContext`, driving a CSE'd plan
DAG).  :class:`Executor` keeps the old surface — construct with a
catalog (or plain name→relation mapping) and a semiring, call
``run(plan)`` — while delegating to the runtime.

Each ``run`` evaluates with a fresh memo, preserving the historical
per-query semantics (repeat runs pay buffer-pool hits, not memo hits);
callers that want cross-query subplan sharing use one
:class:`ExecutionContext` directly or :meth:`repro.engine.Database.run_batch`.
"""

from __future__ import annotations

from typing import Mapping

from repro.catalog.catalog import Catalog
from repro.data.relation import FunctionalRelation
from repro.plans.nodes import PlanNode
from repro.plans.guard import QueryGuard
from repro.plans.runtime import (
    DEFAULT_WORKMEM_PAGES,
    ExecutionContext,
    evaluate,
)
from repro.semiring.base import Semiring
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStats

__all__ = ["Executor", "execute", "DEFAULT_WORKMEM_PAGES"]


class Executor:
    """Evaluates plan trees against a catalog (or a plain name→FR map)."""

    def __init__(
        self,
        catalog: Catalog | Mapping[str, FunctionalRelation],
        semiring: Semiring,
        pool: BufferPool | None = None,
        workmem_pages: int = DEFAULT_WORKMEM_PAGES,
        context: ExecutionContext | None = None,
        metrics=None,
        workers: int = 1,
        task_policy=None,
        worker_faults=None,
        fuse_select_scan: bool = False,
        tracer=None,
    ):
        self.context = context or ExecutionContext(
            catalog, semiring, pool=pool, workmem_pages=workmem_pages,
            metrics=metrics, workers=workers, task_policy=task_policy,
            worker_faults=worker_faults, fuse_select_scan=fuse_select_scan,
            tracer=tracer,
        )

    @property
    def semiring(self) -> Semiring:
        return self.context.semiring

    @property
    def pool(self) -> BufferPool:
        return self.context.pool

    @property
    def workmem_pages(self) -> int:
        return self.context.workmem_pages

    # ------------------------------------------------------------------
    def run(
        self,
        plan: PlanNode,
        stats: IOStats | None = None,
        guard: QueryGuard | None = None,
    ):
        """Execute ``plan``; returns ``(relation, stats)``.

        ``guard``, when given, governs just this run (deadline, memory
        ceiling, cancellation, retry budget); its window restarts here.
        """
        stats = stats or IOStats()
        ctx = self.context
        ctx.reset_memo()
        previous_stats, previous_guard = ctx.stats, ctx.guard
        ctx.stats = stats
        if guard is not None:
            ctx.guard = guard
        if ctx.guard is not None:
            ctx.guard.restart(stats)
        try:
            result = evaluate(plan, ctx)
        finally:
            ctx.stats = previous_stats
            ctx.guard = previous_guard
        return result, stats


def execute(
    plan: PlanNode,
    catalog: Catalog | Mapping[str, FunctionalRelation],
    semiring: Semiring,
    pool: BufferPool | None = None,
    workmem_pages: int = DEFAULT_WORKMEM_PAGES,
    guard: QueryGuard | None = None,
    metrics=None,
    workers: int = 1,
):
    """One-shot convenience wrapper around :class:`Executor`."""
    executor = Executor(
        catalog, semiring, pool=pool, workmem_pages=workmem_pages,
        metrics=metrics, workers=workers,
    )
    return executor.run(plan, guard=guard)
