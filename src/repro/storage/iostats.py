"""Execution accounting for the simulated storage substrate.

The paper's experiments report evaluation times on a modified
PostgreSQL 8.1 server with disk-resident operands.  Our substitute is a
deterministic cost clock: every physical operator charges page IO
(through the buffer pool) and CPU work (tuples touched), and
``elapsed()`` combines them with fixed weights.  This keeps the
*shape* of every experiment — which plan wins, where crossovers fall —
machine-independent, while wall-clock numbers are still available from
pytest-benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["IOStats", "DEFAULT_IO_WEIGHT", "DEFAULT_CPU_WEIGHT"]

# A page IO is worth this many tuple-touches in the combined clock.
# The ratio loosely mirrors a 2006-era disk (ms-scale seeks) against
# in-memory tuple processing (µs-scale); only the ratio matters.
DEFAULT_IO_WEIGHT = 1000.0
DEFAULT_CPU_WEIGHT = 1.0


@dataclass
class IOStats:
    """Mutable counters shared by one query execution."""

    page_reads: int = 0
    page_writes: int = 0
    buffer_hits: int = 0
    tuples_processed: int = 0
    operators_run: int = 0
    memo_hits: int = 0
    retries: int = 0
    retry_wait: float = 0.0
    io_weight: float = DEFAULT_IO_WEIGHT
    cpu_weight: float = DEFAULT_CPU_WEIGHT
    per_operator: list = field(default_factory=list)

    def charge_read(self, pages: int = 1) -> None:
        self.page_reads += pages

    def charge_write(self, pages: int = 1) -> None:
        self.page_writes += pages

    def charge_hit(self, pages: int = 1) -> None:
        self.buffer_hits += pages

    def charge_memo_hit(self) -> None:
        """A shared subplan's result was reused from the runtime memo."""
        self.memo_hits += 1

    def charge_cpu(self, tuples: int) -> None:
        self.tuples_processed += int(tuples)

    def charge_retry(self, wait: float) -> None:
        """A transient page fault was retried after simulated backoff."""
        self.retries += 1
        self.retry_wait += float(wait)

    def record_operator(self, label: str, out_tuples: int) -> None:
        self.operators_run += 1
        self.per_operator.append((label, int(out_tuples)))

    @property
    def page_io(self) -> int:
        return self.page_reads + self.page_writes

    def elapsed(self) -> float:
        """Deterministic evaluation-time proxy (cost units)."""
        return (
            self.io_weight * self.page_io
            + self.cpu_weight * self.tuples_processed
            + self.retry_wait
        )

    def merged_with(self, other: "IOStats") -> "IOStats":
        """Combine counters from two executions (weights from self)."""
        return IOStats(
            page_reads=self.page_reads + other.page_reads,
            page_writes=self.page_writes + other.page_writes,
            buffer_hits=self.buffer_hits + other.buffer_hits,
            tuples_processed=self.tuples_processed + other.tuples_processed,
            operators_run=self.operators_run + other.operators_run,
            memo_hits=self.memo_hits + other.memo_hits,
            retries=self.retries + other.retries,
            retry_wait=self.retry_wait + other.retry_wait,
            io_weight=self.io_weight,
            cpu_weight=self.cpu_weight,
            per_operator=self.per_operator + other.per_operator,
        )

    def snapshot(self) -> tuple:
        """Counter snapshot for later :meth:`since` deltas."""
        return (
            self.page_reads,
            self.page_writes,
            self.buffer_hits,
            self.tuples_processed,
            self.operators_run,
            self.memo_hits,
            len(self.per_operator),
            self.retries,
            self.retry_wait,
        )

    def since(self, snapshot: tuple) -> "IOStats":
        """New stats holding the increments since ``snapshot``."""
        return IOStats(
            page_reads=self.page_reads - snapshot[0],
            page_writes=self.page_writes - snapshot[1],
            buffer_hits=self.buffer_hits - snapshot[2],
            tuples_processed=self.tuples_processed - snapshot[3],
            operators_run=self.operators_run - snapshot[4],
            memo_hits=self.memo_hits - snapshot[5],
            retries=self.retries - snapshot[7],
            retry_wait=self.retry_wait - snapshot[8],
            io_weight=self.io_weight,
            cpu_weight=self.cpu_weight,
            per_operator=self.per_operator[snapshot[6]:],
        )

    def summary(self) -> str:
        text = (
            f"reads={self.page_reads} writes={self.page_writes} "
            f"hits={self.buffer_hits} tuples={self.tuples_processed} "
            f"ops={self.operators_run} elapsed={self.elapsed():.1f}"
        )
        if self.memo_hits:
            text += f" memo={self.memo_hits}"
        if self.retries:
            text += f" retries={self.retries}"
        return text
