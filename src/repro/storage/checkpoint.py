"""Checkpoints: atomic durable snapshots of a whole ``Database``.

A checkpoint file captures everything needed to restart without
recomputation: every base table's rows (as checksummed
:class:`~repro.storage.page.PageImage` frames), the catalog's file-id
assignments and statistics epoch, the defined MPF views and indexes,
the buffer pool's residency (so a restarted pool is warm, not cold),
the full metrics snapshot, and — when an
:class:`~repro.plans.runtime.ExecutionContext` is passed — the runtime
memo's completed subplan results serialized through
``plans/serialize.py``.

File layout::

    MPFCKPT1 | manifest length (4B LE) | manifest JSON | page images...

Writes are atomic: everything goes to a ``.tmp`` sibling which is
fsynced and then ``os.replace``d into place, so a crash mid-checkpoint
leaves at most a stray temp file and the previous checkpoint intact.
The ``checkpoint.begin`` / ``checkpoint.pages`` / ``checkpoint.commit``
crash points bracket exactly those windows.
"""

from __future__ import annotations

import json
import os
import struct
from dataclasses import dataclass

from repro.data.serialize import relation_from_payload, relation_meta, relation_payload
from repro.errors import RecoveryError
from repro.storage.page import DEFAULT_PAGE_SIZE, PageId, PageImage

# NOTE: repro.plans is imported lazily inside checkpoint() —
# repro.plans.__init__ pulls the catalog, which pulls this package, so
# a module-level import here would be circular.

__all__ = ["CheckpointManager", "CheckpointData", "CHECKPOINT_FORMAT"]

CHECKPOINT_FORMAT = "repro.checkpoint.v1"
_MAGIC = b"MPFCKPT1"
_LEN = struct.Struct("<I")


def _chunk_payload(file_id: int, payload: bytes) -> list[PageImage]:
    """Split packed relation bytes into page-size checksummed images."""
    return [
        PageImage(
            PageId(file_id, page_no),
            payload[offset:offset + DEFAULT_PAGE_SIZE],
        )
        for page_no, offset in enumerate(
            range(0, len(payload), DEFAULT_PAGE_SIZE)
        )
    ]


@dataclass(frozen=True)
class CheckpointData:
    """One loaded, checksum-verified checkpoint."""

    name: str
    manifest: dict
    payloads: dict[int, bytes]  # file_id -> reassembled packed bytes

    @property
    def checkpoint_id(self) -> int:
        return self.manifest["checkpoint_id"]

    @property
    def wal_position(self) -> int:
        """End-of-WAL offset when this checkpoint was taken."""
        return self.manifest["wal_position"]


class CheckpointManager:
    """Writes and reads ``chk-NNNNNNNN.ckpt`` files in one directory.

    ``wal`` ties checkpoints into the log: the manifest records the
    WAL position at snapshot time (so recovery knows which records the
    checkpoint already covers) and a ``CHECKPOINT`` record is appended
    after a successful commit.  ``crash`` (defaulting to the WAL's
    injector) supplies the ``checkpoint.*`` crash boundaries.
    """

    def __init__(self, directory: str, wal=None, metrics=None, crash=None):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.wal = wal
        self.metrics = metrics
        self.crash = crash if crash is not None else getattr(wal, "crash", None)
        self._next_id = self._scan_next_id()

    def _scan_next_id(self) -> int:
        highest = 0
        for name in os.listdir(self.directory):
            if name.startswith("chk-") and name.endswith(".ckpt"):
                try:
                    highest = max(highest, int(name[4:-5]))
                except ValueError:
                    continue
        return highest + 1

    def list_checkpoints(self) -> list[str]:
        """Committed checkpoint file names, oldest first."""
        return sorted(
            name
            for name in os.listdir(self.directory)
            if name.startswith("chk-") and name.endswith(".ckpt")
        )

    def latest(self) -> str | None:
        names = self.list_checkpoints()
        return names[-1] if names else None

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def checkpoint(self, db, context=None) -> str:
        """Snapshot ``db`` (and optionally a context's memo); atomic.

        Returns the committed checkpoint file name.  ``db`` is a
        :class:`~repro.engine.Database` (duck-typed: ``catalog``,
        ``pool``, ``metrics``, ``_views``).
        """
        if self.crash is not None:
            self.crash.reach("checkpoint.begin")

        catalog = db.catalog
        images: list[PageImage] = []
        tables = []
        for name in catalog.table_names:
            relation = catalog.relation(name)
            file_id = catalog.heapfile(name).file_id
            chunks = _chunk_payload(file_id, relation_payload(relation))
            images.extend(chunks)
            tables.append({
                "name": name,
                "file_id": file_id,
                "meta": relation_meta(relation),
                "pages": len(chunks),
            })
        indexes = [
            {"table": table, "variable": variable, "file_id": index.file_id}
            for (table, variable), index in sorted(catalog._indexes.items())
        ]
        partitions = [
            {"table": table, "key": spec.key, "shards": spec.shards}
            for table, spec in sorted(catalog._partitions.items())
        ]
        views = [
            {
                "name": name,
                "tables": list(entry.view_tables),
                "multiplicative_op": entry.multiplicative_op,
            }
            for name, entry in db._views.items()
        ]

        memo = []
        if context is not None:
            from repro.plans.serialize import plan_to_dict

            for idx, (node, relation) in enumerate(context.memo_entries()):
                # Memo payloads live under synthetic negative file ids:
                # they are checkpoint-internal and never collide with
                # the catalog's positive heap-file ids.
                file_id = -(idx + 1)
                chunks = _chunk_payload(file_id, relation_payload(relation))
                images.extend(chunks)
                memo.append({
                    "plan": plan_to_dict(node),
                    "meta": relation_meta(relation),
                    "file_id": file_id,
                    "pages": len(chunks),
                })

        checkpoint_id = self._next_id
        manifest = {
            "format": CHECKPOINT_FORMAT,
            "checkpoint_id": checkpoint_id,
            "stats_epoch": catalog.stats_epoch,
            "next_file_id": catalog._next_file_id,
            "wal_position": self.wal.position if self.wal is not None else 0,
            "tables": tables,
            "indexes": indexes,
            "partitions": partitions,
            "views": views,
            "memo": memo,
            "pool": {
                "capacity_pages": db.pool.capacity_pages,
                "resident": [
                    [p.file_id, p.page_no] for p in db.pool.resident_pages()
                ],
            },
            "metrics": db.metrics.snapshot().to_dict(),
        }

        name = f"chk-{checkpoint_id:08d}.ckpt"
        path = os.path.join(self.directory, name)
        tmp = path + ".tmp"
        manifest_bytes = json.dumps(manifest, sort_keys=True).encode("utf-8")
        with open(tmp, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(_LEN.pack(len(manifest_bytes)))
            fh.write(manifest_bytes)
            if self.crash is not None:
                self.crash.reach("checkpoint.pages")
            for image in images:
                fh.write(image.encode())
            fh.flush()
            os.fsync(fh.fileno())
        if self.crash is not None:
            self.crash.reach("checkpoint.commit")
        os.replace(tmp, path)
        self._next_id = checkpoint_id + 1

        if self.metrics is not None:
            self.metrics.counter("checkpoint.taken").inc()
            self.metrics.counter("checkpoint.pages").inc(len(images))
            self.metrics.counter("checkpoint.memo_entries").inc(len(memo))
        if self.wal is not None:
            self.wal.log_checkpoint(name)
        return name

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def load(self, name: str) -> CheckpointData:
        """Load and verify one checkpoint file.

        Raises :class:`~repro.errors.RecoveryError` on any structural
        or checksum failure — a bad magic, malformed manifest, torn or
        corrupted page image, or a page count that disagrees with the
        manifest.
        """
        path = os.path.join(self.directory, name)
        try:
            with open(path, "rb") as fh:
                buf = fh.read()
        except FileNotFoundError:
            raise RecoveryError(f"checkpoint {name!r} does not exist") from None

        if buf[: len(_MAGIC)] != _MAGIC:
            raise RecoveryError(f"checkpoint {name!r}: bad magic")
        offset = len(_MAGIC)
        if offset + _LEN.size > len(buf):
            raise RecoveryError(f"checkpoint {name!r}: truncated header")
        (manifest_len,) = _LEN.unpack_from(buf, offset)
        offset += _LEN.size
        manifest_bytes = buf[offset:offset + manifest_len]
        if len(manifest_bytes) != manifest_len:
            raise RecoveryError(f"checkpoint {name!r}: truncated manifest")
        offset += manifest_len
        try:
            manifest = json.loads(manifest_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RecoveryError(
                f"checkpoint {name!r}: malformed manifest ({exc})"
            ) from None
        if manifest.get("format") != CHECKPOINT_FORMAT:
            raise RecoveryError(
                f"checkpoint {name!r}: unknown format "
                f"{manifest.get('format')!r}"
            )

        chunks: dict[int, list[tuple[int, bytes]]] = {}
        while offset < len(buf):
            image, offset = PageImage.decode(buf, offset)
            chunks.setdefault(image.page.file_id, []).append(
                (image.page.page_no, image.payload)
            )
        payloads = {
            file_id: b"".join(
                payload for _, payload in sorted(parts)
            )
            for file_id, parts in chunks.items()
        }

        for entry in list(manifest["tables"]) + list(manifest["memo"]):
            have = len(chunks.get(entry["file_id"], []))
            if have != entry["pages"]:
                label = entry.get("name") or f"memo file {entry['file_id']}"
                raise RecoveryError(
                    f"checkpoint {name!r}: {label} has {have} page images, "
                    f"manifest says {entry['pages']}"
                )
        return CheckpointData(name=name, manifest=manifest, payloads=payloads)

    def relation_for(self, data: CheckpointData, entry: dict):
        """Rebuild one table/memo entry's relation from loaded data."""
        return relation_from_payload(
            entry["meta"], data.payloads.get(entry["file_id"], b"")
        )
