"""Crash recovery: WAL replay + checkpoint restore.

The restart sequence a recovered process runs:

1. **Replay the WAL** front to back (:func:`~repro.storage.wal.replay_wal`),
   truncating at the first torn record.
2. **Pick the newest loadable checkpoint** — a checkpoint that fails
   its checksum or structural validation is *discarded* (counted on
   ``recovery.checkpoints_discarded``) and the previous one is tried;
   no checkpoint at all is a valid cold start.
3. **Rebuild the metrics registry**: restore the checkpoint's snapshot,
   then fold in — in LSN order — the per-unit metric deltas of every
   QUERY/STEP record the WAL holds *after* the checkpoint's recorded
   position (records before it are already inside the snapshot).
4. **Collect unit records** from the *whole* WAL: pre-checkpoint query
   results live only in the log, and skipping them on resume needs
   their payloads regardless of which side of the checkpoint they fall
   on.

``recovery.replayed_pages`` / ``recovery.replayed_records`` count only
post-checkpoint records — the oracle's proof that recovery never
replays more work than the WAL requires.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import RecoveryError
from repro.obs.metrics import MetricsRegistry, MetricsSnapshot
from repro.storage.checkpoint import CheckpointData, CheckpointManager
from repro.storage.journal import decode_unit
from repro.storage.page import PageId
from repro.storage.wal import (
    WAL_PAGE,
    WAL_QUERY,
    WAL_STEP,
    ReplayResult,
    replay_wal,
    wal_path,
)

__all__ = ["RecoveryManager", "RecoveredState"]


@dataclass
class RecoveredState:
    """Everything :meth:`RecoveryManager.recover` reconstructed."""

    directory: str
    checkpoint: CheckpointData | None
    wal: ReplayResult
    registry: MetricsRegistry
    queries: dict[str, dict] = field(default_factory=dict)
    steps: dict[str, dict] = field(default_factory=dict)
    replayed_pages: int = 0
    replayed_records: int = 0
    checkpoints_discarded: int = 0

    @property
    def has_checkpoint(self) -> bool:
        return self.checkpoint is not None

    def seed_context(self, ctx) -> int:
        """Install the checkpoint's memoized subplan results into a
        fresh :class:`~repro.plans.runtime.ExecutionContext`; returns
        how many entries were seeded."""
        if self.checkpoint is None:
            return 0
        from repro.data.serialize import relation_from_payload
        from repro.plans.serialize import plan_from_dict

        count = 0
        for entry in self.checkpoint.manifest["memo"]:
            node = plan_from_dict(entry["plan"])
            relation = relation_from_payload(
                entry["meta"],
                self.checkpoint.payloads.get(entry["file_id"], b""),
            )
            ctx.seed_memo(node, relation)
            count += 1
        return count


class RecoveryManager:
    """Restores a crashed checkpoint directory to a consistent state."""

    def __init__(self, directory: str):
        self.directory = directory

    def recover(self) -> RecoveredState:
        """Replay the WAL and load the newest consistent checkpoint.

        Never raises on damage that has a consistent fallback: torn WAL
        tails are truncated, corrupt checkpoints are discarded in favor
        of older ones, and an entirely empty directory recovers to a
        cold start.  A missing directory *is* an error
        (:class:`~repro.errors.RecoveryError`) — it means the caller
        pointed recovery at the wrong place.
        """
        if not os.path.isdir(self.directory):
            raise RecoveryError(
                f"recovery directory {self.directory!r} does not exist"
            )
        replay = replay_wal(wal_path(self.directory))

        manager = CheckpointManager(self.directory)
        checkpoint: CheckpointData | None = None
        discarded = 0
        for name in reversed(manager.list_checkpoints()):
            try:
                checkpoint = manager.load(name)
                break
            except RecoveryError:
                discarded += 1
        wal_position = checkpoint.wal_position if checkpoint else 0

        # Metrics: checkpoint snapshot + post-checkpoint unit deltas,
        # folded in LSN order (``later.merge(earlier)`` — counters add,
        # the later gauge value wins).
        accumulated = MetricsSnapshot(
            dict(checkpoint.manifest["metrics"]) if checkpoint else {}
        )
        queries: dict[str, dict] = {}
        steps: dict[str, dict] = {}
        replayed_pages = 0
        replayed_records = 0
        for record in replay.records:
            if record.lsn >= wal_position:
                replayed_records += 1
                if record.kind == WAL_PAGE:
                    replayed_pages += 1
            if record.kind not in (WAL_QUERY, WAL_STEP):
                continue
            unit = decode_unit(record.text())
            target = queries if record.kind == WAL_QUERY else steps
            target[unit["key"]] = unit
            if record.lsn >= wal_position and unit.get("delta"):
                accumulated = MetricsSnapshot(unit["delta"]).merge(accumulated)

        registry = MetricsRegistry()
        registry.restore(accumulated)
        registry.counter("recovery.runs").inc()
        registry.counter("recovery.replayed_pages").inc(replayed_pages)
        registry.counter("recovery.replayed_records").inc(replayed_records)
        if replay.torn_tail:
            registry.counter("recovery.torn_tails").inc()
        if discarded:
            registry.counter("recovery.checkpoints_discarded").inc(discarded)

        return RecoveredState(
            directory=self.directory,
            checkpoint=checkpoint,
            wal=replay,
            registry=registry,
            queries=queries,
            steps=steps,
            replayed_pages=replayed_pages,
            replayed_records=replayed_records,
            checkpoints_discarded=discarded,
        )

    def restore_database(
        self, state: RecoveredState, cost_model=None, pool=None
    ):
        """Rebuild a :class:`~repro.engine.Database` from a checkpoint.

        DDL is replayed in recorded file-id order against a fresh
        catalog, pinning ``_next_file_id`` before each statement so the
        rebuilt heap files and indexes land on exactly their original
        ids (verified — a mismatch raises
        :class:`~repro.errors.RecoveryError`, since plans and the WAL
        reference those ids).  Views, the statistics epoch, the pool's
        residency, and the restored metrics registry all carry over.
        """
        if state.checkpoint is None:
            raise RecoveryError(
                f"no loadable checkpoint in {self.directory!r}; rebuild "
                "base tables and resume from the WAL's unit records"
            )
        from repro.data.serialize import relation_from_payload
        from repro.engine import Database

        manifest = state.checkpoint.manifest
        db = Database(cost_model=cost_model, pool=pool, metrics=state.registry)
        catalog = db.catalog

        ddl = sorted(
            [("table", e) for e in manifest["tables"]]
            + [("index", e) for e in manifest["indexes"]],
            key=lambda item: item[1]["file_id"],
        )
        for kind, entry in ddl:
            catalog._next_file_id = entry["file_id"]
            if kind == "table":
                relation = relation_from_payload(
                    entry["meta"],
                    state.checkpoint.payloads.get(entry["file_id"], b""),
                )
                catalog.register(relation, entry["name"])
                rebuilt = catalog.heapfile(entry["name"]).file_id
            else:
                rebuilt = catalog.create_index(
                    entry["table"], entry["variable"]
                ).file_id
            if rebuilt != entry["file_id"]:
                raise RecoveryError(
                    f"file id drift replaying DDL: {entry!r} rebuilt as "
                    f"file {rebuilt}"
                )
        catalog._next_file_id = manifest["next_file_id"]
        # Re-declare partitionings after DDL replay (shard heap files
        # get fresh ids past the manifest's high-water mark — plans and
        # WAL records only ever reference base-table ids).  ``get``:
        # pre-partitioning checkpoints have no "partitions" key.
        for entry in manifest.get("partitions", []):
            catalog.partition_table(
                entry["table"], entry["key"], entry["shards"]
            )
        catalog._epoch = manifest["stats_epoch"]

        for view in manifest["views"]:
            db.create_view(
                view["name"],
                tuple(view["tables"]),
                view["multiplicative_op"],
            )

        db.pool.warm(
            PageId(file_id, page_no)
            for file_id, page_no in manifest["pool"]["resident"]
        )
        return db
