"""Deterministic fault injection and retry for the storage layer.

The paper's testbed assumes a disk that always answers; a production
MPF server cannot.  This module adds the two pieces the robustness
harness needs:

* :class:`FaultInjector` — a seeded, fully deterministic source of
  page-read faults.  A page can fail *transiently* (its first ``k``
  reads raise :class:`~repro.errors.TransientStorageError`, then it
  heals — a flaky sector, a timed-out request) or *permanently*
  (every read raises :class:`~repro.errors.PermanentStorageError` — a
  bad block).  Faults can be targeted at explicit pages/files or drawn
  at a seeded per-page rate, so a failing run is reproducible bit for
  bit.

* :class:`RetryPolicy` / :func:`read_with_retry` — the retry loop the
  runtime wraps around every page read: transient faults are retried
  with capped exponential backoff (simulated — the backoff is charged
  to the :class:`~repro.storage.iostats.IOStats` clock, never slept),
  permanent faults propagate immediately, and a
  :class:`~repro.plans.guard.QueryGuard`'s per-query retry budget caps
  the total retries one query may consume.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import (
    PermanentStorageError,
    StorageError,
    TransientStorageError,
)
from repro.storage.iostats import IOStats
from repro.storage.page import PageId

__all__ = [
    "FaultInjector",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "read_with_retry",
    "InjectedCrash",
    "CrashInjector",
    "CRASH_POINTS",
    "WorkerFaultInjector",
    "WORKER_FAULT_KINDS",
]


class InjectedCrash(BaseException):
    """A simulated process kill from a :class:`CrashInjector`.

    Deliberately *not* an :class:`~repro.errors.MPFError` — not even an
    ``Exception`` — so that no recovery-oblivious ``except MPFError`` /
    ``except Exception`` handler (batch partial-failure, BP
    ``keep_going``, retry loops) can swallow it.  A crash takes the
    whole process, exactly like ``kill -9``; only the top-level test or
    CLI boundary catches it.
    """


# Every registered crash boundary, in rough lifecycle order.  The CI
# crash-recovery job sweeps this tuple, so adding a point here
# automatically adds it to the differential oracle.
CRASH_POINTS = (
    "wal.append",        # mid-record: a torn half-record hits the log
    "wal.flush",         # after the record is durable
    "checkpoint.begin",  # before any checkpoint bytes are written
    "checkpoint.pages",  # while page images are being emitted
    "checkpoint.commit", # tmp file written+synced, before the rename
    "batch.query",       # between queries of a batch
    "workload.step",     # between workload units (VE step / BP message / clique)
)


class CrashInjector:
    """Deterministically aborts execution at a chosen crash boundary.

    ``crash_point`` names one of :data:`CRASH_POINTS`; ``after`` skips
    that many occurrences first, so a crash can land mid-pass (e.g. the
    third checkpoint, the 200th workload step).  The injector fires at
    most once per instance and records per-point hit counts either way,
    which lets tests assert a boundary was actually exercised.
    """

    def __init__(self, crash_point: str | None = None, after: int = 0):
        if crash_point is not None and crash_point not in CRASH_POINTS:
            raise StorageError(
                f"unknown crash point {crash_point!r}; "
                f"registered points: {', '.join(CRASH_POINTS)}"
            )
        if after < 0:
            raise StorageError("crash 'after' count must be >= 0")
        self.crash_point = crash_point
        self.after = after
        self.fired = False
        self.counts: dict[str, int] = {}

    @classmethod
    def seeded(
        cls,
        seed: int,
        points: tuple[str, ...] = CRASH_POINTS,
        max_after: int = 3,
    ) -> "CrashInjector":
        """Pick a reproducible (point, after) pair from a seed."""
        rng = random.Random(seed)
        return cls(rng.choice(list(points)), rng.randrange(max_after))

    def _arm(self, point: str) -> bool:
        if point not in CRASH_POINTS:
            raise StorageError(f"unknown crash point {point!r}")
        seen = self.counts.get(point, 0)
        self.counts[point] = seen + 1
        return (
            not self.fired
            and point == self.crash_point
            and seen >= self.after
        )

    def _fire(self, point: str) -> None:
        self.fired = True
        raise InjectedCrash(
            f"injected crash at {point} (occurrence {self.counts[point]})"
        )

    def reach(self, point: str) -> None:
        """Mark a crash boundary; raises when armed for it."""
        if self._arm(point):
            self._fire(point)

    def reach_torn(self, point: str, torn_write) -> None:
        """Like :meth:`reach`, but run ``torn_write()`` before dying.

        The WAL uses this at ``wal.append``: the callback writes the
        first half of the record, simulating a kill mid-``write(2)`` —
        the torn tail recovery must detect and discard.
        """
        if self._arm(point):
            torn_write()
            self._fire(point)


# Every registered worker-fault kind, in rough severity order.  The CI
# worker-fault sweep iterates this tuple (like CRASH_POINTS), so a new
# kind added here automatically joins the differential oracle.
WORKER_FAULT_KINDS = (
    "crash",   # the worker dies before starting the task
    "hang",    # the worker wedges; only a deadline or a hedge frees the task
    "slow",    # a straggler: the task completes, slow_factor times later
    "lost",    # the task completes but its result envelope is dropped
    "poison",  # a bad worker: this and the next poison_tasks dispatches die
)


class WorkerFaultInjector:
    """Seeded, deterministic source of scheduled-task worker faults.

    The task runtime (:class:`repro.plans.scheduler.TaskRuntime`) asks
    :meth:`draw` before dispatching every attempt of every task.  A
    drawn fault means that attempt never touches shared engine state —
    the worker died, hung, or lost the result *around* the task, whose
    work is pure and replayable — so injected faults can never change
    results or structural counters, only the modeled schedule and the
    ``scheduler.task_*`` fault metrics.

    Faults are targeted (by global task ordinal or by task-label
    substring, like :class:`CrashInjector`'s ``after``) or drawn at a
    seeded per-task rate.  Draws are keyed by the task's *serial
    ordinal*, never by worker identity, so the same faults fire at any
    worker count.

    ``poison`` models one bad worker: the drawn attempt fails, and the
    next ``poison_tasks`` dispatches (any task, any attempt) fail as
    crashes until the modeled health check replaces the worker.
    """

    def __init__(
        self,
        seed: int = 0,
        rate: float = 0.0,
        kinds: tuple[str, ...] = WORKER_FAULT_KINDS,
        slow_factor: float = 4.0,
        poison_tasks: int = 2,
    ):
        if not 0.0 <= rate <= 1.0:
            raise StorageError("worker fault rate must lie in [0, 1]")
        for kind in kinds:
            if kind not in WORKER_FAULT_KINDS:
                raise StorageError(
                    f"unknown worker fault kind {kind!r}; registered "
                    f"kinds: {', '.join(WORKER_FAULT_KINDS)}"
                )
        if slow_factor < 1.0:
            raise StorageError("slow_factor must be >= 1")
        if poison_tasks < 0:
            raise StorageError("poison_tasks must be >= 0")
        self.seed = seed
        self.rate = rate
        self.kinds = tuple(kinds)
        self.slow_factor = slow_factor
        self.poison_tasks = poison_tasks
        self._targeted: dict[int, tuple[str, float]] = {}
        self._label_targets: list[tuple[str, int, str, float]] = []
        self._label_seen: dict[str, int] = {}
        self._poison_left = 0
        self.counts: dict[str, int] = {}
        """Per-kind injected-fault counts — lets tests assert a fault
        actually fired (a targeted site that never runs is a test bug,
        not a pass)."""

    # ------------------------------------------------------------------
    # Targeted faults
    # ------------------------------------------------------------------
    def fail_task(
        self, seq: int, kind: str, attempts: float = 1
    ) -> None:
        """Fault the first ``attempts`` attempts of task ordinal ``seq``.

        ``attempts=math.inf`` makes the task unrecoverable by retrying
        alone (the degradation / :class:`~repro.errors.WorkerError`
        paths); the default faults only the first attempt, so one retry
        heals it.
        """
        self._check_kind(kind)
        if seq < 0:
            raise StorageError("task ordinal must be >= 0")
        self._targeted[seq] = (kind, attempts)

    def fail_label(
        self,
        substring: str,
        kind: str,
        occurrence: int = 0,
        attempts: float = 1,
    ) -> None:
        """Fault the ``occurrence``-th task whose label contains
        ``substring`` — an *injection site* ("the first shuffle", "the
        combine barrier") independent of absolute task numbering."""
        self._check_kind(kind)
        if occurrence < 0:
            raise StorageError("label occurrence must be >= 0")
        self._label_targets.append((substring, occurrence, kind, attempts))

    def _check_kind(self, kind: str) -> None:
        if kind not in WORKER_FAULT_KINDS:
            raise StorageError(
                f"unknown worker fault kind {kind!r}; registered "
                f"kinds: {', '.join(WORKER_FAULT_KINDS)}"
            )

    # ------------------------------------------------------------------
    # The hook the task runtime calls
    # ------------------------------------------------------------------
    def draw(self, seq: int, label: str, attempt: int) -> str | None:
        """The fault (if any) hitting attempt ``attempt`` of task ``seq``.

        Deterministic in ``(seed, seq, attempt)`` plus the targeted
        configuration; label sites resolve on first sight of a task and
        then stick to its ordinal, so retries of a targeted task keep
        drawing against the same site.
        """
        if attempt == 0:
            # Resolve label sites the first time this task is seen.
            for substring, occurrence, kind, attempts in self._label_targets:
                if substring in label:
                    seen = self._label_seen.get(substring, 0)
                    self._label_seen[substring] = seen + 1
                    if seen == occurrence and seq not in self._targeted:
                        self._targeted[seq] = (kind, attempts)
        if self._poison_left > 0:
            self._poison_left -= 1
            return self._record("crash")
        targeted = self._targeted.get(seq)
        if targeted is not None and attempt < targeted[1]:
            return self._record(targeted[0])
        if self.rate > 0.0 and attempt == 0 and self.kinds:
            rng = random.Random(self.seed * 1_000_003 + seq)
            if rng.random() < self.rate:
                return self._record(rng.choice(list(self.kinds)))
        return None

    def _record(self, kind: str) -> str:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if kind == "poison":
            self._poison_left = self.poison_tasks
        return kind


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient page faults.

    ``max_attempts`` bounds reads of one page (first try + retries);
    the ``n``-th retry waits ``min(base_delay * 2**n, max_delay)``
    cost units, charged to the stats clock as simulated wait.
    """

    max_attempts: int = 4
    base_delay: float = 100.0
    max_delay: float = 2000.0

    def delay_for(self, retry_index: int) -> float:
        """Backoff before the ``retry_index``-th retry (0-based)."""
        return min(self.base_delay * (2.0 ** retry_index), self.max_delay)


DEFAULT_RETRY_POLICY = RetryPolicy()


class FaultInjector:
    """Seeded page-read fault source attached to a :class:`BufferPool`.

    Parameters
    ----------
    seed:
        Drives the per-page random draws; two injectors with the same
        seed and rates fault exactly the same pages.
    transient_rate:
        Probability that any given page is transiently faulty.
    permanent_rate:
        Probability that any given page is permanently unreadable.
        A page drawn for both is permanent.
    transient_failures:
        How many times a transiently faulty page fails before healing.
    """

    def __init__(
        self,
        seed: int = 0,
        transient_rate: float = 0.0,
        permanent_rate: float = 0.0,
        transient_failures: int = 1,
    ):
        if not (0.0 <= transient_rate <= 1.0 and 0.0 <= permanent_rate <= 1.0):
            raise StorageError("fault rates must lie in [0, 1]")
        if transient_failures < 1:
            raise StorageError("transient_failures must be >= 1")
        self.seed = seed
        self.transient_rate = transient_rate
        self.permanent_rate = permanent_rate
        self.transient_failures = transient_failures
        self._forced_transient: dict[PageId, int] = {}
        self._forced_permanent_pages: set[PageId] = set()
        self._forced_permanent_files: set[int] = set()
        self._attempts: dict[PageId, int] = {}
        self.transient_injected = 0
        self.permanent_injected = 0

    # ------------------------------------------------------------------
    # Targeted faults
    # ------------------------------------------------------------------
    def fail_page(
        self, page: PageId, permanent: bool = False, times: int | None = None
    ) -> None:
        """Force a fault on one specific page."""
        if permanent:
            self._forced_permanent_pages.add(page)
        else:
            self._forced_transient[page] = (
                self.transient_failures if times is None else times
            )

    def fail_file(self, file_id: int) -> None:
        """Mark every page of a file permanently unreadable."""
        self._forced_permanent_files.add(file_id)

    def heal(self) -> None:
        """Clear all targeted faults and attempt history."""
        self._forced_transient.clear()
        self._forced_permanent_pages.clear()
        self._forced_permanent_files.clear()
        self._attempts.clear()

    # ------------------------------------------------------------------
    # The hook the buffer pool calls
    # ------------------------------------------------------------------
    def _drawn_fault(self, page: PageId) -> str | None:
        """Seeded per-page draw: 'permanent', 'transient', or None."""
        if self.permanent_rate == 0.0 and self.transient_rate == 0.0:
            return None
        mixed = (self.seed * 1_000_003 + page.file_id) * 1_000_003 + page.page_no
        rng = random.Random(mixed)
        roll = rng.random()
        if roll < self.permanent_rate:
            return "permanent"
        if roll < self.permanent_rate + self.transient_rate:
            return "transient"
        return None

    def before_read(self, page: PageId) -> None:
        """Raise the injected fault for this read attempt, if any."""
        if (
            page.file_id in self._forced_permanent_files
            or page in self._forced_permanent_pages
        ):
            self.permanent_injected += 1
            raise PermanentStorageError(
                f"permanent fault injected on page {page}"
            )
        drawn = self._drawn_fault(page)
        if drawn == "permanent":
            self.permanent_injected += 1
            raise PermanentStorageError(
                f"permanent fault injected on page {page}"
            )
        budget = self._forced_transient.get(page)
        if budget is None and drawn == "transient":
            budget = self.transient_failures
        if budget is not None:
            attempts = self._attempts.get(page, 0)
            self._attempts[page] = attempts + 1
            if attempts < budget:
                self.transient_injected += 1
                raise TransientStorageError(
                    f"transient fault injected on page {page} "
                    f"(attempt {attempts + 1}/{budget})"
                )


def read_with_retry(pool, page: PageId, stats: IOStats, guard=None) -> None:
    """Read one page through the pool, retrying transient faults.

    ``guard`` (duck-typed :class:`~repro.plans.guard.QueryGuard`) may
    supply the retry policy and a per-query retry budget; without one,
    :data:`DEFAULT_RETRY_POLICY` applies with no overall budget.
    Backoff is charged to ``stats`` as simulated wait, never slept.
    """
    policy = DEFAULT_RETRY_POLICY
    if guard is not None and guard.retry_policy is not None:
        policy = guard.retry_policy
    attempt = 0
    while True:
        try:
            pool.read(page, stats)
            return
        except TransientStorageError:
            attempt += 1
            if attempt >= policy.max_attempts:
                raise
            if guard is not None and not guard.consume_retry():
                raise
            stats.charge_retry(policy.delay_for(attempt - 1))
