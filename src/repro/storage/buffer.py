"""An LRU buffer pool over simulated pages.

Mirrors the role of the PostgreSQL shared buffer cache in the paper's
testbed: repeated scans of a small relation hit the cache, scans of
relations larger than memory pay IO every time.  Only accounting flows
through here; page payloads are never materialized.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import (
    PermanentStorageError,
    StorageError,
    TransientStorageError,
)
from repro.storage.iostats import IOStats
from repro.storage.page import PageId

__all__ = ["BufferPool", "DEFAULT_POOL_PAGES"]

# Default pool: 64 MB of 8 KB pages, a plausible 2006 shared_buffers.
DEFAULT_POOL_PAGES = 8192


class BufferPool:
    """Fixed-capacity LRU cache of :class:`PageId` entries.

    ``injector`` optionally attaches a
    :class:`~repro.storage.faults.FaultInjector`: every *disk* read of
    a page (a buffer miss) first consults it and may raise a transient
    or permanent storage error.  Buffer hits never fault — a resident
    page needs no IO — which mirrors how a real pool masks flaky disks
    for hot data.
    """

    def __init__(
        self,
        capacity_pages: int = DEFAULT_POOL_PAGES,
        injector=None,
        metrics=None,
        wal=None,
    ):
        if capacity_pages <= 0:
            raise StorageError("buffer pool capacity must be positive")
        self.capacity_pages = capacity_pages
        self.injector = injector
        self.metrics = metrics
        """Optional :class:`~repro.obs.metrics.MetricsRegistry`; the
        pool publishes ``bufferpool.*`` and ``faults.*`` counters into
        it (the hit rate is ``hits / (hits + reads)``)."""
        self.wal = wal
        """Optional :class:`~repro.storage.wal.WriteAheadLog`; every
        page write is logged before it is considered durable."""
        self._pages: OrderedDict[PageId, None] = OrderedDict()

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc()

    def __len__(self) -> int:
        return len(self._pages)

    def __bool__(self) -> bool:
        # Without this, an *empty* pool is falsy through __len__ and
        # `pool or BufferPool()` silently discards a caller's pool.
        return True

    def __contains__(self, page: PageId) -> bool:
        return page in self._pages

    def read(self, page: PageId, stats: IOStats) -> None:
        """Access a page: buffer hit if resident, disk read otherwise."""
        if page in self._pages:
            self._pages.move_to_end(page)
            stats.charge_hit()
            self._count("bufferpool.hits")
            return
        if self.injector is not None:
            try:
                self.injector.before_read(page)
            except TransientStorageError:
                self._count("faults.transient")
                raise
            except PermanentStorageError:
                self._count("faults.permanent")
                raise
        stats.charge_read()
        self._count("bufferpool.reads")
        self._admit(page)

    def write(self, page: PageId, stats: IOStats) -> None:
        """Write a freshly produced page (spill / materialization)."""
        stats.charge_write()
        self._count("bufferpool.writes")
        if self.wal is not None:
            self.wal.log_page(page)
        self._admit(page)

    def resident_pages(self) -> list[PageId]:
        """Resident page ids in LRU → MRU order (for checkpoints)."""
        return list(self._pages)

    def warm(self, pages) -> None:
        """Re-admit pages without charging stats (checkpoint restore)."""
        for page in pages:
            self._admit(page)

    def invalidate_file(self, file_id: int) -> None:
        """Drop all pages of a file (e.g. a temp file being freed)."""
        stale = [p for p in self._pages if p.file_id == file_id]
        for p in stale:
            del self._pages[p]

    def clear(self) -> None:
        self._pages.clear()

    def _admit(self, page: PageId) -> None:
        self._pages[page] = None
        self._pages.move_to_end(page)
        while len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)
