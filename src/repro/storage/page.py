"""Page geometry for the simulated storage layer.

Relations are laid out as fixed-size slotted pages of packed tuples:
one ``int64`` per variable plus one 8-byte measure.  We never copy row
data into page objects — execution stays columnar and vectorized — but
every physical operator accounts for the pages it would have touched,
which is what the cost experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import StorageError

__all__ = ["PageGeometry", "DEFAULT_PAGE_SIZE", "PageId"]

DEFAULT_PAGE_SIZE = 8192
_FIELD_BYTES = 8
_PAGE_HEADER_BYTES = 24


@dataclass(frozen=True)
class PageId:
    """Identifies one page of one file in the buffer pool."""

    file_id: int
    page_no: int


@dataclass(frozen=True)
class PageGeometry:
    """Tuple/page math for a relation of a given arity."""

    arity: int
    page_size: int = DEFAULT_PAGE_SIZE

    def __post_init__(self):
        if self.page_size <= _PAGE_HEADER_BYTES + _FIELD_BYTES:
            raise StorageError(f"page size {self.page_size} too small")
        if self.arity < 0:
            raise StorageError("negative arity")

    @property
    def tuple_bytes(self) -> int:
        """Packed width: variables + measure."""
        return _FIELD_BYTES * (self.arity + 1)

    @property
    def tuples_per_page(self) -> int:
        usable = self.page_size - _PAGE_HEADER_BYTES
        return max(1, usable // self.tuple_bytes)

    def pages_for(self, ntuples: int) -> int:
        """Pages needed for ``ntuples`` rows (at least one)."""
        if ntuples <= 0:
            return 1
        return -(-ntuples // self.tuples_per_page)
