"""Page geometry for the simulated storage layer.

Relations are laid out as fixed-size slotted pages of packed tuples:
one ``int64`` per variable plus one 8-byte measure.  We never copy row
data into page objects — execution stays columnar and vectorized — but
every physical operator accounts for the pages it would have touched,
which is what the cost experiments measure.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.errors import RecoveryError, StorageError

__all__ = [
    "PageGeometry",
    "DEFAULT_PAGE_SIZE",
    "PageId",
    "PageImage",
    "page_crc",
]

DEFAULT_PAGE_SIZE = 8192
_FIELD_BYTES = 8
_PAGE_HEADER_BYTES = 24

# Durable page-image header: file_id, page_no, payload length, CRC32.
_IMAGE_HEADER = struct.Struct("<qqII")


def page_crc(payload: bytes) -> int:
    """CRC32 of a page payload as an unsigned 32-bit value."""
    return zlib.crc32(payload) & 0xFFFFFFFF


@dataclass(frozen=True)
class PageId:
    """Identifies one page of one file in the buffer pool."""

    file_id: int
    page_no: int


@dataclass(frozen=True)
class PageImage:
    """A checksummed byte image of one page, as checkpoints persist it.

    Unlike the accounting-only pages of the execution path, checkpoint
    files carry real payload bytes (slices of a relation's packed
    columns).  Every image is framed with its :class:`PageId`, payload
    length, and CRC32 so a torn or bit-flipped write is detected on
    reload instead of silently corrupting recovered state.
    """

    page: PageId
    payload: bytes

    def encode(self) -> bytes:
        header = _IMAGE_HEADER.pack(
            self.page.file_id,
            self.page.page_no,
            len(self.payload),
            page_crc(self.payload),
        )
        return header + self.payload

    @classmethod
    def decode(cls, buf: bytes, offset: int = 0) -> tuple["PageImage", int]:
        """Decode one image at ``offset``; returns (image, next offset).

        Raises :class:`~repro.errors.RecoveryError` on a truncated
        header, a truncated (torn) payload, or a CRC mismatch.
        """
        end = offset + _IMAGE_HEADER.size
        if end > len(buf):
            raise RecoveryError(
                f"torn page image: header truncated at offset {offset}"
            )
        file_id, page_no, length, crc = _IMAGE_HEADER.unpack_from(buf, offset)
        payload = bytes(buf[end:end + length])
        if len(payload) != length:
            raise RecoveryError(
                f"torn page image for file {file_id} page {page_no}: "
                f"{len(payload)} of {length} payload bytes present"
            )
        if page_crc(payload) != crc:
            raise RecoveryError(
                f"checksum mismatch on file {file_id} page {page_no}"
            )
        return cls(PageId(file_id, page_no), payload), end + length


@dataclass(frozen=True)
class PageGeometry:
    """Tuple/page math for a relation of a given arity."""

    arity: int
    page_size: int = DEFAULT_PAGE_SIZE

    def __post_init__(self):
        if self.page_size <= _PAGE_HEADER_BYTES + _FIELD_BYTES:
            raise StorageError(f"page size {self.page_size} too small")
        if self.arity < 0:
            raise StorageError("negative arity")

    @property
    def tuple_bytes(self) -> int:
        """Packed width: variables + measure."""
        return _FIELD_BYTES * (self.arity + 1)

    @property
    def tuples_per_page(self) -> int:
        usable = self.page_size - _PAGE_HEADER_BYTES
        return max(1, usable // self.tuple_bytes)

    def pages_for(self, ntuples: int) -> int:
        """Pages needed for ``ntuples`` rows (at least one)."""
        if ntuples <= 0:
            return 1
        return -(-ntuples // self.tuples_per_page)
