"""Simulated paged storage: the disk-resident substrate of the paper."""

from repro.storage.buffer import DEFAULT_POOL_PAGES, BufferPool
from repro.storage.faults import (
    DEFAULT_RETRY_POLICY,
    FaultInjector,
    RetryPolicy,
    read_with_retry,
)
from repro.storage.heapfile import HeapFile, TempFileAllocator
from repro.storage.iostats import IOStats
from repro.storage.page import DEFAULT_PAGE_SIZE, PageGeometry, PageId

__all__ = [
    "BufferPool",
    "DEFAULT_POOL_PAGES",
    "HeapFile",
    "TempFileAllocator",
    "IOStats",
    "PageGeometry",
    "PageId",
    "DEFAULT_PAGE_SIZE",
    "FaultInjector",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "read_with_retry",
]
