"""Simulated paged storage: the disk-resident substrate of the paper."""

from repro.storage.buffer import DEFAULT_POOL_PAGES, BufferPool
from repro.storage.checkpoint import CheckpointData, CheckpointManager
from repro.storage.faults import (
    CRASH_POINTS,
    DEFAULT_RETRY_POLICY,
    WORKER_FAULT_KINDS,
    CrashInjector,
    FaultInjector,
    InjectedCrash,
    RetryPolicy,
    WorkerFaultInjector,
    read_with_retry,
)
from repro.storage.heapfile import HeapFile, TempFileAllocator
from repro.storage.iostats import IOStats
from repro.storage.journal import (
    StepJournal,
    decode_unit,
    encode_unit,
    reconstruct_error,
)
from repro.storage.page import (
    DEFAULT_PAGE_SIZE,
    PageGeometry,
    PageId,
    PageImage,
    page_crc,
)
from repro.storage.partition import (
    PartitionSpec,
    concat_relations,
    partition_relation,
    shard_assignments,
)
from repro.storage.recovery import RecoveredState, RecoveryManager
from repro.storage.wal import (
    ReplayResult,
    WALRecord,
    WriteAheadLog,
    replay_wal,
    wal_path,
)

__all__ = [
    "BufferPool",
    "DEFAULT_POOL_PAGES",
    "HeapFile",
    "TempFileAllocator",
    "IOStats",
    "PageGeometry",
    "PageId",
    "PageImage",
    "page_crc",
    "DEFAULT_PAGE_SIZE",
    "FaultInjector",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "read_with_retry",
    "InjectedCrash",
    "CrashInjector",
    "CRASH_POINTS",
    "WorkerFaultInjector",
    "WORKER_FAULT_KINDS",
    "WriteAheadLog",
    "WALRecord",
    "ReplayResult",
    "replay_wal",
    "wal_path",
    "CheckpointManager",
    "CheckpointData",
    "RecoveryManager",
    "RecoveredState",
    "StepJournal",
    "encode_unit",
    "decode_unit",
    "reconstruct_error",
    "PartitionSpec",
    "partition_relation",
    "shard_assignments",
    "concat_relations",
]
