"""Heap files: the on-"disk" representation of functional relations.

A :class:`HeapFile` records the page layout of one relation and knows
how to charge a sequential scan or a bulk write through the buffer
pool.  Base relations get heap files from the catalog; executors create
temporary heap files for intermediates that exceed the in-memory
workspace.
"""

from __future__ import annotations

import itertools

from repro.data.relation import FunctionalRelation
from repro.storage.buffer import BufferPool
from repro.storage.faults import read_with_retry
from repro.storage.iostats import IOStats
from repro.storage.page import DEFAULT_PAGE_SIZE, PageGeometry, PageId

__all__ = ["HeapFile", "TempFileAllocator", "GUARD_CHECK_INTERVAL_PAGES"]

# A scan re-checks its QueryGuard every this many pages — the "row
# batch" granularity of cooperative cancellation and deadlines.
GUARD_CHECK_INTERVAL_PAGES = 64


class HeapFile:
    """Page-level accounting view of a stored relation."""

    def __init__(
        self,
        file_id: int,
        ntuples: int,
        arity: int,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        self.file_id = file_id
        self.ntuples = ntuples
        self.geometry = PageGeometry(arity, page_size)
        self.n_pages = self.geometry.pages_for(ntuples)

    @classmethod
    def for_relation(
        cls,
        file_id: int,
        relation: FunctionalRelation,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> "HeapFile":
        return cls(file_id, relation.ntuples, relation.arity, page_size)

    def scan(
        self, pool: BufferPool, stats: IOStats, guard=None
    ) -> None:
        """Charge a full sequential scan.

        Transient page faults (see :mod:`repro.storage.faults`) are
        retried with backoff; ``guard`` supplies the retry budget and
        is re-checked every :data:`GUARD_CHECK_INTERVAL_PAGES` pages so
        deadline / cancellation fire mid-scan, not only between
        operators.
        """
        for page_no in range(self.n_pages):
            if guard is not None and page_no % GUARD_CHECK_INTERVAL_PAGES == 0:
                guard.check(stats)
            read_with_retry(
                pool, PageId(self.file_id, page_no), stats, guard=guard
            )
        stats.charge_cpu(self.ntuples)

    def write_out(self, pool: BufferPool, stats: IOStats, guard=None) -> None:
        """Charge a bulk write of the whole file."""
        for page_no in range(self.n_pages):
            if guard is not None and page_no % GUARD_CHECK_INTERVAL_PAGES == 0:
                guard.check(stats)
            pool.write(PageId(self.file_id, page_no), stats)
        stats.charge_cpu(self.ntuples)

    def drop(self, pool: BufferPool) -> None:
        pool.invalidate_file(self.file_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HeapFile(id={self.file_id}, tuples={self.ntuples}, "
            f"pages={self.n_pages})"
        )


class TempFileAllocator:
    """Hands out unique negative file ids for temporary spills."""

    def __init__(self):
        self._counter = itertools.count(1)

    def allocate(
        self,
        ntuples: int,
        arity: int,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> HeapFile:
        return HeapFile(-next(self._counter), ntuples, arity, page_size)
