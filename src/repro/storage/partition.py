"""Hash partitioning of functional relations over a domain attribute.

A partitioned table is stored as ``shards`` co-located heap files, one
per hash bucket of a chosen *partitioning key* (one of the relation's
variables).  The shard of a row depends only on the key's int64 domain
code — never on worker counts, insertion order, or process state — so
the decomposition is a pure function of ``(data, key, shards)``.  That
invariant is what makes parallel execution deterministic: results and
merged counters are byte-identical for any number of workers, because
the work units themselves never change.

The bucket function is Fibonacci (multiplicative) hashing over the
code, not Python's randomized ``hash()``: it is stable across runs,
processes, and interpreter versions, and it is vectorized over whole
columns.

Sharding composes through the algebra:

* a selection applied per shard preserves the spec (surviving rows
  keep their key codes, hence their buckets);
* a join whose inputs are both partitioned on a shared variable with
  equal shard counts is *co-partitioned* — matching rows live in
  matching shards, so the join runs shard-wise;
* an aggregation that keeps the partitioning key in its group list is
  complete per shard; one that drops it produces per-shard *partial*
  aggregates which a final semiring-``plus`` merge combines.

Misaligned inputs are re-partitioned explicitly (a shuffle), which the
runtime charges to the cost clock like any other materialization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.relation import FunctionalRelation
from repro.errors import CatalogError

__all__ = [
    "PartitionSpec",
    "shard_assignments",
    "partition_relation",
    "concat_relations",
]

# Fixed 64-bit multiplicative-hash constant (2^64 / golden ratio).
_HASH_MULTIPLIER = np.uint64(11400714819323198485)
_HASH_SHIFT = np.uint64(33)


@dataclass(frozen=True)
class PartitionSpec:
    """How one table is decomposed: hash(``key``) into ``shards`` buckets."""

    key: str
    shards: int

    def __post_init__(self):
        if self.shards < 2:
            raise CatalogError(
                f"a partitioning needs at least 2 shards, got {self.shards}"
            )

    def __str__(self) -> str:
        return f"hash({self.key}) % {self.shards}"


def shard_assignments(codes: np.ndarray, shards: int) -> np.ndarray:
    """Deterministic shard number per row from the key's domain codes."""
    hashed = (codes.astype(np.uint64) * _HASH_MULTIPLIER) >> _HASH_SHIFT
    return (hashed % np.uint64(shards)).astype(np.int64)


def partition_relation(
    relation: FunctionalRelation, key: str, shards: int
) -> list[FunctionalRelation]:
    """Split ``relation`` into ``shards`` row-disjoint shard relations.

    Rows keep their original relative order within a shard, so the
    decomposition is stable: partitioning the same relation twice
    yields identical shard relations.
    """
    if key not in relation.columns:
        raise CatalogError(
            f"partitioning key {key!r} is not a variable of "
            f"{relation.name or '<anonymous>'!r} (has {list(relation.var_names)})"
        )
    assignment = shard_assignments(relation.columns[key], shards)
    return [
        relation.take(np.flatnonzero(assignment == shard))
        for shard in range(shards)
    ]


def concat_relations(
    parts: list[FunctionalRelation],
    name: str | None = None,
) -> FunctionalRelation:
    """Stack shard relations back into one relation (shard order).

    Shards of one table are row-disjoint by construction, so the FD
    check is skipped; callers concatenating *partial aggregates* (which
    may repeat group keys across shards) must re-aggregate the result
    before treating it as a functional relation.
    """
    if not parts:
        raise CatalogError("concat_relations needs at least one part")
    first = parts[0]
    if len(parts) == 1:
        return first if name is None else first.with_name(name)
    for part in parts[1:]:
        if part.var_names != first.var_names:
            raise CatalogError(
                f"cannot concatenate shards with differing variables: "
                f"{part.var_names} vs {first.var_names}"
            )
    return FunctionalRelation(
        first.variables,
        {
            n: np.concatenate([p.columns[n] for p in parts])
            for n in first.var_names
        },
        np.concatenate([p.measure for p in parts]),
        name=name if name is not None else first.name,
        measure_name=first.measure_name,
        check_fd=False,
    )
