"""Durable unit records and the step journal for resumable work.

A **unit** is one resumable piece of work — a batch query, a VE-cache
elimination step, a BP message, a junction-tree clique.  When a unit
completes, a JSON record of its outputs and its metrics *delta* (the
counters the unit itself incremented, captured with the snapshot
algebra) is appended to the WAL.  After a crash, recovery hands the
decoded records back; re-running the same workload **skips** every
recorded unit — rebinding its output tables and merging its metric
delta instead of recomputing — so the structural counters
(``vecache.steps``, ``bp.messages``, ``queries.total``, ...) end up
identical to an uninterrupted run: each unit is counted exactly once,
either live or via its merged delta.

Journal bookkeeping (``checkpoint.steps_recorded`` /
``checkpoint.steps_skipped``) is deliberately counted *outside* the
delta window: it describes the journaling itself, not the unit's work.
"""

from __future__ import annotations

import json

from repro.errors import MPFError
from repro.storage.wal import WAL_STEP

__all__ = [
    "StepJournal",
    "encode_unit",
    "decode_unit",
    "reconstruct_error",
]


def encode_unit(
    key: str,
    status: str,
    tables=None,
    result=None,
    error=None,
    delta=None,
) -> str:
    """JSON text for one completed unit (deterministic key order)."""
    from repro.data.serialize import relation_to_dict

    return json.dumps(
        {
            "key": key,
            "status": status,
            "tables": (
                {name: relation_to_dict(rel) for name, rel in tables.items()}
                if tables is not None
                else None
            ),
            "result": relation_to_dict(result) if result is not None else None,
            "error": (
                {"type": type(error).__name__, "message": str(error)}
                if error is not None
                else None
            ),
            "delta": delta,
        },
        sort_keys=True,
    )


def decode_unit(text: str) -> dict:
    return json.loads(text)


def reconstruct_error(entry: dict) -> MPFError:
    """Rebuild a recorded error as its original exception class.

    Unknown or non-MPFError types fall back to :class:`MPFError` — the
    record stays usable even if the hierarchy evolved since it was
    written.
    """
    import repro.errors as errors_module

    cls = getattr(errors_module, entry["type"], None)
    if not (isinstance(cls, type) and issubclass(cls, MPFError)):
        cls = MPFError
    return cls(entry["message"])


class StepJournal:
    """Skips recorded workload units and records fresh ones.

    Parameters
    ----------
    wal:
        The :class:`~repro.storage.wal.WriteAheadLog` completed units
        are appended to (``None`` disables recording — every unit just
        executes).
    recovered:
        ``key -> decoded unit record`` mapping from recovery; units
        found here are skipped.
    checkpointer / checkpoint_db / checkpoint_every:
        When all are set, a full database checkpoint is taken after
        every ``checkpoint_every`` freshly executed units, so the
        ``checkpoint.*`` crash points fire inside long workloads too.
    """

    def __init__(
        self,
        wal=None,
        recovered=None,
        checkpointer=None,
        checkpoint_db=None,
        checkpoint_every: int = 0,
    ):
        self.wal = wal
        self.recovered: dict[str, dict] = dict(recovered or {})
        self.checkpointer = checkpointer
        self.checkpoint_db = checkpoint_db
        self.checkpoint_every = checkpoint_every
        self.skipped = 0
        self.recorded = 0
        self._completed = 0

    def run(self, key: str, ctx, compute) -> dict:
        """Execute (or skip) one unit; returns its produced tables.

        ``compute`` is a zero-argument closure that performs the unit's
        work — including its own structural counter increments — and
        returns a ``name -> relation`` dict of produced tables.  On a
        skip, those tables are rebound into ``ctx`` from the record and
        the recorded metrics delta is merged into the live registry.
        """
        crash = getattr(self.wal, "crash", None)
        if crash is not None:
            crash.reach("workload.step")

        record = self.recovered.get(key)
        if record is not None:
            if record["status"] == "error":
                raise reconstruct_error(record["error"])
            from repro.data.serialize import relation_from_dict

            tables = {
                name: relation_from_dict(entry)
                for name, entry in (record["tables"] or {}).items()
            }
            for name, relation in tables.items():
                ctx.bind(name, relation.with_name(name))
            # The record's metric delta is NOT merged here: recovery
            # already folded every post-checkpoint unit delta into the
            # restored registry (pre-checkpoint deltas live inside the
            # checkpoint's snapshot), and a same-process skip was
            # counted live.  Merging again would double-count.
            self.skipped += 1
            ctx.count("checkpoint.steps_skipped", unit="step")
            return tables

        registry = ctx.metrics
        before = registry.snapshot() if registry is not None else None
        tables = compute()
        delta = (
            registry.snapshot().diff(before).to_dict()
            if registry is not None
            else None
        )
        if self.wal is not None:
            self.wal.log_unit(
                WAL_STEP, encode_unit(key, "ok", tables=tables, delta=delta)
            )
        self.recorded += 1
        ctx.count("checkpoint.steps_recorded")
        self._completed += 1
        if (
            self.checkpointer is not None
            and self.checkpoint_db is not None
            and self.checkpoint_every
            and self._completed % self.checkpoint_every == 0
        ):
            self.checkpointer.checkpoint(self.checkpoint_db, context=ctx)
        return tables
