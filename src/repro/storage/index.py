"""Hash indexes on base functional relations.

Section 5 motivates cost-based physical choice: "there are multiple
algorithms to implement join (multiplication) and aggregation
(summation), and the choice of algorithm is based on the cost of
accessing disk-resident operands", and Section 5.4 notes that "in the
presence of indices and alternative access methods, contiguous joins
are not necessarily optimal".  A :class:`HashIndex` provides the
equality access path: probing it for one key costs a bucket page plus
the pages holding the matching tuples, instead of a full scan.

Like the rest of the storage layer, indexes are accounting objects —
lookups return row positions computed from the in-memory columns while
charging the page IO a disk-resident hash index would incur.
"""

from __future__ import annotations

import numpy as np

from repro.data.relation import FunctionalRelation
from repro.errors import StorageError
from repro.storage.buffer import BufferPool
from repro.storage.iostats import IOStats
from repro.storage.page import DEFAULT_PAGE_SIZE, PageGeometry, PageId

__all__ = ["HashIndex"]

# Index entries are (key, row-pointer) pairs: 16 bytes.
_ENTRY_BYTES = 16
_BUCKET_HEADER = 24


class HashIndex:
    """Equality index on one variable of a stored relation."""

    def __init__(
        self,
        file_id: int,
        relation: FunctionalRelation,
        variable: str,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        if variable not in relation.variables:
            raise StorageError(
                f"cannot index {variable!r}: relation has "
                f"{relation.var_names}"
            )
        self.file_id = file_id
        self.variable = variable
        self.page_size = page_size
        self._heap_geometry = PageGeometry(relation.arity, page_size)

        column = relation.columns[variable]
        order = np.argsort(column, kind="stable")
        self._sorted_keys = column[order]
        self._order = order
        self.ntuples = relation.ntuples
        self.n_keys = int(len(np.unique(column))) if relation.ntuples else 0

        entries_per_page = max(
            1, (page_size - _BUCKET_HEADER) // _ENTRY_BYTES
        )
        self.n_pages = max(1, -(-relation.ntuples // entries_per_page))

    # ------------------------------------------------------------------
    def lookup(
        self, code: int, pool: BufferPool, stats: IOStats, guard=None
    ) -> np.ndarray:
        """Row positions with ``variable == code``; charges index IO.

        One bucket-page access plus one heap-page access per distinct
        page holding a matching row (clustered-pessimistic: each match
        may live on its own page, capped by the file size).  Page reads
        retry transient injected faults under the guard's budget.
        """
        from repro.storage.faults import read_with_retry

        lo = int(np.searchsorted(self._sorted_keys, code, side="left"))
        hi = int(np.searchsorted(self._sorted_keys, code, side="right"))
        rows = self._order[lo:hi]
        bucket = hash(int(code)) % self.n_pages
        if guard is not None:
            guard.check(stats)
        read_with_retry(pool, PageId(self.file_id, bucket), stats, guard=guard)
        heap_pages = min(
            len(rows), self._heap_geometry.pages_for(max(len(rows), 1))
        )
        # Heap pages are fetched through the pool against the *index's*
        # shadow file id offset so repeated probes of the same key hit.
        for i in range(heap_pages):
            read_with_retry(
                pool,
                PageId(self.file_id, self.n_pages + bucket * 131 + i),
                stats,
                guard=guard,
            )
        stats.charge_cpu(len(rows))
        return rows

    def estimated_probe_pages(self, matches_per_key: float) -> float:
        """Cost-model view: bucket page + heap pages per probe."""
        return 1.0 + min(
            matches_per_key,
            float(self._heap_geometry.pages_for(int(max(matches_per_key, 1)))),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"HashIndex(file={self.file_id}, var={self.variable!r}, "
            f"keys={self.n_keys})"
        )
