"""Write-ahead log for the simulated storage layer.

Every durable event — a page write passing through the
:class:`~repro.storage.buffer.BufferPool`, a completed batch query, a
completed workload unit, a committed checkpoint — is appended to a
single log file as a framed, checksummed record:

``magic (1B) | kind (1B) | length (4B) | crc32 (4B) | payload``

The LSN of a record is its byte offset in the file.  Replay walks the
file front to back verifying magic and CRC; the first invalid record
ends the scan and everything after it is discarded as a **torn tail**
— the expected residue of a crash mid-append, not an error.  A missing
or zero-length WAL replays to zero records.

Crash boundaries: an attached :class:`~repro.storage.faults.CrashInjector`
is consulted at ``wal.append`` (fires *mid-write*, leaving a torn
half-record on disk) and ``wal.flush`` (fires after the record is
fully durable) so the differential recovery oracle can exercise both
sides of the durability line.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.page import PageId

__all__ = [
    "WriteAheadLog",
    "WALRecord",
    "ReplayResult",
    "replay_wal",
    "wal_path",
    "WAL_PAGE",
    "WAL_CHECKPOINT",
    "WAL_QUERY",
    "WAL_STEP",
]

WAL_MAGIC = 0xA5
WAL_PAGE = 1        # payload: <qq> file_id, page_no (accounting image)
WAL_CHECKPOINT = 2  # payload: utf-8 checkpoint file name
WAL_QUERY = 3       # payload: utf-8 JSON unit record (see storage.journal)
WAL_STEP = 4        # payload: utf-8 JSON unit record (see storage.journal)

_KINDS = frozenset({WAL_PAGE, WAL_CHECKPOINT, WAL_QUERY, WAL_STEP})
_HEADER = struct.Struct("<BBII")
_PAGE_PAYLOAD = struct.Struct("<qq")


def wal_path(directory: str) -> str:
    """Canonical WAL location inside a checkpoint directory."""
    return os.path.join(directory, "wal.log")


@dataclass(frozen=True)
class WALRecord:
    """One decoded log record: its kind, payload, and byte-offset LSN."""

    lsn: int
    kind: int
    payload: bytes

    def page_id(self) -> PageId:
        """Decode a :data:`WAL_PAGE` payload."""
        if self.kind != WAL_PAGE:
            raise StorageError(f"record kind {self.kind} carries no page id")
        file_id, page_no = _PAGE_PAYLOAD.unpack(self.payload)
        return PageId(file_id, page_no)

    def text(self) -> str:
        """Decode a text payload (checkpoint name / unit JSON)."""
        return self.payload.decode("utf-8")


def encode_record(kind: int, payload: bytes) -> bytes:
    if kind not in _KINDS:
        raise StorageError(f"unknown WAL record kind {kind}")
    header = _HEADER.pack(
        WAL_MAGIC, kind, len(payload), zlib.crc32(payload) & 0xFFFFFFFF
    )
    return header + payload


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of a WAL scan: the valid prefix plus tail diagnostics."""

    records: tuple[WALRecord, ...]
    valid_bytes: int
    torn_tail: bool

    def of_kind(self, kind: int) -> tuple[WALRecord, ...]:
        return tuple(r for r in self.records if r.kind == kind)


def replay_wal(path: str) -> ReplayResult:
    """Scan a WAL file, returning every record before the first tear.

    Never raises on damage: a truncated header, truncated payload, bad
    magic, unknown kind, or CRC mismatch all terminate the scan and
    mark ``torn_tail`` (the crash-mid-append signature).  A missing or
    empty file yields zero records with no tear.
    """
    try:
        with open(path, "rb") as fh:
            buf = fh.read()
    except FileNotFoundError:
        return ReplayResult((), 0, False)

    records: list[WALRecord] = []
    offset = 0
    torn = False
    while offset < len(buf):
        end = offset + _HEADER.size
        if end > len(buf):
            torn = True
            break
        magic, kind, length, crc = _HEADER.unpack_from(buf, offset)
        if magic != WAL_MAGIC or kind not in _KINDS:
            torn = True
            break
        payload = bytes(buf[end:end + length])
        if len(payload) != length:
            torn = True
            break
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            torn = True
            break
        records.append(WALRecord(offset, kind, payload))
        offset = end + length
    return ReplayResult(tuple(records), offset, torn)


class WriteAheadLog:
    """Append-only log with CRC framing and crash-point hooks.

    Parameters
    ----------
    path:
        Log file location (created on first append).
    crash:
        Optional :class:`~repro.storage.faults.CrashInjector` consulted
        at the ``wal.append`` / ``wal.flush`` boundaries.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; appends
        land on ``wal.appends`` / ``wal.bytes``.
    """

    def __init__(self, path: str, crash=None, metrics=None):
        self.path = path
        self.crash = crash
        self.metrics = metrics
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh = open(path, "ab")
        # ``tell()`` on an append-mode handle is 0 on some platforms
        # until the first write; seek to the end to fix the start LSN.
        self._fh.seek(0, os.SEEK_END)

    @property
    def position(self) -> int:
        """Current end-of-log byte offset (the next record's LSN)."""
        return self._fh.tell()

    def append(self, kind: int, payload: bytes) -> int:
        """Append one record and flush; returns its LSN.

        With a crash injector armed at ``wal.append``, the first half
        of the record is written before dying — the torn tail replay
        must discard.  ``wal.flush`` fires after the record is durable.
        """
        record = encode_record(kind, payload)
        lsn = self.position
        if self.crash is not None:
            def torn_write():
                self._fh.write(record[: max(1, len(record) // 2)])
                self._fh.flush()
            self.crash.reach_torn("wal.append", torn_write)
        self._fh.write(record)
        self._fh.flush()
        if self.metrics is not None:
            self.metrics.counter("wal.appends").inc()
            self.metrics.counter("wal.bytes").inc(len(record))
        if self.crash is not None:
            self.crash.reach("wal.flush")
        return lsn

    def log_page(self, page: PageId) -> int:
        """Record a page write from the buffer pool."""
        return self.append(WAL_PAGE, _PAGE_PAYLOAD.pack(page.file_id, page.page_no))

    def log_checkpoint(self, checkpoint_name: str) -> int:
        """Record a committed checkpoint by file name."""
        return self.append(WAL_CHECKPOINT, checkpoint_name.encode("utf-8"))

    def log_unit(self, kind: int, text: str) -> int:
        """Record a completed query / workload unit (JSON text)."""
        if kind not in (WAL_QUERY, WAL_STEP):
            raise StorageError(f"unit records must be QUERY or STEP, got {kind}")
        return self.append(kind, text.encode("utf-8"))

    def replay(self) -> ReplayResult:
        """Replay this log's file (flushing pending writes first)."""
        self._fh.flush()
        return replay_wal(self.path)

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
