"""Random Bayesian network generation for property tests.

Networks are drawn over a random DAG (topological order fixed up
front, edges sampled backward with a parent cap) with Dirichlet CPTs.
Deterministic under a seed so failures reproduce.
"""

from __future__ import annotations

import numpy as np

from repro.bayes.cpd import CPD
from repro.bayes.network import BayesianNetwork
from repro.data.domain import var

__all__ = ["random_network"]


def random_network(
    n_variables: int = 5,
    max_parents: int = 2,
    max_domain: int = 3,
    seed: int = 0,
    edge_probability: float = 0.5,
) -> BayesianNetwork:
    """A random BN with at most ``max_parents`` parents per node."""
    rng = np.random.default_rng(seed)
    sizes = rng.integers(2, max_domain + 1, size=n_variables)
    variables = [var(f"V{i}", int(sizes[i])) for i in range(n_variables)]
    cpds = []
    for i, v in enumerate(variables):
        candidates = list(range(i))
        rng.shuffle(candidates)
        parents = []
        for j in candidates:
            if len(parents) >= max_parents:
                break
            if rng.random() < edge_probability:
                parents.append(variables[j])
        cpds.append(CPD.random(v, tuple(parents), rng))
    return BayesianNetwork(cpds)
