"""Bayesian networks and MPF-backed probabilistic inference (Section 4)."""

from repro.bayes.cpd import CPD
from repro.bayes.estimation import (
    counts,
    estimate_cpd,
    estimate_network,
    samples_to_relation,
)
from repro.bayes.examples import (
    asia_network,
    chain_network,
    figure2_network,
    naive_bayes_network,
    sprinkler_network,
)
from repro.bayes.inference import BruteForceInference, MPFInference, normalize
from repro.bayes.network import BayesianNetwork
from repro.bayes.structure import (
    StructureResult,
    bic_score,
    family_bic,
    greedy_hill_climb,
)
from repro.bayes.random_nets import random_network

__all__ = [
    "CPD",
    "BayesianNetwork",
    "MPFInference",
    "BruteForceInference",
    "normalize",
    "figure2_network",
    "sprinkler_network",
    "chain_network",
    "naive_bayes_network",
    "asia_network",
    "random_network",
    "samples_to_relation",
    "counts",
    "estimate_cpd",
    "estimate_network",
    "bic_score",
    "family_bic",
    "greedy_hill_climb",
    "StructureResult",
]
