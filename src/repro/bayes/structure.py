"""Structure learning over MPF count queries (Section 4).

The paper notes that the conditional-independence structure "may be
given by domain knowledge, or estimated from data", with the required
counts computable in the MPF setting.  This module supplies the
estimation path: a BIC score whose sufficient statistics are counting
MPF queries over the data relation, and a greedy hill-climbing search
over DAGs (add / remove / reverse one edge per step).

This is classic Heckerman-tutorial machinery, included because it
closes the paper's Section 4 loop end-to-end inside the MPF framework:
data → counts (counting semiring) → scores → structure → CPTs →
inference (sum-product semiring).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from repro.bayes.estimation import counts, estimate_cpd
from repro.bayes.network import BayesianNetwork
from repro.data.domain import Variable
from repro.data.relation import FunctionalRelation
from repro.errors import SchemaError

__all__ = ["family_bic", "bic_score", "greedy_hill_climb", "StructureResult"]


def family_bic(
    data: FunctionalRelation,
    variable: Variable,
    parents: Sequence[Variable],
    n_samples: float,
) -> float:
    """BIC contribution of one family ``P(variable | parents)``.

    ``Σ N_ijk · log(N_ijk / N_ij) − (log N / 2) · q_i (r_i − 1)``
    with the counts obtained by MPF queries over the data relation.
    """
    scope = [p.name for p in parents] + [variable.name]
    family = counts(data, scope)
    if parents:
        parent_counts = counts(data, [p.name for p in parents])
        parent_lookup = {
            row[:-1]: float(row[-1]) for row in parent_counts.iter_rows()
        }
    else:
        parent_lookup = {(): float(family.measure.sum())}

    loglik = 0.0
    for row in family.iter_rows():
        n_ijk = float(row[-1])
        if n_ijk <= 0:
            continue
        n_ij = parent_lookup[row[:-2] if parents else ()]
        loglik += n_ijk * math.log(n_ijk / n_ij)

    q = 1
    for p in parents:
        q *= p.size
    penalty = 0.5 * math.log(max(n_samples, 2.0)) * q * (variable.size - 1)
    return loglik - penalty


def bic_score(
    data: FunctionalRelation,
    structure: Sequence[tuple[Variable, Sequence[Variable]]],
) -> float:
    """Total BIC of a DAG structure (sum of family scores)."""
    n_samples = float(data.measure.sum())
    return sum(
        family_bic(data, variable, parents, n_samples)
        for variable, parents in structure
    )


@dataclass
class StructureResult:
    """Outcome of a structure search."""

    network: BayesianNetwork
    structure: list[tuple[Variable, tuple[Variable, ...]]]
    score: float
    iterations: int
    trace: list[tuple[str, float]]
    """(move description, score after applying) per accepted move."""


def greedy_hill_climb(
    data: FunctionalRelation,
    variables: Sequence[Variable],
    max_parents: int = 2,
    max_iterations: int = 50,
    prior: float = 1.0,
) -> StructureResult:
    """Greedy DAG search maximizing BIC.

    Starts from the empty graph; at each step applies the single edge
    addition, removal, or reversal that improves the score most (while
    keeping the graph acyclic and within ``max_parents``); stops at a
    local optimum.  Family scores are cached so each step only rescores
    the touched families.
    """
    variables = list(variables)
    names = [v.name for v in variables]
    if len(set(names)) != len(names):
        raise SchemaError("duplicate variable names")
    by_name = {v.name: v for v in variables}
    missing = set(names) - set(data.var_names)
    if missing:
        raise SchemaError(
            f"data relation lacks variables {sorted(missing)}"
        )

    n_samples = float(data.measure.sum())
    graph = nx.DiGraph()
    graph.add_nodes_from(names)

    family_cache: dict[tuple[str, frozenset[str]], float] = {}

    def family_score(child: str, parents: frozenset[str]) -> float:
        key = (child, parents)
        if key not in family_cache:
            family_cache[key] = family_bic(
                data,
                by_name[child],
                [by_name[p] for p in sorted(parents)],
                n_samples,
            )
        return family_cache[key]

    def current_parents(child: str) -> frozenset[str]:
        return frozenset(graph.predecessors(child))

    score = sum(family_score(n, current_parents(n)) for n in names)
    trace: list[tuple[str, float]] = []

    def candidate_moves():
        for a in names:
            for b in names:
                if a == b:
                    continue
                if graph.has_edge(a, b):
                    yield ("remove", a, b)
                    if (
                        len(current_parents(a)) < max_parents
                        and not graph.has_edge(b, a)
                    ):
                        yield ("reverse", a, b)
                elif len(current_parents(b)) < max_parents:
                    yield ("add", a, b)

    def creates_cycle(a: str, b: str) -> bool:
        # Adding a->b creates a cycle iff a is reachable from b.
        return nx.has_path(graph, b, a)

    iterations = 0
    for iterations in range(1, max_iterations + 1):
        best_move = None
        best_delta = 1e-12
        for kind, a, b in candidate_moves():
            if kind == "add":
                if creates_cycle(a, b):
                    continue
                delta = family_score(
                    b, current_parents(b) | {a}
                ) - family_score(b, current_parents(b))
            elif kind == "remove":
                delta = family_score(
                    b, current_parents(b) - {a}
                ) - family_score(b, current_parents(b))
            else:  # reverse a->b into b->a
                graph.remove_edge(a, b)
                cycle = creates_cycle(b, a)
                graph.add_edge(a, b)
                if cycle:
                    continue
                delta = (
                    family_score(b, current_parents(b) - {a})
                    - family_score(b, current_parents(b))
                    + family_score(a, current_parents(a) | {b})
                    - family_score(a, current_parents(a))
                )
            if delta > best_delta:
                best_delta = delta
                best_move = (kind, a, b)
        if best_move is None:
            iterations -= 1
            break
        kind, a, b = best_move
        if kind == "add":
            graph.add_edge(a, b)
        elif kind == "remove":
            graph.remove_edge(a, b)
        else:
            graph.remove_edge(a, b)
            graph.add_edge(b, a)
        score += best_delta
        trace.append((f"{kind} {a}->{b}", score))

    structure = [
        (by_name[n], tuple(by_name[p] for p in sorted(current_parents(n))))
        for n in names
    ]
    cpds = [
        estimate_cpd(data, variable, parents, prior=prior)
        for variable, parents in structure
    ]
    return StructureResult(
        network=BayesianNetwork(cpds),
        structure=structure,
        score=score,
        iterations=iterations,
        trace=trace,
    )
