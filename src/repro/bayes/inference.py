"""Exact inference through MPF query optimization (Section 4).

Two engines with one interface:

* :class:`MPFInference` — the paper's point: pose the inference task as
  an MPF query over the CPT relations and let a relational optimizer
  (VE, CS+, nonlinear CS+, ...) plan and execute it.  Also supports a
  calibrated :class:`~repro.workload.vecache.VECache` for workloads of
  repeated marginal queries (the Section 6 machinery).

* :class:`BruteForceInference` — the oracle: materialize the whole
  joint and marginalize directly.  Exponential in network size; exists
  so property tests can verify the MPF path exactly.

Both return *normalized* posteriors ``Pr(X | evidence)``; the raw MPF
query result is the unnormalized measure the paper's example computes.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.algebra.aggregate import marginalize
from repro.algebra.select import restrict
from repro.bayes.network import BayesianNetwork
from repro.catalog.catalog import Catalog
from repro.data.relation import FunctionalRelation
from repro.errors import QueryError
from repro.optimizer.base import Optimizer, QuerySpec
from repro.optimizer.ve import VariableElimination
from repro.plans.executor import Executor
from repro.plans.guard import QueryGuard
from repro.plans.runtime import ExecutionContext
from repro.semiring.builtins import LOG_PROB, MAX_PRODUCT, MAX_SUM, SUM_PRODUCT
from repro.workload.vecache import VECache, build_ve_cache

__all__ = ["MPFInference", "BruteForceInference", "normalize"]


def normalize(relation: FunctionalRelation) -> FunctionalRelation:
    """Scale a sum-product measure column to sum to 1."""
    total = float(relation.measure.sum())
    if total <= 0:
        raise QueryError(
            "cannot normalize: total probability mass is zero (evidence "
            "has probability 0?)"
        )
    return relation.with_measure(relation.measure / total)


class MPFInference:
    """Inference by MPF query evaluation over the CPT relations.

    With ``log_space=True`` the CPTs are stored as log probabilities
    and every plan executes under the log semiring (logaddexp, +) —
    numerically stable for deep networks whose linear-space products
    underflow.  Returned posteriors are always linear-space.
    """

    def __init__(
        self,
        network: BayesianNetwork,
        optimizer: Optimizer | None = None,
        log_space: bool = False,
        metrics=None,
    ):
        self.network = network
        self.optimizer = optimizer or VariableElimination("degree", extended=True)
        self.log_space = log_space
        self.metrics = metrics
        self.catalog = Catalog()
        relations = network.to_relations()
        if log_space:
            with np.errstate(divide="ignore"):
                relations = [
                    r.with_measure(np.log(r.measure)) for r in relations
                ]
        self.tables = tuple(self.catalog.register_all(relations))
        self._semiring = LOG_PROB if log_space else SUM_PRODUCT
        self._executor = Executor(
            self.catalog, self._semiring, metrics=metrics
        )

    # ------------------------------------------------------------------
    def query(
        self,
        variables: Sequence[str] | str,
        evidence: Mapping[str, object] | None = None,
        normalized: bool = True,
        guard: QueryGuard | None = None,
    ) -> FunctionalRelation:
        """``Pr(variables | evidence)`` via an MPF query.

        ``evidence`` becomes the constrained-domain ``where`` clause;
        the optimizer plans the marginalization, the executor runs it.
        ``guard`` bounds the execution (deadline, memory, retries).
        """
        if isinstance(variables, str):
            variables = (variables,)
        spec = QuerySpec(
            tables=self.tables,
            query_vars=tuple(variables),
            selections=dict(evidence or {}),
        )
        result = self.optimizer.optimize(spec, self.catalog)
        answer, _stats = self._executor.run(result.plan, guard=guard)
        if self.log_space:
            answer = answer.with_measure(np.exp(answer.measure))
        return normalize(answer) if normalized else answer

    def map_query(
        self,
        variables: Sequence[str] | str,
        evidence: Mapping[str, object] | None = None,
        guard: QueryGuard | None = None,
    ) -> FunctionalRelation:
        """Max-marginals over ``variables`` (max-product semiring).

        The same MPF plan evaluated under (max, ×) yields, per value of
        the query variables, the probability of the best completing
        assignment — the MPE reading of the semiring generality in
        Section 2.
        """
        if isinstance(variables, str):
            variables = (variables,)
        spec = QuerySpec(
            tables=self.tables,
            query_vars=tuple(variables),
            selections=dict(evidence or {}),
        )
        result = self.optimizer.optimize(spec, self.catalog)
        executor = Executor(
            self.catalog,
            MAX_SUM if self.log_space else MAX_PRODUCT,
            pool=self._executor.pool,
            metrics=self.metrics,
        )
        answer, _stats = executor.run(result.plan, guard=guard)
        if self.log_space:
            answer = answer.with_measure(np.exp(answer.measure))
        return answer

    # ------------------------------------------------------------------
    # Workload path (Section 6)
    # ------------------------------------------------------------------
    def build_cache(self, heuristic: str = "degree") -> VECache:
        """Calibrate a VE-cache over the CPTs for repeated marginals.

        The cache is built through a catalog-backed execution context
        sharing this engine's buffer pool, so construction pays — and
        reports — the same simulated IO an equivalent query would.
        """
        relations = [self.catalog.relation(t) for t in self.tables]
        context = ExecutionContext(
            self.catalog, self._semiring, pool=self._executor.pool,
            metrics=self.metrics,
        )
        return build_ve_cache(
            relations, self._semiring, heuristic=heuristic, context=context
        )

    def query_cached(
        self,
        cache: VECache,
        variable: str,
        evidence: Mapping[str, object] | None = None,
        normalized: bool = True,
    ) -> FunctionalRelation:
        """Answer a single-variable marginal from a calibrated cache."""
        if evidence:
            cache = cache.absorb_evidence(evidence)
        answer = cache.answer(variable)
        if self.log_space:
            answer = answer.with_measure(np.exp(answer.measure))
        return normalize(answer) if normalized else answer


class BruteForceInference:
    """Oracle inference by materializing the joint distribution."""

    def __init__(self, network: BayesianNetwork):
        self.network = network
        self._joint = network.joint()

    def query(
        self,
        variables: Sequence[str] | str,
        evidence: Mapping[str, object] | None = None,
        normalized: bool = True,
    ) -> FunctionalRelation:
        if isinstance(variables, str):
            variables = (variables,)
        table = self._joint
        if evidence:
            table = restrict(table, dict(evidence))
        answer = marginalize(table, tuple(variables), SUM_PRODUCT)
        return normalize(answer) if normalized else answer

    def map_query(
        self,
        variables: Sequence[str] | str,
        evidence: Mapping[str, object] | None = None,
    ) -> FunctionalRelation:
        if isinstance(variables, str):
            variables = (variables,)
        table = self._joint
        if evidence:
            table = restrict(table, dict(evidence))
        return marginalize(table, tuple(variables), MAX_PRODUCT)
