"""Classic small Bayesian networks used by examples and tests.

* :func:`figure2_network` — the paper's Figure 2: binary A, B, C, D
  with ``Pr(A, B, C, D) = Pr(A) Pr(B|A) Pr(C|A) Pr(D|B, C)``.
* :func:`sprinkler_network` — the textbook Cloudy / Sprinkler / Rain /
  WetGrass network.
* :func:`chain_network` — a Markov chain of configurable length and
  domain size (worst case for naive evaluation, best case for VE).
* :func:`naive_bayes_network` — one class variable with N feature
  children (a star view in MPF terms).
"""

from __future__ import annotations

import numpy as np

from repro.bayes.cpd import CPD
from repro.bayes.network import BayesianNetwork
from repro.data.domain import var

__all__ = [
    "figure2_network",
    "sprinkler_network",
    "chain_network",
    "naive_bayes_network",
    "asia_network",
]


def figure2_network() -> BayesianNetwork:
    """The paper's Figure 2 network over binary A, B, C, D."""
    a, b, c, d = (var(n, 2) for n in "ABCD")
    return BayesianNetwork(
        [
            CPD(a, (), np.array([0.6, 0.4])),
            CPD(b, (a,), np.array([[0.7, 0.3], [0.2, 0.8]])),
            CPD(c, (a,), np.array([[0.9, 0.1], [0.4, 0.6]])),
            CPD(
                d,
                (b, c),
                np.array(
                    [
                        [[0.95, 0.05], [0.5, 0.5]],
                        [[0.6, 0.4], [0.1, 0.9]],
                    ]
                ),
            ),
        ]
    )


def sprinkler_network() -> BayesianNetwork:
    """Cloudy → {Sprinkler, Rain} → WetGrass (Pearl's example)."""
    cloudy = var("cloudy", 2, labels=("no", "yes"))
    sprinkler = var("sprinkler", 2, labels=("off", "on"))
    rain = var("rain", 2, labels=("no", "yes"))
    wet = var("wet_grass", 2, labels=("dry", "wet"))
    return BayesianNetwork(
        [
            CPD(cloudy, (), np.array([0.5, 0.5])),
            CPD(sprinkler, (cloudy,), np.array([[0.5, 0.5], [0.9, 0.1]])),
            CPD(rain, (cloudy,), np.array([[0.8, 0.2], [0.2, 0.8]])),
            CPD(
                wet,
                (sprinkler, rain),
                np.array(
                    [
                        [[1.0, 0.0], [0.1, 0.9]],
                        [[0.1, 0.9], [0.01, 0.99]],
                    ]
                ),
            ),
        ]
    )


def chain_network(
    length: int = 6, domain_size: int = 3, seed: int = 0
) -> BayesianNetwork:
    """A Markov chain ``X0 → X1 → ... → X{length-1}``."""
    rng = np.random.default_rng(seed)
    variables = [var(f"X{i}", domain_size) for i in range(length)]
    cpds = [CPD.random(variables[0], (), rng)]
    for prev, cur in zip(variables, variables[1:]):
        cpds.append(CPD.random(cur, (prev,), rng))
    return BayesianNetwork(cpds)


def naive_bayes_network(
    n_features: int = 5,
    class_size: int = 3,
    feature_size: int = 4,
    seed: int = 0,
) -> BayesianNetwork:
    """Class variable ``Y`` with independent feature children ``F_i``."""
    rng = np.random.default_rng(seed)
    y = var("Y", class_size)
    cpds = [CPD.random(y, (), rng)]
    for i in range(n_features):
        f = var(f"F{i}", feature_size)
        cpds.append(CPD.random(f, (y,), rng))
    return BayesianNetwork(cpds)


def asia_network() -> BayesianNetwork:
    """Lauritzen & Spiegelhalter's "Asia" chest-clinic network.

    Eight binary variables: visit to Asia, smoking, tuberculosis, lung
    cancer, bronchitis, tub-or-cancer, positive x-ray, dyspnoea.  The
    classic junction-tree benchmark; its moral graph is loopy, so it
    exercises triangulation and the VE-cache on a real(ish) model.
    Probabilities follow the original 1988 paper.
    """
    asia = var("asia", 2, labels=("no", "yes"))
    smoke = var("smoke", 2, labels=("no", "yes"))
    tub = var("tub", 2, labels=("no", "yes"))
    lung = var("lung", 2, labels=("no", "yes"))
    bronc = var("bronc", 2, labels=("no", "yes"))
    either = var("either", 2, labels=("no", "yes"))
    xray = var("xray", 2, labels=("negative", "positive"))
    dysp = var("dysp", 2, labels=("no", "yes"))

    return BayesianNetwork(
        [
            CPD(asia, (), np.array([0.99, 0.01])),
            CPD(smoke, (), np.array([0.5, 0.5])),
            CPD(tub, (asia,), np.array([[0.99, 0.01], [0.95, 0.05]])),
            CPD(lung, (smoke,), np.array([[0.99, 0.01], [0.9, 0.1]])),
            CPD(bronc, (smoke,), np.array([[0.7, 0.3], [0.4, 0.6]])),
            # "either" is the deterministic OR of tub and lung.
            CPD(
                either,
                (tub, lung),
                np.array(
                    [
                        [[1.0, 0.0], [0.0, 1.0]],
                        [[0.0, 1.0], [0.0, 1.0]],
                    ]
                ),
            ),
            CPD(xray, (either,), np.array([[0.95, 0.05], [0.02, 0.98]])),
            CPD(
                dysp,
                (bronc, either),
                np.array(
                    [
                        [[0.9, 0.1], [0.3, 0.7]],
                        [[0.2, 0.8], [0.1, 0.9]],
                    ]
                ),
            ),
        ]
    )
