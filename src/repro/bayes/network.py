"""Bayesian networks over functional relations (Section 4).

A :class:`BayesianNetwork` is a DAG of variables with one
:class:`~repro.bayes.cpd.CPD` per node.  The joint distribution is the
MPF view over the CPT relations:

    create mpfview joint as
      (select A, B, C, D, measure = (* a.p, b.p, c.p, d.p)
       from a, b, c, d where ...)

(the Figure 2 example), and inference tasks are MPF queries against
it — ``select C, SUM(p) from joint where A = 0 group by C`` computes
``Pr(C | A = 0)`` up to normalization.
"""

from __future__ import annotations

from functools import reduce
from typing import Iterable

import networkx as nx

from repro.algebra.join import product_join
from repro.bayes.cpd import CPD
from repro.data.domain import Variable
from repro.data.relation import FunctionalRelation
from repro.errors import SchemaError
from repro.semiring.builtins import SUM_PRODUCT

__all__ = ["BayesianNetwork"]


class BayesianNetwork:
    """A discrete Bayesian network with dense CPTs."""

    def __init__(self, cpds: Iterable[CPD]):
        cpds = list(cpds)
        self._cpds: dict[str, CPD] = {}
        self._variables: dict[str, Variable] = {}
        self.graph = nx.DiGraph()
        for cpd in cpds:
            name = cpd.variable.name
            if name in self._cpds:
                raise SchemaError(f"duplicate CPD for variable {name!r}")
            self._cpds[name] = cpd
            for v in cpd.scope:
                known = self._variables.get(v.name)
                if known is not None and known.size != v.size:
                    raise SchemaError(
                        f"variable {v.name!r} has conflicting domain sizes "
                        f"{known.size} vs {v.size}"
                    )
                self._variables.setdefault(v.name, v)
            self.graph.add_node(name)
            for parent in cpd.parents:
                self.graph.add_edge(parent.name, name)

        missing = set(self.graph.nodes) - set(self._cpds)
        if missing:
            raise SchemaError(
                f"variables {sorted(missing)} appear as parents but have "
                "no CPD"
            )
        if not nx.is_directed_acyclic_graph(self.graph):
            cycle = nx.find_cycle(self.graph)
            raise SchemaError(f"network contains a cycle: {cycle}")

    # ------------------------------------------------------------------
    @property
    def variable_names(self) -> tuple[str, ...]:
        return tuple(nx.topological_sort(self.graph))

    def variable(self, name: str) -> Variable:
        try:
            return self._variables[name]
        except KeyError:
            raise SchemaError(f"unknown variable {name!r}") from None

    def cpd(self, name: str) -> CPD:
        try:
            return self._cpds[name]
        except KeyError:
            raise SchemaError(f"no CPD for variable {name!r}") from None

    def parents(self, name: str) -> tuple[str, ...]:
        return tuple(sorted(self.graph.predecessors(name)))

    def __len__(self) -> int:
        return len(self._cpds)

    # ------------------------------------------------------------------
    # MPF view material
    # ------------------------------------------------------------------
    def to_relations(self) -> list[FunctionalRelation]:
        """One functional relation per CPT, in topological order."""
        return [
            self._cpds[name].to_relation() for name in self.variable_names
        ]

    def joint(self) -> FunctionalRelation:
        """Materialize the full joint (exponential; test-sized only)."""
        return reduce(
            lambda a, b: product_join(a, b, SUM_PRODUCT),
            self.to_relations(),
        ).with_name("joint")

    def moral_graph(self) -> nx.Graph:
        """The variable graph of the CPT schema ("moralized" DAG)."""
        moral = nx.Graph()
        moral.add_nodes_from(self.graph.nodes)
        for name, cpd in self._cpds.items():
            scope = [v.name for v in cpd.scope]
            for i, a in enumerate(scope):
                for b in scope[i + 1:]:
                    moral.add_edge(a, b)
        return moral

    # ------------------------------------------------------------------
    # Sampling (for parameter-estimation round trips)
    # ------------------------------------------------------------------
    def sample(
        self, n: int, rng, as_codes: bool = True
    ) -> dict[str, "np.ndarray"]:
        """Ancestral sampling of ``n`` joint assignments."""
        import numpy as np

        samples: dict[str, np.ndarray] = {}
        for name in self.variable_names:
            cpd = self._cpds[name]
            size = self._variables[name].size
            if not cpd.parents:
                probs = cpd.table
                samples[name] = rng.choice(size, size=n, p=probs)
                continue
            parent_cols = [samples[p.name] for p in cpd.parents]
            flat_parent = np.zeros(n, dtype=np.int64)
            for col, parent in zip(parent_cols, cpd.parents):
                flat_parent = flat_parent * parent.size + col
            flat_table = cpd.table.reshape(-1, size)
            uniform = rng.random(n)
            cumulative = np.cumsum(flat_table[flat_parent], axis=1)
            samples[name] = (
                (uniform[:, None] > cumulative).sum(axis=1).astype(np.int64)
            )
        return samples

    def __repr__(self) -> str:
        return (
            f"BayesianNetwork(variables={list(self.variable_names)}, "
            f"edges={self.graph.number_of_edges()})"
        )
