"""Parameter estimation through MPF counting queries (Section 4).

The paper notes that both structure scores and CPT parameters need
*counts* from data, and that "for data in multiple tables where a join
dependency holds, the MPF setting can be used to compute the required
counts": represent each data table as a functional relation whose
measure is a row multiplicity under the **counting semiring** (+, ×);
the product join reconstructs the joint multiplicities and GroupBy
computes any marginal count — i.e. count queries are MPF queries.

This module provides that pipeline:

* :func:`samples_to_relation` — a flat sample matrix becomes a
  counting FR (duplicate assignments merge into multiplicities);
* :func:`counts` — a marginal count via an MPF query (works on a
  single sample relation or a list joined by a join dependency);
* :func:`estimate_cpd` / :func:`estimate_network` — maximum-likelihood
  (optionally Dirichlet-smoothed) CPTs for a given structure.
"""

from __future__ import annotations

from functools import reduce
from typing import Mapping, Sequence

import numpy as np

from repro.algebra.aggregate import marginalize
from repro.algebra.join import product_join
from repro.bayes.cpd import CPD
from repro.bayes.network import BayesianNetwork
from repro.data.domain import Variable, VariableSet
from repro.data.relation import FunctionalRelation
from repro.errors import SchemaError
from repro.semiring.builtins import COUNTING

__all__ = [
    "samples_to_relation",
    "counts",
    "estimate_cpd",
    "estimate_network",
]


def samples_to_relation(
    samples: Mapping[str, np.ndarray],
    variables: Sequence[Variable],
    name: str = "samples",
) -> FunctionalRelation:
    """Turn sampled assignments into a counting functional relation.

    ``samples`` maps variable names to equal-length code columns (the
    output of :meth:`BayesianNetwork.sample`); duplicate joint
    assignments collapse into a single row whose measure is the
    multiplicity, restoring the FD.
    """
    variables = VariableSet.of(variables)
    lengths = {len(samples[v.name]) for v in variables}
    if len(lengths) != 1:
        raise SchemaError(f"sample columns have differing lengths {lengths}")
    n = lengths.pop()
    raw = FunctionalRelation(
        variables,
        {v.name: np.asarray(samples[v.name], dtype=np.int64)
         for v in variables},
        np.ones(n, dtype=np.int64),
        name=name,
        measure_name="count",
        check_fd=False,
    )
    return marginalize(raw, variables.names, COUNTING, name=name)


def counts(
    data: FunctionalRelation | Sequence[FunctionalRelation],
    scope: Sequence[str],
) -> FunctionalRelation:
    """Marginal counts over ``scope`` as an MPF query.

    ``data`` is one counting relation, or several joined by a join
    dependency (their product join under the counting semiring
    reconstructs the joint multiplicities).
    """
    if isinstance(data, FunctionalRelation):
        joint = data
    else:
        joint = reduce(
            lambda a, b: product_join(a, b, COUNTING), list(data)
        )
    return marginalize(joint, tuple(scope), COUNTING)


def _dense_counts(
    count_relation: FunctionalRelation, scope: Sequence[Variable]
) -> np.ndarray:
    """Counting FR → dense tensor over the scope's domains."""
    shape = tuple(v.size for v in scope)
    tensor = np.zeros(shape, dtype=np.float64)
    index = tuple(count_relation.columns[v.name] for v in scope)
    tensor[index] = count_relation.measure
    return tensor


def estimate_cpd(
    data: FunctionalRelation | Sequence[FunctionalRelation],
    variable: Variable,
    parents: Sequence[Variable],
    prior: float = 1.0,
) -> CPD:
    """Estimate ``P(variable | parents)`` from counting relations.

    The family counts come from one MPF query over the data; the
    Dirichlet ``prior`` pseudo-count keeps unseen parent contexts
    well-defined (and the CPT normalized).
    """
    scope = tuple(parents) + (variable,)
    family = counts(data, [v.name for v in scope])
    tensor = _dense_counts(family, scope)
    return CPD.from_counts(variable, tuple(parents), tensor, prior=prior)


def estimate_network(
    data: FunctionalRelation | Sequence[FunctionalRelation],
    structure: Sequence[tuple[Variable, Sequence[Variable]]],
    prior: float = 1.0,
) -> BayesianNetwork:
    """Estimate every CPT of a given DAG structure from data.

    ``structure`` lists ``(variable, parents)`` pairs; the conditional
    independencies themselves are assumed given (by domain knowledge,
    as the paper puts it) — this fills in the local functions.
    """
    cpds = [
        estimate_cpd(data, variable, parents, prior=prior)
        for variable, parents in structure
    ]
    return BayesianNetwork(cpds)
