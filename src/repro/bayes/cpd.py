"""Conditional probability distributions as functional relations.

Section 4 of the paper: a Bayesian network factors a joint distribution
into local conditional distributions, each of which is naturally a
functional relation — the variables (parents + child) determine the
probability measure.  A :class:`CPD` wraps the dense conditional table
``P(X | parents)`` and exports it as a
:class:`~repro.data.relation.FunctionalRelation` so the MPF machinery
can join and marginalize it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.builders import relation_from_tensor
from repro.data.domain import Variable
from repro.data.relation import FunctionalRelation
from repro.errors import SchemaError

__all__ = ["CPD"]


@dataclass(frozen=True)
class CPD:
    """``P(variable | parents)`` as a dense table.

    ``table`` has shape ``(*parent_sizes, variable_size)`` with axis
    order following ``parents`` then ``variable``; every slice over a
    full parent assignment must sum to 1.
    """

    variable: Variable
    parents: tuple[Variable, ...]
    table: np.ndarray

    def __post_init__(self):
        table = np.asarray(self.table, dtype=np.float64)
        expected = tuple(p.size for p in self.parents) + (self.variable.size,)
        if table.shape != expected:
            raise SchemaError(
                f"CPD for {self.variable.name!r}: table shape {table.shape} "
                f"!= expected {expected}"
            )
        if np.any(table < -1e-12):
            raise SchemaError(
                f"CPD for {self.variable.name!r} contains negative "
                "probabilities"
            )
        sums = table.sum(axis=-1)
        if not np.allclose(sums, 1.0, atol=1e-9):
            raise SchemaError(
                f"CPD for {self.variable.name!r}: conditional rows sum to "
                f"{sums.ravel()[:5]}... , expected 1"
            )
        object.__setattr__(self, "table", table)

    @classmethod
    def from_counts(
        cls,
        variable: Variable,
        parents: tuple[Variable, ...],
        counts: np.ndarray,
        prior: float = 1.0,
    ) -> "CPD":
        """Estimate from joint counts with a Dirichlet pseudo-count.

        Section 4 notes that local function values are estimated from
        data, with counts computable through the MPF setting itself.
        """
        counts = np.asarray(counts, dtype=np.float64) + prior
        table = counts / counts.sum(axis=-1, keepdims=True)
        return cls(variable, tuple(parents), table)

    @classmethod
    def random(
        cls,
        variable: Variable,
        parents: tuple[Variable, ...],
        rng: np.random.Generator,
        concentration: float = 1.0,
    ) -> "CPD":
        """A random CPD with Dirichlet-distributed conditional rows."""
        shape = tuple(p.size for p in parents) + (variable.size,)
        raw = rng.gamma(concentration, size=shape)
        table = raw / raw.sum(axis=-1, keepdims=True)
        return cls(variable, tuple(parents), table)

    @property
    def scope(self) -> tuple[Variable, ...]:
        return self.parents + (self.variable,)

    def to_relation(self, name: str | None = None) -> FunctionalRelation:
        """The CPT as a (complete) functional relation."""
        return relation_from_tensor(
            list(self.scope),
            self.table,
            name=name or f"cpd_{self.variable.name}",
            measure_name="p",
        )

    def __repr__(self) -> str:
        parent_names = [p.name for p in self.parents]
        return f"CPD(P({self.variable.name} | {', '.join(parent_names) or '∅'}))"
