"""MPF query objects: the four Section 3.1 forms.

* **basic** — ``select X, AGG(f) from r group by X``;
* **restricted answer** — basic plus ``where X = c`` on a query
  variable;
* **constrained domain** — basic plus ``where Y = c`` on a non-query
  variable (probabilistic evidence);
* **constrained range** — a ``having f <op> c`` filter on the result
  measures.

A query validates itself against its view's variables and lowers to
the optimizer's :class:`~repro.optimizer.base.QuerySpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.algebra.select import restrict_range
from repro.catalog.catalog import Catalog
from repro.data.relation import FunctionalRelation
from repro.errors import QueryError
from repro.optimizer.base import QuerySpec
from repro.query.view import MPFView

__all__ = ["MPFQuery", "HavingClause"]


@dataclass(frozen=True)
class HavingClause:
    """``having f <op> threshold`` — the constrained-range form."""

    op: str
    threshold: float

    def apply(self, relation: FunctionalRelation) -> FunctionalRelation:
        return restrict_range(relation, self.op, self.threshold)


@dataclass(frozen=True)
class MPFQuery:
    """One MPF query against a view."""

    view: MPFView
    group_by: tuple[str, ...]
    selections: Mapping[str, object] = field(default_factory=dict)
    having: HavingClause | None = None

    def __post_init__(self):
        object.__setattr__(self, "selections", dict(self.selections))
        if not self.group_by and not self.selections:
            # Grouping by nothing is legal (total mass) but flag the
            # common mistake of an empty query.
            pass

    # ------------------------------------------------------------------
    @property
    def form(self) -> str:
        """Which Section 3.1 template this query instantiates."""
        kinds = []
        if self.selections:
            on_query = set(self.selections) & set(self.group_by)
            off_query = set(self.selections) - set(self.group_by)
            if on_query:
                kinds.append("restricted-answer")
            if off_query:
                kinds.append("constrained-domain")
        else:
            kinds.append("basic")
        if self.having is not None:
            kinds.append("constrained-range")
        return "+".join(kinds)

    def validate(self, catalog: Catalog) -> None:
        available = set(self.view.variables(catalog))
        unknown = set(self.group_by) - available
        if unknown:
            raise QueryError(
                f"group-by variables {sorted(unknown)} not in view "
                f"{self.view.name!r} (has {sorted(available)})"
            )
        unknown = set(self.selections) - available
        if unknown:
            raise QueryError(
                f"selection variables {sorted(unknown)} not in view "
                f"{self.view.name!r}"
            )

    def to_spec(self, catalog: Catalog) -> QuerySpec:
        self.validate(catalog)
        return QuerySpec(
            tables=self.view.tables,
            query_vars=tuple(self.group_by),
            selections=dict(self.selections),
        )

    def finish(self, relation: FunctionalRelation) -> FunctionalRelation:
        """Apply the post-aggregation having clause, if any."""
        if self.having is None:
            return relation
        return self.having.apply(relation)

    def __repr__(self) -> str:
        parts = [f"select {', '.join(self.group_by) or '<total>'}"]
        parts.append(f"from {self.view.name}")
        if self.selections:
            preds = " and ".join(
                f"{k}={v}" for k, v in self.selections.items()
            )
            parts.append(f"where {preds}")
        if self.group_by:
            parts.append(f"group by {', '.join(self.group_by)}")
        if self.having:
            parts.append(f"having f {self.having.op} {self.having.threshold}")
        return f"MPFQuery({' '.join(parts)})"
