"""MPF view definitions (the ``create mpfview`` extension, Section 2).

An :class:`MPFView` names the product join of a set of base functional
relations together with the semiring that interprets their measures:

    create mpfview invest as
      (select pid, sid, wid, cid, tid,
              measure = (* c.price, w.w_factor, t.t_overhead,
                           l.quantity, ct.ct_discount)
       from contracts c, warehouses w, transporters t,
            location l, ctdeals ct
       where ...)

The view is *virtual*: queries against it are rewritten over the base
relations and optimized (the paper's second evaluation option);
:meth:`MPFView.materialize` exists for oracle comparisons and for the
materialized-cache path of Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import reduce

from repro.algebra.join import product_join
from repro.catalog.catalog import Catalog
from repro.data.relation import FunctionalRelation
from repro.errors import QueryError
from repro.semiring.base import Semiring
from repro.semiring.builtins import by_name

__all__ = ["MPFView"]


@dataclass(frozen=True)
class MPFView:
    """A named product join of base functional relations."""

    name: str
    tables: tuple[str, ...]
    semiring: Semiring = field(default_factory=lambda: by_name("sum_product"))

    def __post_init__(self):
        if not self.tables:
            raise QueryError(f"view {self.name!r} has no base tables")
        if len(set(self.tables)) != len(self.tables):
            raise QueryError(f"view {self.name!r} repeats a base table")

    def variables(self, catalog: Catalog) -> tuple[str, ...]:
        """Union of base-relation variables, first-seen order."""
        seen: list[str] = []
        for t in self.tables:
            for v in catalog.stats(t).variables:
                if v not in seen:
                    seen.append(v)
        return tuple(seen)

    def materialize(self, catalog: Catalog) -> FunctionalRelation:
        """Compute the full view relation (oracle / small inputs)."""
        relations = [catalog.relation(t) for t in self.tables]
        return reduce(
            lambda a, b: product_join(a, b, self.semiring), relations
        ).with_name(self.name)

    def __repr__(self) -> str:
        return (
            f"MPFView({self.name!r}, tables={list(self.tables)}, "
            f"semiring={self.semiring.name})"
        )
