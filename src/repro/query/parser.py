"""Parser for the paper's SQL extension (Sections 2 & 3.1).

Two statement forms:

* the view definition::

      create mpfview invest as
        (select pid, sid, wid, cid, tid,
                measure = (* contracts.price, warehouses.w_factor,
                             transporters.t_overhead, location.quantity,
                             ctdeals.ct_discount)
         from contracts, warehouses, transporters, location, ctdeals
         where contracts.pid = location.pid and
               location.wid = warehouses.wid and
               warehouses.cid = ctdeals.cid and
               ctdeals.tid = transporters.tid)

  The multiplicative operation (``*``, ``+``, or ``and``) heads the
  measure list, per the paper's proposed syntax.  Join predicates are
  natural joins on shared variable names; the ``where`` clause is
  validated against that convention.

* the MPF query::

      select wid, sum(inv) from invest where tid = 1
      group by wid having f < 100

  The aggregate names the semiring's additive operation (``sum``,
  ``min``, ``max``, ``or``); combined with the view's multiplicative
  operation it selects the semiring.  ``where`` equality predicates
  become restricted-answer / constrained-domain selections; ``having``
  is the constrained-range form.

The grammar is deliberately small — exactly what the paper's examples
need — but errors carry positions so typos are findable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ParseError

__all__ = [
    "CreateViewStatement",
    "CreateIndexStatement",
    "SelectStatement",
    "parse_statement",
    "parse_create_mpfview",
    "parse_create_index",
    "parse_select",
]

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*(\.[A-Za-z_][A-Za-z_0-9]*)?)
  | (?P<op><=|>=|!=|==|[(),=*+<>])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "create", "mpfview", "as", "select", "from", "where", "group",
    "by", "having", "and", "measure", "index", "on",
}


@dataclass(frozen=True)
class _Token:
    kind: str  # "ident", "number", "op", "keyword"
    text: str
    pos: int


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise ParseError(
                f"unexpected character {sql[pos]!r} at position {pos}"
            )
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        text = match.group()
        kind = match.lastgroup
        if kind == "ident" and text.lower() in _KEYWORDS:
            kind, text = "keyword", text.lower()
        tokens.append(_Token(kind, text, match.start()))
    return tokens


class _Cursor:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = _tokenize(sql)
        self.index = 0

    def peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of input: {self.sql!r}")
        self.index += 1
        return token

    def expect(self, kind: str, text: str | None = None) -> _Token:
        token = self.next()
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise ParseError(
                f"expected {want!r} at position {token.pos}, got "
                f"{token.text!r}"
            )
        return token

    def accept(self, kind: str, text: str | None = None) -> _Token | None:
        token = self.peek()
        if (
            token is not None
            and token.kind == kind
            and (text is None or token.text == text)
        ):
            self.index += 1
            return token
        return None

    def done(self) -> bool:
        return self.index >= len(self.tokens)


# ----------------------------------------------------------------------
# Statement dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CreateViewStatement:
    """Parsed ``create mpfview`` statement."""

    name: str
    variables: tuple[str, ...]
    multiplicative_op: str  # "*", "+", or "and"
    measure_refs: tuple[str, ...]  # e.g. ("contracts.price", ...)
    tables: tuple[str, ...]
    join_predicates: tuple[tuple[str, str], ...] = ()
    """Pairs of dotted column references equated in the where clause."""


@dataclass(frozen=True)
class CreateIndexStatement:
    """Parsed ``create index on table(variable)`` statement."""

    table: str
    variable: str


@dataclass(frozen=True)
class SelectStatement:
    """Parsed MPF ``select`` query."""

    view: str
    group_by: tuple[str, ...]
    aggregate: str  # "sum", "min", "max", "or", "count"
    measure_ref: str
    selections: Mapping[str, float] = field(default_factory=dict)
    having: tuple[str, float] | None = None


# ----------------------------------------------------------------------
# Grammar
# ----------------------------------------------------------------------
def _ident_list(cursor: _Cursor) -> list[str]:
    names = [cursor.expect("ident").text]
    while cursor.accept("op", ","):
        names.append(cursor.expect("ident").text)
    return names


def parse_create_mpfview(sql: str) -> CreateViewStatement:
    """Parse a ``create mpfview`` statement."""
    cursor = _Cursor(sql)
    cursor.expect("keyword", "create")
    cursor.expect("keyword", "mpfview")
    name = cursor.expect("ident").text
    cursor.expect("keyword", "as")
    cursor.expect("op", "(")
    cursor.expect("keyword", "select")

    variables: list[str] = []
    while True:
        if cursor.accept("keyword", "measure"):
            break
        variables.append(cursor.expect("ident").text)
        cursor.expect("op", ",")
    cursor.expect("op", "=")
    cursor.expect("op", "(")
    op_token = cursor.next()
    if op_token.text not in ("*", "+") and not (
        op_token.kind == "keyword" and op_token.text == "and"
    ):
        raise ParseError(
            f"expected multiplicative op (*, + or and) at position "
            f"{op_token.pos}, got {op_token.text!r}"
        )
    measure_refs = _ident_list(cursor)
    cursor.expect("op", ")")
    cursor.expect("keyword", "from")
    tables = _ident_list(cursor)

    predicates: list[tuple[str, str]] = []
    if cursor.accept("keyword", "where"):
        while True:
            left = cursor.expect("ident").text
            cursor.expect("op", "=")
            right = cursor.expect("ident").text
            predicates.append((left, right))
            if not cursor.accept("keyword", "and"):
                break
    cursor.expect("op", ")")
    if not cursor.done():
        stray = cursor.peek()
        raise ParseError(
            f"trailing input at position {stray.pos}: {stray.text!r}"
        )
    return CreateViewStatement(
        name=name,
        variables=tuple(variables),
        multiplicative_op=op_token.text,
        measure_refs=tuple(measure_refs),
        tables=tuple(tables),
        join_predicates=tuple(predicates),
    )


_AGGREGATES = ("sum", "min", "max", "or", "count")
_HAVING_OPS = ("<", "<=", ">", ">=", "=", "==", "!=")


def parse_create_index(sql: str) -> CreateIndexStatement:
    """Parse ``create index on <table> ( <variable> )``."""
    cursor = _Cursor(sql)
    cursor.expect("keyword", "create")
    cursor.expect("keyword", "index")
    cursor.expect("keyword", "on")
    table = cursor.expect("ident").text
    cursor.expect("op", "(")
    variable = cursor.expect("ident").text
    cursor.expect("op", ")")
    if not cursor.done():
        stray = cursor.peek()
        raise ParseError(
            f"trailing input at position {stray.pos}: {stray.text!r}"
        )
    return CreateIndexStatement(table=table, variable=variable)


def parse_select(sql: str) -> SelectStatement:
    """Parse an MPF ``select`` query."""
    cursor = _Cursor(sql)
    cursor.expect("keyword", "select")

    group_by_head: list[str] = []
    aggregate = None
    measure_ref = None
    while True:
        token = cursor.expect("ident")
        if cursor.accept("op", "("):
            if token.text.lower() not in _AGGREGATES:
                raise ParseError(
                    f"unknown aggregate {token.text!r} at position "
                    f"{token.pos}; expected one of {_AGGREGATES}"
                )
            aggregate = token.text.lower()
            measure_ref = cursor.expect("ident").text
            cursor.expect("op", ")")
            break
        group_by_head.append(token.text)
        cursor.expect("op", ",")

    cursor.expect("keyword", "from")
    view = cursor.expect("ident").text

    selections: dict[str, float] = {}
    if cursor.accept("keyword", "where"):
        while True:
            var_name = cursor.expect("ident").text
            cursor.expect("op", "=")
            value = cursor.expect("number").text
            selections[var_name] = float(value) if "." in value else int(value)
            if not cursor.accept("keyword", "and"):
                break

    group_by: list[str] = []
    if cursor.accept("keyword", "group"):
        cursor.expect("keyword", "by")
        group_by = _ident_list(cursor)

    having = None
    if cursor.accept("keyword", "having"):
        cursor.expect("ident")  # the measure name, e.g. f or inv
        op_token = cursor.next()
        if op_token.text not in _HAVING_OPS:
            raise ParseError(
                f"expected comparison operator at position {op_token.pos}, "
                f"got {op_token.text!r}"
            )
        value = cursor.expect("number").text
        having = (op_token.text, float(value))

    if not cursor.done():
        stray = cursor.peek()
        raise ParseError(
            f"trailing input at position {stray.pos}: {stray.text!r}"
        )
    if group_by and group_by_head and group_by != group_by_head:
        raise ParseError(
            f"select list {group_by_head} disagrees with group by "
            f"{group_by}"
        )
    return SelectStatement(
        view=view,
        group_by=tuple(group_by or group_by_head),
        aggregate=aggregate,
        measure_ref=measure_ref,
        selections=selections,
        having=having,
    )


def parse_statement(
    sql: str,
) -> CreateViewStatement | CreateIndexStatement | SelectStatement:
    """Dispatch on the statement's leading keywords."""
    stripped = sql.strip().lower()
    if stripped.startswith("create"):
        rest = stripped[len("create"):].lstrip()
        if rest.startswith("index"):
            return parse_create_index(sql)
        return parse_create_mpfview(sql)
    if stripped.startswith("select"):
        return parse_select(sql)
    raise ParseError(
        "statement must start with 'create mpfview', 'create index', "
        "or 'select'"
    )
