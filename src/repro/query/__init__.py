"""MPF views, queries, and the SQL-extension parser."""

from repro.query.parser import (
    CreateIndexStatement,
    CreateViewStatement,
    SelectStatement,
    parse_create_mpfview,
    parse_select,
    parse_statement,
)
from repro.query.query import HavingClause, MPFQuery
from repro.query.view import MPFView

__all__ = [
    "MPFView",
    "MPFQuery",
    "HavingClause",
    "CreateViewStatement",
    "CreateIndexStatement",
    "SelectStatement",
    "parse_statement",
    "parse_create_mpfview",
    "parse_select",
]
