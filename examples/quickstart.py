"""Quickstart: functional relations, MPF views, and optimized queries.

Builds a three-table MPF view from scratch, runs the same query under
every evaluation strategy, and shows the plans the optimizers pick.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import Database
from repro.data import FunctionalRelation, var

def main() -> None:
    # ------------------------------------------------------------------
    # 1. Functional relations: variables determine a measure (Def. 1).
    #    A tiny product-rating scenario: products are made in factories,
    #    shipped through hubs; each edge carries a cost factor.
    # ------------------------------------------------------------------
    product = var("product", 4, labels=("anvil", "rocket", "magnet", "glue"))
    factory = var("factory", 3, labels=("fA", "fB", "fC"))
    hub = var("hub", 2, labels=("east", "west"))

    makes = FunctionalRelation.from_rows(
        [product, factory],
        [
            ("anvil", "fA", 12.0), ("anvil", "fB", 14.0),
            ("rocket", "fB", 90.0), ("rocket", "fC", 85.0),
            ("magnet", "fA", 7.0), ("magnet", "fC", 6.5),
            ("glue", "fA", 2.0), ("glue", "fB", 2.5), ("glue", "fC", 1.8),
        ],
        name="makes",
        measure_name="unit_cost",
    )
    ships = FunctionalRelation.from_rows(
        [factory, hub],
        [
            ("fA", "east", 1.10), ("fA", "west", 1.25),
            ("fB", "east", 1.05), ("fB", "west", 1.20),
            ("fC", "west", 1.15),
        ],
        name="ships",
        measure_name="ship_factor",
    )
    sells = FunctionalRelation.from_rows(
        [hub],
        [("east", 1.08), ("west", 1.02)],
        name="sells",
        measure_name="margin",
    )

    # ------------------------------------------------------------------
    # 2. Register tables and define the MPF view (the paper's SQL
    #    extension): the view measure is the product of the per-table
    #    measures along each product->factory->hub path.
    # ------------------------------------------------------------------
    db = Database()
    for rel in (makes, ships, sells):
        db.register(rel)

    db.execute(
        """
        create mpfview landed as
          (select product, factory, hub,
                  measure = (* makes.unit_cost, ships.ship_factor,
                               sells.margin)
           from makes, ships, sells
           where makes.factory = ships.factory and ships.hub = sells.hub)
        """
    )

    # ------------------------------------------------------------------
    # 3. MPF queries.  The aggregate picks the semiring's additive op:
    #    min over the multiplicative measure = cheapest supply path.
    # ------------------------------------------------------------------
    print("=== Cheapest landed cost per product (min ∘ product) ===")
    report = db.execute(
        "select product, min(cost) from landed group by product"
    )
    for row in report.result.iter_rows(labels=True):
        print(f"  {row[0]:8s} {row[1]:8.2f}")

    print("\n=== Total landed mass per hub (sum ∘ product) ===")
    report = db.execute("select hub, sum(cost) from landed group by hub")
    for row in report.result.iter_rows(labels=True):
        print(f"  {row[0]:6s} {row[1]:8.2f}")

    # Constrained domain: condition on factory fB going offline is the
    # complement — here, what flows through fB (where clause).
    print("\n=== Mass through factory fB only ===")
    report = db.execute(
        "select hub, sum(cost) from landed where factory = 1 group by hub"
    )
    for row in report.result.iter_rows(labels=True):
        print(f"  {row[0]:6s} {row[1]:8.2f}")

    # ------------------------------------------------------------------
    # 4. Every evaluation strategy returns the same answer; the plans
    #    and search effort differ (Section 5).
    # ------------------------------------------------------------------
    print("\n=== Strategy comparison for `group by product` ===")
    sql = "select product, sum(cost) from landed group by product"
    for strategy in ("cs", "cs+", "cs+nonlinear", "ve", "ve+"):
        report = db.execute(sql, strategy=strategy)
        opt = report.optimization
        print(
            f"  {opt.algorithm:16s} est_cost={opt.cost:10.1f} "
            f"plans_considered={opt.plans_considered:4d} "
            f"sim_elapsed={report.exec_stats.elapsed():10.1f}"
        )

    print("\n=== The CS plan (single root GroupBy — Figure 3 shape) ===")
    print(db.explain_query(sql, strategy="cs"))
    print("\n=== The VE+ plan (pushed GroupBys) ===")
    print(db.explain_query(sql, strategy="ve+"))


if __name__ == "__main__":
    main()
