"""Probabilistic inference as MPF query evaluation (Section 4).

* Reproduces the paper's Figure 2 network and its example inference
  query ``select C, SUM(p) from joint where A=0 group by C``.
* Runs posterior, MAP, and cached-workload inference on the classic
  sprinkler network, verified against brute force.
* Closes the loop of Section 4's parameter-estimation remark: samples
  data from the network, recovers CPTs from counts, and checks the
  rebuilt model answers queries like the original.

Run:  python examples/bayesian_inference.py
"""

from __future__ import annotations

import numpy as np

from repro.bayes import (
    CPD,
    BayesianNetwork,
    BruteForceInference,
    MPFInference,
    figure2_network,
    sprinkler_network,
)


def figure2_demo() -> None:
    print("=== Figure 2: Pr(A,B,C,D) = Pr(A)Pr(B|A)Pr(C|A)Pr(D|B,C) ===")
    bn = figure2_network()
    mpf = MPFInference(bn)

    print("MPF query: select C, SUM(p) from joint where A=0 group by C")
    posterior = mpf.query("C", evidence={"A": 0})
    for row in posterior.iter_rows():
        print(f"  Pr(C={row[0]} | A=0) = {row[1]:.4f}")

    print("Unconditional marginal of D:")
    for row in mpf.query("D").iter_rows():
        print(f"  Pr(D={row[0]}) = {row[1]:.4f}")


def sprinkler_demo() -> None:
    print("\n=== Sprinkler network: posteriors, MAP, and caching ===")
    bn = sprinkler_network()
    mpf = MPFInference(bn)
    oracle = BruteForceInference(bn)

    posterior = mpf.query("rain", evidence={"wet_grass": "wet"})
    check = oracle.query("rain", evidence={"wet_grass": 1})
    print("Pr(rain | grass wet):")
    for row in posterior.iter_rows(labels=True):
        print(f"  {row[0]:>4s}: {row[1]:.4f}")
    agrees = np.allclose(sorted(posterior.measure), sorted(check.measure))
    print(f"  (matches brute force: {agrees})")

    print("Max-product (MPE) over sprinkler given wet grass:")
    mm = mpf.map_query(["sprinkler"], evidence={"wet_grass": 1})
    for row in mm.iter_rows(labels=True):
        print(f"  best completion with sprinkler={row[0]}: p={row[1]:.4f}")

    print("Workload path: calibrate a VE-cache once, answer every "
          "marginal from it:")
    cache = mpf.build_cache()
    for v in bn.variable_names:
        got = mpf.query_cached(cache, v)
        direct = mpf.query(v)
        mark = "ok" if np.allclose(
            sorted(got.measure), sorted(direct.measure)
        ) else "MISMATCH"
        values = ", ".join(f"{m:.3f}" for m in got.measure)
        print(f"  Pr({v}) = [{values}]  [{mark}]")


def estimation_round_trip() -> None:
    print("\n=== Parameter estimation from sampled data (Section 4) ===")
    truth = sprinkler_network()
    n = 50_000
    samples = truth.sample(n, np.random.default_rng(7))
    print(f"sampled {n:,} joint assignments by ancestral sampling")

    rebuilt_cpds = []
    for name in truth.variable_names:
        cpd = truth.cpd(name)
        shape = tuple(p.size for p in cpd.parents) + (cpd.variable.size,)
        counts = np.zeros(shape)
        index = tuple(samples[p.name] for p in cpd.parents) + (
            samples[name],
        )
        np.add.at(counts, index, 1)
        rebuilt_cpds.append(
            CPD.from_counts(cpd.variable, cpd.parents, counts, prior=1.0)
        )
    rebuilt = BayesianNetwork(rebuilt_cpds)

    truth_ans = MPFInference(truth).query("rain", evidence={"wet_grass": 1})
    rebuilt_ans = MPFInference(rebuilt).query(
        "rain", evidence={"wet_grass": 1}
    )
    print("Pr(rain=yes | wet):  true model "
          f"{float(truth_ans.value_at({'rain': 1})):.4f}  vs  re-estimated "
          f"{float(rebuilt_ans.value_at({'rain': 1})):.4f}")


def structure_learning_demo() -> None:
    print("\n=== Structure learning from MPF counts ===")
    from repro.bayes import greedy_hill_climb, samples_to_relation

    truth = sprinkler_network()
    samples = truth.sample(40_000, np.random.default_rng(21))
    variables = [truth.variable(n) for n in truth.variable_names]
    data = samples_to_relation(samples, variables)
    result = greedy_hill_climb(data, variables, max_parents=2)
    print(f"greedy BIC hill climb: {result.iterations} moves, "
          f"score {result.score:,.1f}")
    for move, score in result.trace:
        print(f"  {move:28s} -> {score:,.1f}")
    print("learned families:")
    for variable, parents in result.structure:
        parent_names = ", ".join(p.name for p in parents) or "∅"
        print(f"  P({variable.name} | {parent_names})")


if __name__ == "__main__":
    figure2_demo()
    sprinkler_demo()
    estimation_round_trip()
    structure_learning_demo()
