"""Batch execution with plan-DAG sharing (Section 6, physically).

Submits a batch of overlapping MPF queries through
``Database.run_batch``: all chosen plans are lowered into one
common-subexpression-eliminated DAG and evaluated through a single
``ExecutionContext``, so shared subplans — repeated base-table scans,
common join/aggregation prefixes, even wholly repeated queries —
execute once and later queries are served from the runtime memo.

The script contrasts the batch against running the same queries
independently, and shows the per-query incremental stats (shared work
is paid by the first query that needs it).

Run:  python examples/batch_workload.py
"""

from __future__ import annotations

from repro import Database
from repro.datagen import supply_chain
from repro.query import MPFQuery, MPFView
from repro.semiring import SUM_PRODUCT

VIEW_TABLES = (
    "contracts", "warehouses", "transporters", "location", "ctdeals",
)


def make_database() -> Database:
    sc = supply_chain(scale=0.02, seed=7)
    db = Database()
    for t in sc.tables:
        db.register(sc.catalog.relation(t))
    db.create_view("invest", VIEW_TABLES)
    return db


def make_queries(db: Database) -> list[MPFQuery]:
    view = MPFView("invest", VIEW_TABLES, SUM_PRODUCT)
    return [
        MPFQuery(view, ("wid",)),
        MPFQuery(view, ("cid",)),
        MPFQuery(view, ("wid",)),            # exact repeat → memo hit
        MPFQuery(view, ("cid",), selections={"tid": 0}),
    ]


def main() -> None:
    print("=== Independent runs (fresh pool per query) ===")
    reads = elapsed = 0
    for query in make_queries(make_database()):
        db = make_database()  # cold cache each time
        report = db.run_query(query)
        reads += report.exec_stats.page_reads
        elapsed += report.exec_stats.elapsed()
        print(f"  {query.group_by}{dict(query.selections) or ''}: "
              f"{report.exec_stats.summary()}")
    print(f"  total: reads={reads} elapsed={elapsed:,.0f}")

    print("\n=== One batch, one shared DAG ===")
    db = make_database()
    batch = db.run_batch(make_queries(db))
    for query, report in zip(make_queries(db), batch.reports):
        print(f"  {query.group_by}{dict(query.selections) or ''}: "
              f"{report.exec_stats.summary()}")
    print(f"  {batch.summary()}")
    print(f"  shared subplans: {batch.shared_subplans}, "
          f"memo hits: {batch.memo_hits}")
    print(f"  batch elapsed: {batch.stats.elapsed():,.0f} "
          f"(vs {elapsed:,.0f} independent)")


if __name__ == "__main__":
    main()
