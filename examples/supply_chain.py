"""Decision support on the paper's supply-chain schema (Section 3).

Generates the Figure 1 schema at a configurable scale, defines the
``invest`` MPF view, and runs the paper's example queries:

* "What is the minimum investment on each part?"            (basic)
* "How much would it cost for warehouse w1 to go off-line?"
                                                 (restricted answer)
* "How much money would each contractor lose if transporter t1 went
  off-line?"                                    (constrained domain)
* a constrained-range variant with ``having``.

Also demonstrates the Eq. 1 plan-linearity test driving the choice
between linear and nonlinear plans.

Run:  python examples/supply_chain.py [scale]
"""

from __future__ import annotations

import sys

from repro import Database
from repro.datagen import supply_chain
from repro.optimizer import linearity_test

CREATE_INVEST = """
create mpfview invest as
  (select pid, sid, wid, cid, tid,
          measure = (* contracts.price, warehouses.w_factor,
                       transporters.t_overhead, location.quantity,
                       ctdeals.ct_discount)
   from contracts, warehouses, transporters, location, ctdeals
   where contracts.pid = location.pid and
         location.wid = warehouses.wid and
         warehouses.cid = ctdeals.cid and
         ctdeals.tid = transporters.tid)
"""


def main(scale: float = 0.01) -> None:
    print(f"Generating supply chain at scale {scale} "
          "(1.0 = the paper's Table 1) ...")
    sc = supply_chain(scale=scale, seed=42)
    db = Database()
    for t in sc.tables:
        relation = sc.catalog.relation(t)
        db.register(relation)
        stats = sc.catalog.stats(t)
        print(f"  {t:13s} {int(stats.cardinality):>9,} tuples  "
              f"vars={list(stats.variables)}")
    db.execute(CREATE_INVEST)

    # ------------------------------------------------------------------
    print("\nQ: What is the minimum investment on each part? (first 5)")
    report = db.execute("select pid, min(inv) from invest group by pid")
    for row in list(report.result.iter_rows())[:5]:
        print(f"  part {row[0]:>4}: {row[1]:10.2f}")
    print(f"  [{report.result.ntuples} parts; "
          f"{report.optimization.algorithm}, "
          f"est cost {report.optimization.cost:.3g}]")

    # ------------------------------------------------------------------
    print("\nQ: How much would it cost for warehouse 1 to go off-line?")
    report = db.execute(
        "select wid, sum(inv) from invest where wid = 1 group by wid"
    )
    for row in report.result.iter_rows():
        print(f"  warehouse {row[0]}: {row[1]:,.2f}")

    # ------------------------------------------------------------------
    print("\nQ: How much would each contractor lose if transporter 1 "
          "went off-line?")
    report = db.execute(
        "select cid, sum(inv) from invest where tid = 1 group by cid"
    )
    for row in list(report.result.iter_rows())[:5]:
        print(f"  contractor {row[0]:>3}: {row[1]:,.2f}")

    # ------------------------------------------------------------------
    print("\nQ (constrained range): warehouses with total investment "
          "above the median")
    full = db.execute("select wid, sum(inv) from invest group by wid")
    median = float(sorted(full.result.measure)[full.result.ntuples // 2])
    report = db.execute(
        f"select wid, sum(inv) from invest group by wid having f > {median:.4f}"
    )
    print(f"  {report.result.ntuples} of {full.result.ntuples} warehouses "
          f"exceed {median:,.2f}")

    # ------------------------------------------------------------------
    print("\nEq. 1 plan-linearity test (Section 5.1):")
    for v in ("cid", "tid", "wid", "pid", "sid"):
        print(f"  {linearity_test(db.catalog, v)}")

    print("\nStrategy shoot-out for `group by cid` "
          "(the nonlinear-friendly query):")
    sql = "select cid, sum(inv) from invest group by cid"
    for strategy in ("cs", "cs+", "cs+nonlinear", "ve", "ve+"):
        report = db.execute(sql, strategy=strategy)
        opt = report.optimization
        print(
            f"  {opt.algorithm:16s} est={opt.cost:12.4g}  "
            f"sim_elapsed={report.exec_stats.elapsed():12.4g}  "
            f"planning={opt.planning_seconds * 1e3:7.2f} ms"
        )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.01)
