"""Workload optimization: BP, junction trees, and VE-cache (Section 6).

* Prints the exact Figure 11 BP semijoin program on the acyclic
  supply-chain schema and verifies the Definition 5 invariant.
* Shows the Figure 12 failure: the literal Algorithm 4 program
  double-counts on the cyclic (stdeals) schema.
* Triangulates the cyclic schema with the paper's ``tid, sid`` order
  (Figure 14) and prints the Figure 15 junction tree.
* Builds a VE-cache, answers the workload queries from it, and
  compares the Workload Problem objective against re-optimizing every
  query from base tables.

Run:  python examples/workload_cache.py
"""

from __future__ import annotations

from repro.datagen import supply_chain
from repro.optimizer import CSPlusNonlinear
from repro.semiring import SUM_PRODUCT
from repro.workload import (
    MPFWorkload,
    baseline_objective,
    belief_propagation,
    bp_program_literal,
    build_junction_tree,
    build_ve_cache,
    cache_objective,
    satisfies_workload_invariant,
)

FIGURE11_ORDER = [
    "transporters", "ctdeals", "warehouses", "location", "contracts",
]


def bp_demo() -> None:
    print("=== Belief propagation on the acyclic schema (Figure 11) ===")
    sc = supply_chain(scale=0.004, seed=7)
    rels = {t: sc.catalog.relation(t) for t in FIGURE11_ORDER}
    result = belief_propagation(rels, SUM_PRODUCT, root="contracts")
    print(result.program_listing())
    ok = satisfies_workload_invariant(
        result.tables, list(rels.values()), SUM_PRODUCT
    )
    print(f"Definition 5 invariant holds: {ok}")

    print("\n=== The Figure 12 failure on the cyclic schema ===")
    sc2 = supply_chain(scale=0.004, seed=7, include_stdeals=True)
    order = ["transporters", "stdeals", "ctdeals", "warehouses",
             "location", "contracts"]
    rels2 = {t: sc2.catalog.relation(t) for t in order}
    literal = bp_program_literal(rels2, SUM_PRODUCT, order)
    print(literal.program_listing())
    ok2 = satisfies_workload_invariant(
        literal.tables, list(rels2.values()), SUM_PRODUCT
    )
    print(f"invariant holds on cyclic schema: {ok2}  "
          "(transporters' measure was propagated twice — Figure 12)")


def junction_demo() -> None:
    print("\n=== Junction tree for the cyclic schema "
          "(Figures 14 & 15) ===")
    sc = supply_chain(scale=0.004, seed=7, include_stdeals=True)
    relations = [sc.catalog.relation(t) for t in sc.tables]
    jt = build_junction_tree(relations, SUM_PRODUCT, order=["tid", "sid"])
    print(f"triangulation fill edges: {list(jt.triangulation.fill_edges)}")
    print("clique schema (Figure 15):")
    for name, rel in jt.cliques.items():
        members = sorted(
            t for t, c in jt.assignment.items() if c == name
        )
        print(f"  {name}{tuple(rel.var_names)}  <- {members}")
    print(f"tree edges: {sorted(jt.tree.edges)}")

    bp = belief_propagation(jt.cliques, SUM_PRODUCT, tree=jt.tree)
    ok = satisfies_workload_invariant(bp.tables, relations, SUM_PRODUCT)
    print(f"BP over the junction tree restores the invariant: {ok}")


def vecache_demo() -> None:
    print("\n=== VE-cache (Algorithm 3) and the Workload Problem ===")
    sc = supply_chain(scale=0.01, seed=42)
    relations = [sc.catalog.relation(t) for t in sc.tables]

    cache = build_ve_cache(
        relations, SUM_PRODUCT, order=["tid", "pid", "cid"]
    )
    print(f"elimination order: {cache.elimination_order}")
    print("cached tables (maximal scopes, the paper's t1/t2/t3):")
    for name, rel in cache.maximal_tables().items():
        print(f"  {name}{tuple(rel.var_names)}: {rel.ntuples:,} tuples")

    print("\nsingle-variable queries answered from the cache:")
    for v in ("wid", "cid", "tid"):
        answer = cache.answer(v)
        total = float(answer.measure.sum())
        print(f"  sum over {v:3s}: {answer.ntuples:5d} groups, "
              f"total {total:,.1f}")

    print("\nconstrained-domain protocol (where tid=1):")
    conditioned = cache.absorb_evidence({"tid": 1})
    answer = conditioned.answer("wid")
    print(f"  {answer.ntuples} warehouse groups under the evidence")

    workload = MPFWorkload.uniform(["pid", "sid", "wid", "cid", "tid"])
    with_cache = cache_objective(cache, workload)
    without = baseline_objective(
        sc.catalog, sc.tables, workload, CSPlusNonlinear()
    )
    print("\nMPF Workload Problem objective "
          "(C(S) + E[cost(Q(q,S))], cost units):")
    print(f"  VE-cache:          {with_cache:16,.1f}")
    print(f"  re-optimize always:{without:16,.1f}")
    print(f"  cache advantage:   {without / with_cache:8.1f}x")


if __name__ == "__main__":
    bp_demo()
    junction_demo()
    vecache_demo()
