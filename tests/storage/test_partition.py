"""Unit tests for the hash-partitioning primitive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import complete_relation, var
from repro.errors import CatalogError
from repro.storage.partition import (
    PartitionSpec,
    concat_relations,
    partition_relation,
    shard_assignments,
)


def _rel(name="r", na=7, nb=5, seed=3):
    rng = np.random.default_rng(seed)
    return complete_relation(
        [var("a", na), var("b", nb)], rng=rng, name=name
    )


class TestShardAssignments:
    def test_deterministic_and_in_range(self):
        codes = np.arange(1000, dtype=np.int64)
        got = shard_assignments(codes, 7)
        again = shard_assignments(codes.copy(), 7)
        assert np.array_equal(got, again)
        assert got.min() >= 0 and got.max() < 7

    def test_spreads_buckets(self):
        # Fibonacci hashing over a contiguous code range must not
        # collapse into one bucket.
        codes = np.arange(64, dtype=np.int64)
        counts = np.bincount(shard_assignments(codes, 4), minlength=4)
        assert (counts > 0).all()

    def test_independent_of_worker_anything(self):
        # The bucket function depends only on (codes, shards): same
        # input, same buckets, across any process or call site.
        codes = np.array([0, 1, 2, 3, 10**9], dtype=np.int64)
        expected = shard_assignments(codes, 3)
        for _ in range(3):
            assert np.array_equal(shard_assignments(codes, 3), expected)


class TestPartitionSpec:
    def test_rejects_single_shard(self):
        with pytest.raises(CatalogError):
            PartitionSpec("a", 1)

    def test_str(self):
        assert str(PartitionSpec("b", 4)) == "hash(b) % 4"


class TestPartitionRelation:
    def test_rows_partition_exactly(self):
        rel = _rel()
        parts = partition_relation(rel, "a", 3)
        assert len(parts) == 3
        assert sum(p.ntuples for p in parts) == rel.ntuples
        # Every row lands in the shard its key code hashes to.
        for shard, part in enumerate(parts):
            codes = part.columns["a"]
            assert (shard_assignments(codes, 3) == shard).all()

    def test_unknown_key_raises(self):
        with pytest.raises(CatalogError):
            partition_relation(_rel(), "zzz", 3)

    def test_roundtrip_through_concat(self):
        rel = _rel()
        parts = partition_relation(rel, "b", 4)
        merged = concat_relations(parts, name=rel.name)
        k0, m0 = rel.sorted_snapshot()
        k1, m1 = merged.sorted_snapshot()
        assert np.array_equal(k0, k1)
        assert np.array_equal(m0, m1)


class TestConcatRelations:
    def test_empty_input_raises(self):
        with pytest.raises(CatalogError):
            concat_relations([])

    def test_mismatched_schemas_raise(self):
        rng = np.random.default_rng(0)
        r1 = complete_relation([var("a", 2), var("b", 2)], rng=rng)
        r2 = complete_relation([var("a", 2), var("c", 2)], rng=rng)
        with pytest.raises(CatalogError):
            concat_relations([r1, r2])

    def test_single_part_short_circuits(self):
        rel = _rel()
        assert concat_relations([rel]) is rel


class TestCatalogPartitioning:
    def test_partition_table_and_shard_files(self):
        from repro.catalog.catalog import Catalog

        catalog = Catalog()
        catalog.register(_rel(name="t"), "t")
        assert not catalog.has_partitions
        spec = catalog.partition_table("t", "a", 3)
        assert catalog.has_partitions
        assert catalog.partition_spec("t") == spec
        assert catalog.partitioned_tables == ("t",)
        shards = catalog.shard_relations("t")
        files = catalog.shard_heapfiles("t")
        assert len(shards) == len(files) == 3
        assert sum(s.ntuples for s in shards) == catalog.relation("t").ntuples
        # Shard heap files have distinct ids, none colliding with the
        # base table's.
        ids = {f.file_id for f in files} | {catalog.heapfile("t").file_id}
        assert len(ids) == 4

    def test_unpartitioned_lookups_raise(self):
        from repro.catalog.catalog import Catalog

        catalog = Catalog()
        catalog.register(_rel(name="t"), "t")
        assert catalog.partition_spec("t") is None
        with pytest.raises(CatalogError):
            catalog.shard_relations("t")
        with pytest.raises(CatalogError):
            catalog.shard_heapfiles("t")

    def test_unknown_key_raises(self):
        from repro.catalog.catalog import Catalog

        catalog = Catalog()
        catalog.register(_rel(name="t"), "t")
        with pytest.raises(CatalogError):
            catalog.partition_table("t", "zzz", 3)

    def test_replace_repartitions_fresh_data(self):
        from repro.catalog.catalog import Catalog

        catalog = Catalog()
        catalog.register(_rel(name="t", seed=1), "t")
        catalog.partition_table("t", "a", 3)
        fresh = _rel(name="t", seed=2)
        catalog.replace(fresh, "t")
        # Spec survives and the shards hold the *new* rows.
        assert catalog.partition_spec("t") == PartitionSpec("a", 3)
        shards = catalog.shard_relations("t")
        merged = concat_relations(shards, name="t")
        k0, m0 = fresh.sorted_snapshot()
        k1, m1 = merged.sorted_snapshot()
        assert np.array_equal(k0, k1)
        assert np.array_equal(m0, m1)


class TestShardAssignmentProperties:
    """Hypothesis: the shard map is a stable, total function.

    Every code maps to exactly one shard in ``[0, shards)`` for any
    shard count >= 1, and the mapping depends only on the code — not
    on the surrounding array, the process, or any seed.
    """

    @given(
        codes=st.lists(
            st.integers(min_value=0, max_value=2**31 - 1),
            min_size=1, max_size=200,
        ),
        shards=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=200, deadline=None)
    def test_total_stable_and_in_range(self, codes, shards):
        arr = np.asarray(codes, dtype=np.int64)
        got = shard_assignments(arr, shards)
        # Total: one shard per value, always in range.
        assert got.shape == arr.shape
        assert got.min() >= 0 and got.max() < shards
        # Stable: recomputing yields the same map, and each value's
        # shard is independent of its neighbours (pointwise equals
        # whole-array).
        assert np.array_equal(got, shard_assignments(arr.copy(), shards))
        pointwise = [
            shard_assignments(np.asarray([c], dtype=np.int64), shards)[0]
            for c in codes
        ]
        assert np.array_equal(got, np.asarray(pointwise, dtype=np.int64))

    def test_golden_values_pin_process_independence(self):
        # Hard-coded expected shards: Fibonacci hashing is a pure
        # function of (code, shards), so these values must never
        # change across runs, processes, or platforms.  A failure
        # here means existing partitioned data would be mis-routed.
        codes = np.asarray([0, 1, 2, 3, 1000, 2**31 - 1], dtype=np.int64)
        assert shard_assignments(codes, 1).tolist() == [0, 0, 0, 0, 0, 0]
        assert shard_assignments(codes, 3).tolist() == [0, 1, 1, 0, 2, 2]
        assert shard_assignments(codes, 7).tolist() == [0, 6, 4, 4, 3, 1]
