"""Write-ahead log: framing, torn tails, crash injection."""

import struct

import pytest

from repro.errors import RecoveryError, StorageError
from repro.storage import (
    CRASH_POINTS,
    CrashInjector,
    InjectedCrash,
    PageId,
    PageImage,
    ReplayResult,
    WriteAheadLog,
    page_crc,
    replay_wal,
    wal_path,
)
from repro.storage.wal import WAL_CHECKPOINT, WAL_PAGE, WAL_QUERY, WAL_STEP


class TestRecordRoundTrip:
    def test_all_kinds_replay(self, tmp_path):
        path = wal_path(str(tmp_path))
        with WriteAheadLog(path) as wal:
            wal.log_page(PageId(3, 7))
            wal.log_checkpoint("chk-00000001.ckpt")
            wal.log_unit(WAL_QUERY, '{"key": "q"}')
            wal.log_unit(WAL_STEP, '{"key": "s"}')
        replay = replay_wal(path)
        assert not replay.torn_tail
        kinds = [r.kind for r in replay.records]
        assert kinds == [WAL_PAGE, WAL_CHECKPOINT, WAL_QUERY, WAL_STEP]
        assert replay.records[0].page_id() == PageId(3, 7)
        assert replay.records[1].text() == "chk-00000001.ckpt"
        assert replay.records[2].text() == '{"key": "q"}'

    def test_lsns_are_byte_offsets(self, tmp_path):
        path = wal_path(str(tmp_path))
        with WriteAheadLog(path) as wal:
            first = wal.log_page(PageId(1, 0))
            second = wal.log_page(PageId(1, 1))
        assert first == 0
        assert second > first
        replay = replay_wal(path)
        assert [r.lsn for r in replay.records] == [first, second]
        assert replay.valid_bytes == second + (second - first)

    def test_append_resumes_at_end(self, tmp_path):
        path = wal_path(str(tmp_path))
        with WriteAheadLog(path) as wal:
            wal.log_page(PageId(1, 0))
            end = wal.position
        with WriteAheadLog(path) as wal:
            assert wal.position == end
            wal.log_page(PageId(1, 1))
        assert len(replay_wal(path).records) == 2

    def test_unit_kind_is_validated(self, tmp_path):
        with WriteAheadLog(wal_path(str(tmp_path))) as wal:
            with pytest.raises(StorageError):
                wal.log_unit(WAL_PAGE, "nope")


class TestDegenerateLogs:
    def test_missing_file_is_empty_replay(self, tmp_path):
        replay = replay_wal(wal_path(str(tmp_path)))
        assert replay == ReplayResult((), 0, False)

    def test_empty_file_is_empty_replay(self, tmp_path):
        path = wal_path(str(tmp_path))
        open(path, "wb").close()
        replay = replay_wal(path)
        assert replay.records == ()
        assert not replay.torn_tail


class TestTornTails:
    def _two_record_log(self, tmp_path):
        path = wal_path(str(tmp_path))
        with WriteAheadLog(path) as wal:
            wal.log_page(PageId(1, 0))
            tear_at = wal.position
            wal.log_unit(WAL_QUERY, '{"key": "q"}')
        return path, tear_at

    def test_truncated_tail_is_discarded_not_fatal(self, tmp_path):
        path, tear_at = self._two_record_log(tmp_path)
        with open(path, "r+b") as fh:
            fh.truncate(tear_at + 3)  # mid-header of the second record
        replay = replay_wal(path)
        assert replay.torn_tail
        assert len(replay.records) == 1
        assert replay.valid_bytes == tear_at

    def test_corrupted_payload_crc_tears(self, tmp_path):
        path, tear_at = self._two_record_log(tmp_path)
        with open(path, "r+b") as fh:
            fh.seek(tear_at + 12)  # inside the second record's payload
            fh.write(b"\xff")
        replay = replay_wal(path)
        assert replay.torn_tail
        assert len(replay.records) == 1

    def test_bad_magic_tears(self, tmp_path):
        path, tear_at = self._two_record_log(tmp_path)
        with open(path, "r+b") as fh:
            fh.seek(tear_at)
            fh.write(b"\x00")
        replay = replay_wal(path)
        assert replay.torn_tail
        assert len(replay.records) == 1


class TestCrashDuringAppend:
    def test_crash_at_wal_append_leaves_torn_record(self, tmp_path):
        path = wal_path(str(tmp_path))
        wal = WriteAheadLog(path, crash=CrashInjector("wal.append"))
        with pytest.raises(InjectedCrash):
            wal.log_page(PageId(1, 0))
        replay = replay_wal(path)
        assert replay.records == ()
        assert replay.torn_tail  # half a record made it to disk

    def test_crash_at_wal_flush_record_is_durable(self, tmp_path):
        path = wal_path(str(tmp_path))
        wal = WriteAheadLog(path, crash=CrashInjector("wal.flush"))
        with pytest.raises(InjectedCrash):
            wal.log_page(PageId(1, 0))
        replay = replay_wal(path)
        assert len(replay.records) == 1
        assert not replay.torn_tail


class TestCrashInjector:
    def test_unknown_point_rejected(self):
        with pytest.raises(StorageError):
            CrashInjector("warp.core")

    def test_negative_after_rejected(self):
        with pytest.raises(StorageError):
            CrashInjector("wal.flush", after=-1)

    def test_fires_once_then_disarms(self):
        crash = CrashInjector("batch.query")
        with pytest.raises(InjectedCrash):
            crash.reach("batch.query")
        assert crash.fired
        crash.reach("batch.query")  # no second crash

    def test_after_skips_earlier_hits(self):
        crash = CrashInjector("batch.query", after=2)
        crash.reach("batch.query")
        crash.reach("batch.query")
        with pytest.raises(InjectedCrash):
            crash.reach("batch.query")
        assert crash.counts["batch.query"] == 3

    def test_seeded_is_deterministic_and_valid(self):
        for seed in range(20):
            a = CrashInjector.seeded(seed)
            b = CrashInjector.seeded(seed)
            assert a.crash_point == b.crash_point
            assert a.after == b.after
            assert a.crash_point in CRASH_POINTS


class TestPageImages:
    def test_round_trip(self):
        image = PageImage(PageId(5, 2), b"hello world")
        rebuilt, offset = PageImage.decode(image.encode())
        assert rebuilt == image
        assert offset == len(image.encode())

    def test_crc_matches_payload(self):
        image = PageImage(PageId(1, 1), b"abc")
        assert page_crc(b"abc") == struct.unpack_from(
            "<qqII", image.encode()
        )[3]

    def test_torn_header_raises(self):
        with pytest.raises(RecoveryError):
            PageImage.decode(b"\x01\x02\x03")

    def test_torn_payload_raises(self):
        buf = PageImage(PageId(1, 1), b"abcdef").encode()
        with pytest.raises(RecoveryError):
            PageImage.decode(buf[:-2])

    def test_corrupt_payload_raises_checksum_mismatch(self):
        buf = bytearray(PageImage(PageId(1, 1), b"abcdef").encode())
        buf[-1] ^= 0xFF
        with pytest.raises(RecoveryError, match="checksum mismatch"):
            PageImage.decode(bytes(buf))
