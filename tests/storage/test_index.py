"""Tests for hash indexes and index-based access paths."""

import pytest

from repro.catalog import Catalog
from repro.data import complete_relation, random_relation, var
from repro.errors import CatalogError, PlanError, StorageError
from repro.plans import IndexScan, Scan, Select, annotate, execute
from repro.semiring import SUM_PRODUCT
from repro.storage import BufferPool, IOStats
from repro.storage.index import HashIndex


@pytest.fixture
def indexed_catalog(rng):
    cat = Catalog()
    cat.register(
        random_relation([var("a", 50), var("b", 40)], 0.5, rng, name="big")
    )
    cat.create_index("big", "a")
    return cat


class TestHashIndex:
    def test_lookup_returns_matching_rows(self, rng):
        rel = random_relation([var("a", 10), var("b", 10)], 0.8, rng,
                              name="r")
        index = HashIndex(99, rel, "a")
        pool, stats = BufferPool(), IOStats()
        rows = index.lookup(3, pool, stats)
        assert set(rel.columns["a"][rows]) <= {3}
        expected = int((rel.columns["a"] == 3).sum())
        assert len(rows) == expected

    def test_lookup_charges_io(self, rng):
        rel = random_relation([var("a", 10), var("b", 10)], 0.8, rng,
                              name="r")
        index = HashIndex(99, rel, "a")
        pool, stats = BufferPool(), IOStats()
        index.lookup(3, pool, stats)
        assert stats.page_reads >= 1

    def test_repeated_probe_hits_cache(self, rng):
        rel = random_relation([var("a", 10), var("b", 10)], 0.8, rng,
                              name="r")
        index = HashIndex(99, rel, "a")
        pool = BufferPool()
        first, second = IOStats(), IOStats()
        index.lookup(3, pool, first)
        index.lookup(3, pool, second)
        assert second.page_reads == 0
        assert second.buffer_hits >= 1

    def test_missing_key(self, rng):
        rel = random_relation([var("a", 10)], 0.3, rng, name="r")
        index = HashIndex(99, rel, "a")
        pool, stats = BufferPool(), IOStats()
        absent = next(
            code for code in range(10)
            if code not in set(rel.columns["a"].tolist())
        )
        assert len(index.lookup(absent, pool, stats)) == 0

    def test_unknown_variable_rejected(self, rng):
        rel = random_relation([var("a", 4)], 1.0, rng, name="r")
        with pytest.raises(StorageError):
            HashIndex(1, rel, "zzz")


class TestCatalogIndexes:
    def test_create_and_lookup(self, indexed_catalog):
        assert indexed_catalog.index_on("big", "a") is not None
        assert indexed_catalog.index_on("big", "b") is None

    def test_duplicate_rejected(self, indexed_catalog):
        with pytest.raises(CatalogError):
            indexed_catalog.create_index("big", "a")

    def test_unknown_table(self, indexed_catalog):
        with pytest.raises(CatalogError):
            indexed_catalog.create_index("ghost", "a")


class TestIndexScanNode:
    def test_single_predicate_required(self):
        with pytest.raises(PlanError):
            IndexScan("t", {"a": 1, "b": 2})

    def test_execute_matches_select_scan(self, indexed_catalog):
        probe = IndexScan("big", {"a": 7})
        filtered = Select(Scan("big"), {"a": 7})
        got, _ = execute(probe, indexed_catalog, SUM_PRODUCT)
        expected, _ = execute(filtered, indexed_catalog, SUM_PRODUCT)
        assert got.equals(expected, SUM_PRODUCT)

    def test_index_scan_reads_fewer_pages(self, indexed_catalog):
        probe = IndexScan("big", {"a": 7})
        filtered = Select(Scan("big"), {"a": 7})
        _, probe_stats = execute(probe, indexed_catalog, SUM_PRODUCT)
        _, scan_stats = execute(filtered, indexed_catalog, SUM_PRODUCT)
        assert probe_stats.page_reads < scan_stats.page_reads

    def test_missing_index_raises(self, indexed_catalog):
        with pytest.raises(PlanError):
            execute(IndexScan("big", {"b": 0}), indexed_catalog, SUM_PRODUCT)

    def test_annotation(self, indexed_catalog):
        from repro.cost import IOCostModel

        probe = IndexScan("big", {"a": 7})
        annotate(probe, indexed_catalog, IOCostModel())
        assert probe.stats.cardinality < indexed_catalog.stats(
            "big"
        ).cardinality
        assert probe.total_cost > 0


class TestOptimizerUsesIndex:
    def test_io_model_picks_index_scan(self, rng):
        """Under the IO model an equality selection on an indexed
        variable of a large table becomes an index probe."""
        from repro.cost import IOCostModel
        from repro.optimizer import CSPlusNonlinear, QuerySpec

        cat = Catalog()
        cat.register(
            complete_relation([var("x", 500), var("y", 40)], rng=rng,
                              name="fact")
        )
        cat.register(
            complete_relation([var("y", 40), var("z", 5)], rng=rng,
                              name="dim")
        )
        cat.create_index("fact", "x")
        spec = QuerySpec(
            tables=("fact", "dim"), query_vars=("z",),
            selections={"x": 123},
        )
        result = CSPlusNonlinear().optimize(spec, cat, IOCostModel())
        kinds = [type(n).__name__ for n in result.plan.walk()]
        assert "IndexScan" in kinds

        got, _ = execute(result.plan, cat, SUM_PRODUCT)
        reference = CSPlusNonlinear().optimize(spec, cat)  # simple model
        expected, _ = execute(reference.plan, cat, SUM_PRODUCT)
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)

    def test_simple_model_may_skip_index(self, rng):
        """Without per-page costs the simple model sees little gain, so
        leaf selection still works (either path is legal)."""
        from repro.optimizer import CSPlusNonlinear, QuerySpec

        cat = Catalog()
        cat.register(
            complete_relation([var("x", 50), var("y", 10)], rng=rng,
                              name="fact")
        )
        cat.create_index("fact", "x")
        spec = QuerySpec(
            tables=("fact",), query_vars=("y",), selections={"x": 3}
        )
        result = CSPlusNonlinear().optimize(spec, cat)
        got, _ = execute(result.plan, cat, SUM_PRODUCT)
        assert set(got.columns["y"].tolist()) <= set(range(10))


class TestPhysicalMethods:
    def test_choose_methods_annotates(self, rng):
        from repro.cost import IOCostModel
        from repro.plans import GroupBy, ProductJoin

        cat = Catalog()
        cat.register(complete_relation([var("a", 30), var("b", 30)],
                                       rng=rng, name="r1"))
        cat.register(complete_relation([var("b", 30), var("c", 5)],
                                       rng=rng, name="r2"))
        plan = GroupBy(ProductJoin(Scan("r1"), Scan("r2")), ["a"])
        annotate(plan, cat, IOCostModel(), choose_methods=True)
        join_node = plan.child
        assert join_node.method in ProductJoin.JOIN_METHODS
        assert plan.method in GroupBy.GROUP_METHODS
        # Hash beats sort-merge under this model's CPU terms.
        assert join_node.method == "hash"
        assert plan.method == "hash"

    def test_methods_change_execution_charge(self, rng):
        from repro.plans import GroupBy, ProductJoin

        cat = Catalog()
        cat.register(complete_relation([var("a", 40), var("b", 40)],
                                       rng=rng, name="r1"))
        cat.register(complete_relation([var("b", 40), var("c", 4)],
                                       rng=rng, name="r2"))
        hash_plan = GroupBy(
            ProductJoin(Scan("r1"), Scan("r2"), method="hash"),
            ["a"], method="hash",
        )
        sort_plan = GroupBy(
            ProductJoin(Scan("r1"), Scan("r2"), method="sort_merge"),
            ["a"], method="sort",
        )
        r1, s1 = execute(hash_plan, cat, SUM_PRODUCT)
        r2, s2 = execute(sort_plan, cat, SUM_PRODUCT)
        assert r1.equals(r2, SUM_PRODUCT)
        assert s2.tuples_processed > s1.tuples_processed

    def test_sort_merge_label_in_explain(self):
        from repro.plans import ProductJoin, explain

        plan = ProductJoin(Scan("a"), Scan("b"), method="sort_merge")
        assert "sort_merge" in explain(plan)
