"""Fault injection and retry: determinism, backoff, accounting."""

import pytest

from repro.errors import (
    PermanentStorageError,
    StorageError,
    TransientStorageError,
)
from repro.storage import (
    BufferPool,
    DEFAULT_RETRY_POLICY,
    FaultInjector,
    HeapFile,
    IOStats,
    PageId,
    RetryPolicy,
    WorkerFaultInjector,
    read_with_retry,
)


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(max_attempts=5, base_delay=100.0, max_delay=2000.0)
        assert policy.delay_for(0) == 100.0
        assert policy.delay_for(1) == 200.0
        assert policy.delay_for(2) == 400.0

    def test_backoff_is_capped(self):
        policy = RetryPolicy(base_delay=100.0, max_delay=350.0)
        assert policy.delay_for(5) == 350.0

    def test_default_policy_sane(self):
        assert DEFAULT_RETRY_POLICY.max_attempts >= 2
        assert DEFAULT_RETRY_POLICY.base_delay > 0


class TestFaultInjectorTargeted:
    def test_transient_page_heals_after_k_failures(self):
        injector = FaultInjector()
        page = PageId(1, 0)
        injector.fail_page(page, times=2)
        for _ in range(2):
            with pytest.raises(TransientStorageError):
                injector.before_read(page)
        injector.before_read(page)  # healed
        assert injector.transient_injected == 2

    def test_permanent_page_never_heals(self):
        injector = FaultInjector()
        page = PageId(1, 3)
        injector.fail_page(page, permanent=True)
        for _ in range(5):
            with pytest.raises(PermanentStorageError):
                injector.before_read(page)
        assert injector.permanent_injected == 5

    def test_fail_file_poisons_every_page(self):
        injector = FaultInjector()
        injector.fail_file(7)
        for page_no in range(4):
            with pytest.raises(PermanentStorageError):
                injector.before_read(PageId(7, page_no))
        injector.before_read(PageId(8, 0))  # other files unaffected

    def test_heal_clears_everything(self):
        injector = FaultInjector()
        injector.fail_page(PageId(1, 0), times=5)
        injector.fail_file(2)
        injector.heal()
        injector.before_read(PageId(1, 0))
        injector.before_read(PageId(2, 0))

    def test_bad_rates_rejected(self):
        with pytest.raises(StorageError):
            FaultInjector(transient_rate=1.5)
        with pytest.raises(StorageError):
            FaultInjector(transient_failures=0)


class TestFaultInjectorSeeded:
    def _fault_map(self, seed, rate, pages=200):
        injector = FaultInjector(seed=seed, transient_rate=rate)
        hit = set()
        for page_no in range(pages):
            page = PageId(1, page_no)
            try:
                injector.before_read(page)
            except TransientStorageError:
                hit.add(page_no)
        return hit

    def test_same_seed_same_faults(self):
        assert self._fault_map(7, 0.2) == self._fault_map(7, 0.2)

    def test_different_seed_different_faults(self):
        assert self._fault_map(7, 0.2) != self._fault_map(8, 0.2)

    def test_rate_roughly_respected(self):
        hit = self._fault_map(3, 0.25, pages=400)
        assert 0.10 < len(hit) / 400 < 0.45

    def test_zero_rate_never_faults(self):
        assert self._fault_map(1, 0.0) == set()


class TestReadWithRetry:
    def test_transient_fault_retried_and_charged(self):
        injector = FaultInjector()
        page = PageId(1, 0)
        injector.fail_page(page, times=2)
        pool = BufferPool(capacity_pages=4, injector=injector)
        stats = IOStats()
        read_with_retry(pool, page, stats)
        assert stats.page_reads == 1
        assert stats.retries == 2
        # Backoff follows the policy: first retry waits base, second 2x.
        policy = DEFAULT_RETRY_POLICY
        assert stats.retry_wait == policy.delay_for(0) + policy.delay_for(1)
        assert stats.elapsed() > 1000.0  # retry wait is on the clock

    def test_permanent_fault_not_retried(self):
        injector = FaultInjector()
        page = PageId(1, 0)
        injector.fail_page(page, permanent=True)
        pool = BufferPool(capacity_pages=4, injector=injector)
        stats = IOStats()
        with pytest.raises(PermanentStorageError):
            read_with_retry(pool, page, stats)
        assert stats.retries == 0

    def test_exhausted_attempts_raise_transient(self):
        injector = FaultInjector()
        page = PageId(1, 0)
        injector.fail_page(
            page, times=DEFAULT_RETRY_POLICY.max_attempts + 5
        )
        pool = BufferPool(capacity_pages=4, injector=injector)
        stats = IOStats()
        with pytest.raises(TransientStorageError):
            read_with_retry(pool, page, stats)
        assert stats.retries == DEFAULT_RETRY_POLICY.max_attempts - 1

    def test_guard_retry_budget_caps_total_retries(self):
        from repro.plans.guard import QueryGuard

        injector = FaultInjector()
        pool = BufferPool(capacity_pages=8, injector=injector)
        guard = QueryGuard(retry_budget=1)
        stats = IOStats()
        guard.restart(stats)
        page_a, page_b = PageId(1, 0), PageId(1, 1)
        injector.fail_page(page_a, times=1)
        injector.fail_page(page_b, times=1)
        read_with_retry(pool, page_a, stats, guard=guard)  # spends budget
        with pytest.raises(TransientStorageError):
            read_with_retry(pool, page_b, stats, guard=guard)

    def test_buffer_hits_never_fault(self):
        injector = FaultInjector()
        page = PageId(1, 0)
        pool = BufferPool(capacity_pages=4, injector=injector)
        stats = IOStats()
        pool.read(page, stats)  # clean miss, page now cached
        injector.fail_page(page, permanent=True)
        pool.read(page, stats)  # hit: no storage access, no fault
        assert stats.buffer_hits == 1


class TestHeapFileUnderFaults:
    def test_scan_retries_transient_pages(self):
        hf = HeapFile(1, ntuples=50_000, arity=2)
        injector = FaultInjector()
        injector.fail_page(PageId(1, 0), times=1)
        injector.fail_page(PageId(1, hf.n_pages - 1), times=1)
        pool = BufferPool(capacity_pages=hf.n_pages + 4, injector=injector)
        stats = IOStats()
        hf.scan(pool, stats)
        assert stats.page_reads == hf.n_pages
        assert stats.retries == 2

    def test_scan_propagates_permanent_fault(self):
        hf = HeapFile(1, ntuples=50_000, arity=2)
        injector = FaultInjector()
        injector.fail_page(PageId(1, 1), permanent=True)
        pool = BufferPool(capacity_pages=hf.n_pages + 4, injector=injector)
        with pytest.raises(PermanentStorageError):
            hf.scan(pool, IOStats())


class TestIOStatsRetryAccounting:
    def test_merged_with_sums_retries(self):
        a, b = IOStats(), IOStats()
        a.charge_retry(100.0)
        b.charge_retry(200.0)
        b.charge_retry(50.0)
        merged = a.merged_with(b)
        assert merged.retries == 3
        assert merged.retry_wait == 350.0

    def test_since_subtracts_retries(self):
        stats = IOStats()
        stats.charge_retry(100.0)
        snap = stats.snapshot()
        stats.charge_retry(75.0)
        delta = stats.since(snap)
        assert delta.retries == 1
        assert delta.retry_wait == 75.0

    def test_summary_mentions_retries_only_when_nonzero(self):
        stats = IOStats()
        assert "retries=" not in stats.summary()
        stats.charge_retry(10.0)
        assert "retries=1" in stats.summary()


class TestWorkerFaultInjector:
    def test_validates_configuration(self):
        with pytest.raises(StorageError):
            WorkerFaultInjector(rate=1.5)
        with pytest.raises(StorageError):
            WorkerFaultInjector(kinds=("crash", "bogus"))
        with pytest.raises(StorageError):
            WorkerFaultInjector(slow_factor=0.5)
        with pytest.raises(StorageError):
            WorkerFaultInjector(poison_tasks=-1)

    def test_rejects_unknown_targeted_kind(self):
        injector = WorkerFaultInjector()
        with pytest.raises(StorageError):
            injector.fail_task(0, "bogus")
        with pytest.raises(StorageError):
            injector.fail_label("Scan", "bogus")

    def test_targeted_task_faults_requested_attempts(self):
        injector = WorkerFaultInjector()
        injector.fail_task(2, "crash", attempts=2)
        assert injector.draw(2, "", 0) == "crash"
        assert injector.draw(2, "", 1) == "crash"
        assert injector.draw(2, "", 2) is None
        assert injector.draw(3, "", 0) is None
        assert injector.counts == {"crash": 2}

    def test_label_target_binds_to_occurrence(self):
        injector = WorkerFaultInjector()
        injector.fail_label("shuffle", "lost", occurrence=1)
        assert injector.draw(0, "shuffle[left](b)", 0) is None
        assert injector.draw(1, "Scan(r_ab)", 0) is None
        assert injector.draw(2, "shuffle[right](b)", 0) == "lost"
        # Retries of the bound task keep drawing against the site...
        assert injector.draw(2, "shuffle[right](b)", 0) == "lost"
        # ...but only for the configured single attempt.
        assert injector.draw(2, "shuffle[right](b)", 1) is None

    def test_poison_takes_out_following_dispatches(self):
        injector = WorkerFaultInjector(poison_tasks=2)
        injector.fail_task(1, "poison")
        assert injector.draw(0, "", 0) is None
        assert injector.draw(1, "", 0) == "poison"
        # The next two dispatches — any task, any attempt — die as
        # crashes while the bad worker is replaced.
        assert injector.draw(1, "", 1) == "crash"
        assert injector.draw(2, "", 0) == "crash"
        assert injector.draw(3, "", 0) is None
        assert injector.counts == {"poison": 1, "crash": 2}

    def test_seeded_draws_are_deterministic_and_ordinal_keyed(self):
        a = WorkerFaultInjector(seed=7, rate=0.3)
        b = WorkerFaultInjector(seed=7, rate=0.3)
        draws_a = [a.draw(seq, "", 0) for seq in range(200)]
        draws_b = [b.draw(seq, "", 0) for seq in range(200)]
        assert draws_a == draws_b
        assert any(k is not None for k in draws_a)
        # A different seed draws a different fault pattern.
        c = WorkerFaultInjector(seed=8, rate=0.3)
        assert draws_a != [c.draw(seq, "", 0) for seq in range(200)]

    def test_seeded_draws_only_hit_first_attempts(self):
        injector = WorkerFaultInjector(seed=7, rate=1.0, kinds=("crash",))
        assert injector.draw(0, "", 0) == "crash"
        # Retries run on a fresh worker: the seeded draw never dooms a
        # task forever.
        assert injector.draw(0, "", 1) is None
