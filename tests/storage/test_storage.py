"""Unit tests for the simulated storage substrate."""

import pytest

from repro.data import complete_relation, var
from repro.errors import StorageError
from repro.storage import (
    BufferPool,
    HeapFile,
    IOStats,
    PageGeometry,
    PageId,
    TempFileAllocator,
)


class TestPageGeometry:
    def test_tuple_bytes(self):
        g = PageGeometry(arity=3)
        assert g.tuple_bytes == 32  # 3 vars + measure, 8 bytes each

    def test_tuples_per_page(self):
        g = PageGeometry(arity=1, page_size=8192)
        assert g.tuples_per_page == (8192 - 24) // 16

    def test_pages_for(self):
        g = PageGeometry(arity=1, page_size=8192)
        tpp = g.tuples_per_page
        assert g.pages_for(0) == 1
        assert g.pages_for(tpp) == 1
        assert g.pages_for(tpp + 1) == 2

    def test_tiny_page_rejected(self):
        with pytest.raises(StorageError):
            PageGeometry(arity=1, page_size=8)

    def test_negative_arity_rejected(self):
        with pytest.raises(StorageError):
            PageGeometry(arity=-1)


class TestBufferPool:
    def test_empty_pool_is_truthy(self):
        # `pool or BufferPool()` must honor a caller's (still empty)
        # pool instead of silently replacing it.
        pool = BufferPool(capacity_pages=4)
        assert len(pool) == 0
        assert bool(pool)

    def test_miss_then_hit(self):
        pool = BufferPool(capacity_pages=4)
        stats = IOStats()
        page = PageId(1, 0)
        pool.read(page, stats)
        pool.read(page, stats)
        assert stats.page_reads == 1
        assert stats.buffer_hits == 1

    def test_lru_eviction(self):
        pool = BufferPool(capacity_pages=2)
        stats = IOStats()
        p = [PageId(1, i) for i in range(3)]
        pool.read(p[0], stats)
        pool.read(p[1], stats)
        pool.read(p[2], stats)  # evicts p[0]
        pool.read(p[0], stats)  # miss again
        assert stats.page_reads == 4
        assert stats.buffer_hits == 0

    def test_lru_recency_update(self):
        pool = BufferPool(capacity_pages=2)
        stats = IOStats()
        a, b, c = PageId(1, 0), PageId(1, 1), PageId(1, 2)
        pool.read(a, stats)
        pool.read(b, stats)
        pool.read(a, stats)  # refresh a
        pool.read(c, stats)  # evicts b, not a
        assert a in pool
        assert b not in pool

    def test_write_admits_page(self):
        pool = BufferPool(capacity_pages=4)
        stats = IOStats()
        pool.write(PageId(2, 0), stats)
        assert stats.page_writes == 1
        assert PageId(2, 0) in pool

    def test_invalidate_file(self):
        pool = BufferPool(capacity_pages=8)
        stats = IOStats()
        pool.read(PageId(1, 0), stats)
        pool.read(PageId(2, 0), stats)
        pool.invalidate_file(1)
        assert PageId(1, 0) not in pool
        assert PageId(2, 0) in pool

    def test_zero_capacity_rejected(self):
        with pytest.raises(StorageError):
            BufferPool(0)


class TestHeapFile:
    def test_for_relation(self):
        rel = complete_relation([var("a", 100), var("b", 100)])
        hf = HeapFile.for_relation(1, rel)
        assert hf.ntuples == 10_000
        assert hf.n_pages == PageGeometry(2).pages_for(10_000)

    def test_scan_charges_all_pages(self):
        hf = HeapFile(1, ntuples=100_000, arity=2)
        pool = BufferPool(capacity_pages=hf.n_pages + 10)
        stats = IOStats()
        hf.scan(pool, stats)
        assert stats.page_reads == hf.n_pages
        # Second scan hits the cache.
        hf.scan(pool, stats)
        assert stats.page_reads == hf.n_pages
        assert stats.buffer_hits == hf.n_pages

    def test_scan_larger_than_pool_never_hits(self):
        hf = HeapFile(1, ntuples=100_000, arity=2)
        pool = BufferPool(capacity_pages=max(1, hf.n_pages // 2))
        stats = IOStats()
        hf.scan(pool, stats)
        hf.scan(pool, stats)
        assert stats.buffer_hits == 0
        assert stats.page_reads == 2 * hf.n_pages

    def test_write_out(self):
        hf = HeapFile(3, ntuples=1000, arity=1)
        pool = BufferPool()
        stats = IOStats()
        hf.write_out(pool, stats)
        assert stats.page_writes == hf.n_pages


class TestTempAllocator:
    def test_unique_negative_ids(self):
        alloc = TempFileAllocator()
        a = alloc.allocate(10, 1)
        b = alloc.allocate(10, 1)
        assert a.file_id != b.file_id
        assert a.file_id < 0 and b.file_id < 0


class TestIOStats:
    def test_elapsed_weighting(self):
        stats = IOStats(io_weight=100.0, cpu_weight=1.0)
        stats.charge_read(2)
        stats.charge_write(1)
        stats.charge_cpu(50)
        assert stats.elapsed() == 100.0 * 3 + 50

    def test_merged_with(self):
        a = IOStats()
        a.charge_read(1)
        a.record_operator("x", 5)
        b = IOStats()
        b.charge_cpu(10)
        merged = a.merged_with(b)
        assert merged.page_reads == 1
        assert merged.tuples_processed == 10
        assert merged.operators_run == 1

    def test_summary_format(self):
        stats = IOStats()
        stats.charge_read()
        assert "reads=1" in stats.summary()

    def test_memo_hits_in_summary_only_when_nonzero(self):
        stats = IOStats()
        assert "memo=" not in stats.summary()
        stats.charge_memo_hit()
        assert "memo=1" in stats.summary()

    def test_snapshot_since_delta(self):
        stats = IOStats()
        stats.charge_read(2)
        stats.record_operator("before", 3)
        snapshot = stats.snapshot()
        stats.charge_read(1)
        stats.charge_write(4)
        stats.charge_memo_hit()
        stats.record_operator("after", 7)
        delta = stats.since(snapshot)
        assert delta.page_reads == 1
        assert delta.page_writes == 4
        assert delta.memo_hits == 1
        assert delta.operators_run == 1
        assert delta.per_operator == [("after", 7)]
