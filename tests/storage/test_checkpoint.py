"""Checkpoints: atomic snapshots, restore, corruption fallback."""

import os

import numpy as np
import pytest

from repro.data import complete_relation, var
from repro.data.serialize import (
    relation_from_dict,
    relation_from_payload,
    relation_meta,
    relation_payload,
    relation_to_dict,
)
from repro.engine import Database
from repro.errors import RecoveryError
from repro.plans.lower import lower
from repro.plans.nodes import GroupBy, ProductJoin, Scan
from repro.plans.runtime import ExecutionContext, evaluate_dag
from repro.semiring import BOOLEAN, SUM_PRODUCT
from repro.storage import (
    CheckpointManager,
    CrashInjector,
    InjectedCrash,
    RecoveryManager,
    WriteAheadLog,
    wal_path,
)


def _snapshot_bytes(relation):
    keys, measure = relation.sorted_snapshot()
    return keys.tobytes() + measure.tobytes()


def _database(metrics=None):
    rng = np.random.default_rng(11)
    a, b, c = var("a", 4), var("b", 3), var("c", 2)
    db = Database(metrics=metrics) if metrics is not None else Database()
    db.register(complete_relation([a, b], rng=rng, name="r_ab"))
    db.register(complete_relation([b, c], rng=rng, name="r_bc"))
    db.create_view("v", ("r_ab", "r_bc"))
    return db


class TestCheckpointRestore:
    def test_full_round_trip(self, tmp_path):
        directory = str(tmp_path)
        db = _database()
        db.catalog.create_index("r_ab", "a")
        originals = {
            name: _snapshot_bytes(db.catalog.relation(name))
            for name in db.catalog.table_names
        }
        manager = CheckpointManager(directory)
        name = manager.checkpoint(db)
        assert manager.latest() == name

        recovery = RecoveryManager(directory)
        state = recovery.recover()
        assert state.has_checkpoint
        restored = recovery.restore_database(state)
        for table, expected in originals.items():
            assert _snapshot_bytes(
                restored.catalog.relation(table)
            ) == expected
        assert restored.catalog.stats_epoch == db.catalog.stats_epoch
        assert restored.catalog._next_file_id == db.catalog._next_file_id
        assert set(restored._views) == set(db._views)
        assert ("r_ab", "a") in restored.catalog._indexes

    def test_restore_is_queryable(self, tmp_path):
        directory = str(tmp_path)
        db = _database()
        reference = db.execute(
            "select a, sum(f) from v group by a"
        ).result
        manager = CheckpointManager(directory)
        manager.checkpoint(db)

        recovery = RecoveryManager(directory)
        restored = recovery.restore_database(recovery.recover())
        again = restored.execute(
            "select a, sum(f) from v group by a"
        ).result
        assert _snapshot_bytes(again) == _snapshot_bytes(reference)

    def test_memo_round_trips_through_seed_context(self, tmp_path):
        directory = str(tmp_path)
        db = _database()
        plan = GroupBy(ProductJoin(Scan("r_ab"), Scan("r_bc")), ["a"])
        ctx = ExecutionContext(
            {n: db.catalog.relation(n) for n in db.catalog.table_names},
            SUM_PRODUCT,
            metrics=db.metrics,
        )
        (result,) = evaluate_dag(lower(plan), ctx)

        manager = CheckpointManager(directory)
        manager.checkpoint(db, context=ctx)

        state = RecoveryManager(directory).recover()
        fresh = ExecutionContext(
            {n: db.catalog.relation(n) for n in db.catalog.table_names},
            SUM_PRODUCT,
        )
        assert state.seed_context(fresh) > 0
        # The seeded memo serves the same plan without recomputation.
        key = plan.structural_key()
        assert key in fresh.memo
        assert _snapshot_bytes(fresh.memo[key]) == _snapshot_bytes(result)

    def test_empty_database_checkpoints(self, tmp_path):
        directory = str(tmp_path)
        db = Database()
        manager = CheckpointManager(directory)
        name = manager.checkpoint(db)
        recovery = RecoveryManager(directory)
        restored = recovery.restore_database(recovery.recover())
        assert list(restored.catalog.table_names) == []
        assert manager.load(name).manifest["tables"] == []


class TestCrashDuringCheckpoint:
    @pytest.mark.parametrize(
        "point", ["checkpoint.begin", "checkpoint.pages", "checkpoint.commit"]
    )
    def test_crash_during_first_checkpoint_recovers_cold(
        self, tmp_path, point
    ):
        directory = str(tmp_path)
        db = _database()
        manager = CheckpointManager(directory, crash=CrashInjector(point))
        with pytest.raises(InjectedCrash):
            manager.checkpoint(db)
        # Nothing committed: at most a stray .tmp file remains.
        assert manager.list_checkpoints() == []
        state = RecoveryManager(directory).recover()
        assert not state.has_checkpoint
        assert state.checkpoints_discarded == 0

    def test_crash_after_commit_preserves_previous_checkpoint(
        self, tmp_path
    ):
        directory = str(tmp_path)
        db = _database()
        manager = CheckpointManager(directory)
        first = manager.checkpoint(db)
        crashing = CheckpointManager(
            directory, crash=CrashInjector("checkpoint.commit")
        )
        with pytest.raises(InjectedCrash):
            crashing.checkpoint(db)
        state = RecoveryManager(directory).recover()
        assert state.checkpoint.name == first


class TestCorruptCheckpoints:
    def test_corrupt_latest_falls_back_to_previous(self, tmp_path):
        directory = str(tmp_path)
        db = _database()
        manager = CheckpointManager(directory)
        first = manager.checkpoint(db)
        second = manager.checkpoint(db)
        with open(os.path.join(directory, second), "r+b") as fh:
            fh.seek(-1, os.SEEK_END)
            fh.write(b"\xff")
        state = RecoveryManager(directory).recover()
        assert state.checkpoint.name == first
        assert state.checkpoints_discarded == 1
        registry = state.registry.snapshot().to_dict()
        assert registry["recovery.checkpoints_discarded"]["value"] == 1

    def test_bad_magic_is_loud_on_direct_load(self, tmp_path):
        directory = str(tmp_path)
        db = _database()
        manager = CheckpointManager(directory)
        name = manager.checkpoint(db)
        with open(os.path.join(directory, name), "r+b") as fh:
            fh.write(b"XXXXXXXX")
        with pytest.raises(RecoveryError, match="bad magic"):
            manager.load(name)

    def test_missing_checkpoint_is_loud(self, tmp_path):
        manager = CheckpointManager(str(tmp_path))
        with pytest.raises(RecoveryError):
            manager.load("chk-00000042.ckpt")

    def test_missing_directory_is_loud(self, tmp_path):
        with pytest.raises(RecoveryError, match="does not exist"):
            RecoveryManager(str(tmp_path / "nope")).recover()


class TestRelationSerialization:
    def _round_trip(self, relation):
        payload = relation_payload(relation)
        return relation_from_payload(relation_meta(relation), payload)

    def test_float64_measures_are_exact(self):
        rng = np.random.default_rng(3)
        rel = complete_relation(
            [var("a", 7), var("b", 5)], rng=rng, name="r"
        )
        rebuilt = self._round_trip(rel)
        assert _snapshot_bytes(rebuilt) == _snapshot_bytes(rel)
        assert rebuilt.name == "r"

    def test_json_round_trip_is_exact_for_doubles(self):
        rng = np.random.default_rng(4)
        rel = complete_relation([var("a", 9)], rng=rng, name="r")
        rebuilt = relation_from_dict(relation_to_dict(rel))
        assert _snapshot_bytes(rebuilt) == _snapshot_bytes(rel)

    def test_boolean_dtype_round_trips(self):
        from repro.data.relation import FunctionalRelation

        a = var("a", 3)
        rel = FunctionalRelation.from_rows(
            [a], [(0, True), (1, False), (2, True)],
            name="flags", measure_name="present", dtype=BOOLEAN.dtype,
        )
        rebuilt = relation_from_dict(relation_to_dict(rel))
        assert rebuilt.measure.dtype == rel.measure.dtype
        assert _snapshot_bytes(rebuilt) == _snapshot_bytes(rel)

    def test_labeled_domain_round_trips(self):
        from repro.data.domain import Domain, Variable
        from repro.data.relation import FunctionalRelation

        color = Variable(
            "color", Domain("colors", 3, labels=("red", "green", "blue"))
        )
        rel = FunctionalRelation.from_rows(
            [color], [(0, 1.5), (2, 2.5)], name="paint"
        )
        rebuilt = self._round_trip(rel)
        assert rebuilt.variables["color"].domain.labels == (
            "red", "green", "blue",
        )
        assert _snapshot_bytes(rebuilt) == _snapshot_bytes(rel)

    def test_zero_row_relation_round_trips(self):
        from repro.data.relation import FunctionalRelation

        rel = FunctionalRelation.from_rows([var("a", 2)], [], name="empty")
        rebuilt = self._round_trip(rel)
        assert rebuilt.ntuples == 0
        assert rebuilt.var_names == ("a",)

    def test_constant_relation_round_trips(self):
        from repro.data.relation import FunctionalRelation

        rel = FunctionalRelation.constant(3.25, name="k")
        rebuilt = self._round_trip(rel)
        assert rebuilt.arity == 0
        assert float(rebuilt.measure[0]) == 3.25

    def test_truncated_payload_is_loud(self):
        rng = np.random.default_rng(5)
        rel = complete_relation([var("a", 6)], rng=rng, name="r")
        payload = relation_payload(rel)
        with pytest.raises(RecoveryError):
            relation_from_payload(relation_meta(rel), payload[:-3])
