"""CLI tests (in-process: call main with argv)."""

import pytest

from repro.cli import (
    EXIT_OVERLOAD,
    EXIT_QUERY,
    EXIT_RESOURCE,
    EXIT_USAGE,
    exit_code_for,
    main,
)


class TestDemo:
    def test_runs(self, capsys):
        assert main(["demo", "--scale", "0.005"]) == 0
        out = capsys.readouterr().out
        assert "minimum investment per part" in out
        assert "strategy comparison" in out
        assert "cs+nonlinear" in out


class TestSql:
    def test_inline_statement(self, capsys):
        rc = main(
            [
                "sql", "--scale", "0.005",
                "-c", "select wid, sum(inv) from invest group by wid",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "wid" in out
        assert "rows]" in out

    def test_explain_flag(self, capsys):
        rc = main(
            [
                "sql", "--scale", "0.005", "--explain",
                "-c", "select cid, sum(inv) from invest group by cid",
            ]
        )
        assert rc == 0
        assert "Scan(" in capsys.readouterr().out

    def test_file_input(self, tmp_path, capsys):
        script = tmp_path / "queries.sql"
        script.write_text(
            "select wid, sum(inv) from invest group by wid;\n"
            "select tid, min(inv) from invest group by tid\n"
        )
        rc = main(["sql", "--scale", "0.005", "-f", str(script)])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("mpf>") == 2

    def test_no_statements_is_usage_error(self, capsys):
        assert main(["sql"]) == EXIT_USAGE

    def test_cost_budget_exceeded_exits_resource(self, capsys):
        rc = main(
            [
                "sql", "--scale", "0.005", "--cost-budget", "1",
                "-c", "select wid, sum(inv) from invest group by wid",
            ]
        )
        assert rc == EXIT_RESOURCE
        assert "error:" in capsys.readouterr().err

    def test_generous_guard_flags_still_succeed(self, capsys):
        rc = main(
            [
                "sql", "--scale", "0.005",
                "--timeout", "3600", "--memory-limit", "100000",
                "-c", "select wid, sum(inv) from invest group by wid",
            ]
        )
        assert rc == 0
        assert "rows]" in capsys.readouterr().out

    def test_bad_sql_reports_error(self, capsys):
        rc = main(["sql", "--scale", "0.005", "-c", "select banana"])
        assert rc == EXIT_QUERY
        assert "error:" in capsys.readouterr().err

    def test_explain_json_flag(self, capsys):
        import json

        from repro.obs import validate_explain_document

        rc = main(
            [
                "sql", "--scale", "0.005", "--explain-json",
                "-c", "select cid, sum(inv) from invest group by cid",
            ]
        )
        assert rc == 0
        doc_lines = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith('{"')
        ]
        assert len(doc_lines) == 1
        doc = json.loads(doc_lines[0])
        validate_explain_document(doc)
        assert doc["execution"]["totals"]["page_reads"] > 0

    def test_metrics_json_flag(self, capsys):
        import json

        from repro.obs import validate_metrics_document

        rc = main(
            [
                "sql", "--scale", "0.005", "--metrics-json",
                "-c", "select cid, sum(inv) from invest group by cid",
                "-c", "select wid, sum(inv) from invest group by wid",
            ]
        )
        assert rc == 0
        # The metrics document is the last stdout line, pipeable into
        # ``python -m repro.obs.validate -``.
        last = capsys.readouterr().out.splitlines()[-1]
        doc = json.loads(last)
        validate_metrics_document(doc)
        assert doc["metrics"]["queries.total{status=ok}"]["value"] == 2

    def test_trace_json_flag(self, capsys):
        import json

        from repro.obs import validate_trace_document

        rc = main(
            [
                "sql", "--scale", "0.005", "--trace-json",
                "-c", "select cid, sum(inv) from invest group by cid",
                "-c", "select wid, sum(inv) from invest group by wid",
            ]
        )
        assert rc == 0
        last = capsys.readouterr().out.strip().splitlines()[-1]
        doc = json.loads(last)
        validate_trace_document(doc)
        assert doc["name"] == "cli.sql"
        assert [e["request_id"] for e in doc["requests"]] == [
            "stmt-0000", "stmt-0001",
        ]
        for entry in doc["requests"]:
            names = [c["name"] for c in entry["root"]["children"]]
            assert "execute" in names

    def test_metrics_text_flag(self, capsys):
        from repro.obs import parse_metrics_text

        rc = main(
            [
                "sql", "--scale", "0.005", "--metrics-text",
                "-c", "select cid, sum(inv) from invest group by cid",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        start = out.index("# TYPE")
        samples = parse_metrics_text(out[start:])
        assert {s["family"] for s in samples} >= {
            "queries_total", "bufferpool_reads",
        }

    def test_calibrate_flag(self, capsys):
        import json

        from repro.obs import validate_calibration_document

        rc = main(
            [
                "sql", "--scale", "0.005", "--calibrate",
                "-c", "select cid, sum(inv) from invest group by cid",
            ]
        )
        assert rc == 0
        doc_lines = [
            line for line in capsys.readouterr().out.splitlines()
            if '"repro.calibration.v1"' in line
        ]
        assert len(doc_lines) == 1
        doc = json.loads(doc_lines[0])
        validate_calibration_document(doc)
        assert doc["plan_q_error"] >= 1.0
        # The CLI audits plan choice, so candidates must be present.
        assert doc["audit"] is not None
        assert any(c["chosen"] for c in doc["audit"]["candidates"])

    def test_calibrate_with_explain_annotates_plan(self, capsys):
        rc = main(
            [
                "sql", "--scale", "0.005", "--calibrate", "--explain",
                "-c", "select cid, sum(inv) from invest group by cid",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "act=" in out
        assert "q=" in out

    def test_create_view_statement(self, capsys):
        rc = main(
            [
                "sql", "--scale", "0.005",
                "-c",
                "create mpfview twotab as (select pid, wid, "
                "measure = (* location.quantity, contracts.price) "
                "from location, contracts)",
                "-c", "select wid, sum(f) from twotab group by wid",
            ]
        )
        assert rc == 0
        assert "created" in capsys.readouterr().out


class TestExperiments:
    def test_table2(self, capsys):
        assert main(["table2", "--n-tables", "4", "--domain", "5"]) == 0
        out = capsys.readouterr().out
        assert "nonlinear CS+" in out
        assert "VE(deg) ext." in out

    def test_table3(self, capsys):
        assert main(
            ["table3", "--n-tables", "4", "--domain", "5", "--runs", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "VE(random)" in out
        assert "VE(random) ext." in out


class TestInference:
    def test_runs(self, capsys):
        assert main(["inference"]) == 0
        out = capsys.readouterr().out
        assert "Pr(C=0 | A=0) = 0.9000" in out


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


class TestExitCodeFamilies:
    def test_distinct_nonzero_codes_per_family(self):
        from repro import errors as E
        from repro.cli import (
            EXIT_PLAN,
            EXIT_STORAGE,
            EXIT_WORKER,
            EXIT_WORKLOAD,
        )

        cases = {
            E.WorkerError("w"): EXIT_WORKER,
            E.QueryTimeout("t"): EXIT_RESOURCE,
            E.MemoryLimitExceeded("m"): EXIT_RESOURCE,
            E.QueryCancelled("c"): EXIT_RESOURCE,
            E.TransientStorageError("s"): EXIT_STORAGE,
            E.PermanentStorageError("p"): EXIT_STORAGE,
            E.StorageError("s"): EXIT_STORAGE,
            E.WorkloadError("w"): EXIT_WORKLOAD,
            E.AcyclicityError("a"): EXIT_WORKLOAD,
            E.PlanError("p"): EXIT_PLAN,
            E.OptimizationError("o"): EXIT_PLAN,
            E.QueryError("q"): EXIT_QUERY,
            E.ParseError("p"): EXIT_QUERY,
            E.CatalogError("c"): EXIT_QUERY,
            E.MPFError("base"): 1,
            E.SemiringError("s"): 1,
        }
        for exc, expected in cases.items():
            assert exit_code_for(exc) == expected, type(exc).__name__
        assert all(code != 0 for code in cases.values())


class TestPartitionFlagMatrix:
    """--partition TABLE=KEY:N validation is a usage error (exit 2)."""

    @pytest.mark.parametrize("spec", [
        "location=wid:0", "location=wid:-1", "location=wid:-3",
    ])
    def test_subunit_shard_count_is_usage_error(self, spec, capsys):
        code = main(["sql", "--partition", spec, "-c", "select 1"])
        assert code == EXIT_USAGE
        assert "shard count must be >= 1" in capsys.readouterr().err

    @pytest.mark.parametrize("spec", [
        "locationwid:3", "location=wid", "location=wid:three", "=wid:3",
    ])
    def test_malformed_spec_is_usage_error(self, spec, capsys):
        code = main(["sql", "--partition", spec, "-c", "select 1"])
        assert code == EXIT_USAGE


class TestWorkerFaultFlags:
    QUERY = "select wid, sum(inv) from invest group by wid"

    def test_recovered_fault_run_succeeds_with_valid_metrics(self, capsys):
        import json

        from repro.obs.export import validate_metrics_document

        code = main([
            "sql", "--workers", "2",
            "--partition", "location=wid:4",
            "--partition", "warehouses=wid:4",
            "--fault-worker", "crash:1",
            "--task-timeout", "50000", "--task-retries", "2",
            "--hedge-after", "1000", "--metrics-json",
            "-c", self.QUERY,
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        validate_metrics_document(doc)
        metrics = doc["metrics"]
        assert any(k.startswith("faults.worker_injected") for k in metrics)
        assert metrics["scheduler.task_retries"]["value"] >= 1

    def test_unrecoverable_fault_without_degrade_exits_worker(self, capsys):
        from repro.cli import EXIT_WORKER

        code = main([
            "sql", "--workers", "2",
            "--partition", "location=wid:4",
            "--fault-worker", "crash:1",
            "--task-retries", "0", "--no-task-degrade",
            "-c", self.QUERY,
        ])
        assert code == EXIT_WORKER
        assert "unrecoverable" in capsys.readouterr().err

    def test_degraded_fault_run_still_succeeds(self, capsys):
        import json

        code = main([
            "sql", "--workers", "2",
            "--partition", "location=wid:4",
            "--fault-worker", "crash:1",
            "--task-retries", "0", "--metrics-json",
            "-c", self.QUERY,
        ])
        assert code == 0
        doc = json.loads(capsys.readouterr().out.strip().splitlines()[-1])
        degraded = [
            k for k in doc["metrics"]
            if k.startswith("scheduler.degraded")
        ]
        assert degraded == ["scheduler.degraded{reason=retry_budget}"]

    @pytest.mark.parametrize("argv", [
        ["--fault-worker", "bogus"],
        ["--fault-worker", "crash:x"],
        ["--fault-worker", "crash:-1"],
        ["--fault-worker-rate", "0.5", "--fault-worker-kinds", "crash,bogus"],
        ["--task-retries", "-1"],
    ])
    def test_bad_fault_flags_are_usage_errors(self, argv, capsys):
        code = main(["sql", *argv, "-c", "select 1"])
        assert code == EXIT_USAGE


class TestServe:
    ARGS = ["serve", "--scale", "0.004", "--mix", "12"]

    def test_default_soak_succeeds(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "serving soak" in out
        assert "gold:" in out and "bulk:" in out
        assert "plan cache:" in out

    def test_overload_error_exit_code(self):
        from repro.errors import OverloadError

        assert exit_code_for(OverloadError("x", reason="rate")) == \
            EXIT_OVERLOAD

    def test_forced_shed_exits_overload(self, capsys):
        code = main([
            *self.ARGS, "--tenant", "only,queue=0", "--fail-on-shed",
        ])
        assert code == EXIT_OVERLOAD
        assert "shed under overload" in capsys.readouterr().err

    def test_shed_without_flag_is_success(self, capsys):
        assert main([*self.ARGS, "--tenant", "only,queue=0"]) == 0
        assert "12 shed" in capsys.readouterr().out

    @pytest.mark.parametrize("argv", [
        ["--tenant", "bad,nope=1"],
        ["--tenant", "priority=2"],
        ["--tenant", "t,slots=0"],
        ["--reload-at", "location"],
        ["--reload-at", "location@soon"],
        ["--mix", "0"],
        ["--workers", "0"],
    ])
    def test_bad_flags_are_usage_errors(self, argv, capsys):
        assert main(["serve", *argv]) == EXIT_USAGE

    def test_reload_and_metrics_json(self, capsys):
        import json

        from repro.obs.export import validate_metrics_document

        code = main([
            *self.ARGS, "--reload-at", "location@2e5", "--metrics-json",
        ])
        assert code == 0
        out = capsys.readouterr().out
        doc = json.loads(out.strip().splitlines()[-1])
        validate_metrics_document(doc)
        assert doc["name"] == "cli.serve"
        assert doc["metrics"]["serve.reloads"]["value"] == 1
        # Requests span both epochs.
        assert "epochs served: [5, 6]" in out

    def test_soak_is_deterministic(self, capsys):
        argv = [*self.ARGS, "--reload-at", "location@2e5", "--metrics-json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_worker_faults_compose_with_serving(self, capsys):
        # Injected worker faults are retried/degraded inside each
        # request's execution; the soak itself still succeeds.
        code = main([
            *self.ARGS, "--workers", "2",
            "--partition", "location=wid:4",
            "--fault-worker-rate", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving soak" in out
        assert "0 failed" in out

    def test_trace_json_flag(self, capsys):
        import json

        from repro.obs import validate_trace_document

        code = main([
            *self.ARGS, "--reload-at", "location@2e5", "--trace-json",
        ])
        assert code == 0
        last = capsys.readouterr().out.strip().splitlines()[-1]
        doc = json.loads(last)
        validate_trace_document(doc)
        assert doc["name"] == "cli.serve"
        assert doc["clock"] == "virtual"
        assert len(doc["requests"]) == 12
        assert any(e["name"] == "reload" for e in doc["events"])
        for entry in doc["requests"]:
            if entry["status"] == "ok":
                kinds = [c["kind"] for c in entry["root"]["children"]]
                assert kinds[:2] == ["admission", "queue"]
                assert "dispatch" in kinds

    def test_metrics_json_stays_last_line_with_trace(self, capsys):
        import json

        from repro.obs import validate_metrics_document

        code = main([*self.ARGS, "--trace-json", "--metrics-json"])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        validate_metrics_document(json.loads(lines[-1]))
        trace = json.loads(lines[-2])
        assert trace["schema"] == "repro.trace.v1"

    def test_metrics_text_to_stdout(self, capsys):
        from repro.obs import parse_metrics_text

        code = main([*self.ARGS, "--metrics-text"])
        assert code == 0
        out = capsys.readouterr().out
        start = out.index("# TYPE")
        samples = parse_metrics_text(out[start:])
        families = {s["family"] for s in samples}
        assert "serve_requests" in families
        assert "serve_slo_latency_p50" in families

    def test_metrics_text_to_file(self, tmp_path):
        from repro.obs import validate_metrics_text

        target = tmp_path / "metrics.prom"
        assert main([*self.ARGS, "--metrics-text", str(target)]) == 0
        assert validate_metrics_text(target.read_text()) > 0


class TestTop:
    ARGS = ["top", "--scale", "0.004", "--mix", "12"]

    def test_renders_per_tenant_slo_table(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "serving soak" in out
        assert "TENANT" in out and "BURN" in out
        assert "gold" in out and "bulk" in out

    def test_is_deterministic(self, capsys):
        assert main(self.ARGS) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS) == 0
        assert capsys.readouterr().out == first

    def test_shares_serve_workload_flags(self, capsys):
        code = main([
            *self.ARGS, "--reload-at", "location@2e5",
            "--tenant", "gold,priority=2,slo=6e5,objective=0.9",
            "--tenant", "bulk,queue=2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "gold" in out and "bulk" in out

    def test_usage_errors_match_serve(self, capsys):
        assert main(["top", "--mix", "0"]) == EXIT_USAGE
        assert main(["top", "--tenant", "t,bogus=1"]) == EXIT_USAGE
