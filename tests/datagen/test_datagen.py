"""Tests for the experimental data generators."""

import pytest

from repro.datagen import (
    TABLE1_CARDINALITIES,
    TABLE1_DOMAINS,
    linear_view,
    multistar_view,
    star_view,
    supply_chain,
)


class TestSupplyChain:
    def test_table1_constants_match_paper(self):
        assert TABLE1_CARDINALITIES == {
            "contracts": 100_000,
            "warehouses": 5_000,
            "transporters": 500,
            "location": 1_000_000,
            "ctdeals": 500_000,
        }
        assert TABLE1_DOMAINS == {
            "pid": 100_000,
            "sid": 10_000,
            "wid": 5_000,
            "cid": 1_000,
            "tid": 500,
        }

    def test_schema_shape(self, tiny_supply_chain):
        sc = tiny_supply_chain
        expect = {
            "contracts": ("pid", "sid"),
            "warehouses": ("wid", "cid"),
            "transporters": ("tid",),
            "location": ("pid", "wid"),
            "ctdeals": ("cid", "tid"),
        }
        for table, variables in expect.items():
            assert set(sc.catalog.stats(table).variables) == set(variables)

    def test_relative_sizes_preserved(self):
        sc = supply_chain(scale=0.01, seed=0)
        cat = sc.catalog
        # location = 10 x contracts, per Table 1.
        assert cat.stats("location").cardinality == pytest.approx(
            10 * cat.stats("contracts").cardinality, rel=0.01
        )
        # warehouses is complete over wid.
        assert cat.stats("warehouses").cardinality == cat.variable("wid").size
        # transporters is complete over tid.
        assert cat.stats("transporters").cardinality == cat.variable("tid").size

    def test_full_density_ctdeals_complete(self):
        sc = supply_chain(scale=0.01, seed=0, ctdeals_density=1.0)
        cat = sc.catalog
        expected = cat.variable("cid").size * cat.variable("tid").size
        assert cat.stats("ctdeals").cardinality == expected

    def test_density_knob(self):
        lo = supply_chain(scale=0.01, seed=0, ctdeals_density=0.2)
        hi = supply_chain(scale=0.01, seed=0, ctdeals_density=0.9)
        assert (
            lo.catalog.stats("ctdeals").cardinality
            < hi.catalog.stats("ctdeals").cardinality
        )

    def test_deterministic_under_seed(self):
        a = supply_chain(scale=0.01, seed=11)
        b = supply_chain(scale=0.01, seed=11)
        from repro.semiring import SUM_PRODUCT

        for t in a.tables:
            assert a.catalog.relation(t).equals(
                b.catalog.relation(t), SUM_PRODUCT
            )

    def test_measure_names(self, tiny_supply_chain):
        cat = tiny_supply_chain.catalog
        assert cat.relation("contracts").measure_name == "price"
        assert cat.relation("warehouses").measure_name == "w_factor"
        assert cat.relation("ctdeals").measure_name == "ct_discount"

    def test_stdeals_extension(self, cyclic_supply_chain):
        sc = cyclic_supply_chain
        assert "stdeals" in sc.tables
        assert set(sc.catalog.stats("stdeals").variables) == {"sid", "tid"}

    def test_table_keys_declared(self, tiny_supply_chain):
        assert tiny_supply_chain.table_keys["warehouses"] == ("wid",)


class TestSyntheticViews:
    def test_linear_chain(self):
        view = linear_view(n_tables=5, domain_size=10)
        assert len(view.tables) == 5
        assert view.chain_variables == ("v0", "v1", "v2", "v3", "v4", "v5")
        assert view.hub_variables == ()
        for i, t in enumerate(view.tables):
            scope = set(view.catalog.stats(t).variables)
            assert scope == {f"v{i}", f"v{i + 1}"}

    def test_star_hub_in_every_table(self):
        view = star_view(n_tables=5, domain_size=10)
        for t in view.tables:
            assert "h0" in view.catalog.stats(t).variables

    def test_star_completeness(self):
        """Section 7.3: all functional relations are complete."""
        view = star_view(n_tables=5, domain_size=10)
        for t in view.tables:
            assert view.catalog.relation(t).is_complete()

    def test_multistar_connectivity_capped_at_three(self):
        view = multistar_view(n_tables=5, domain_size=10)
        for h in view.hub_variables:
            count = sum(
                1
                for t in view.tables
                if h in view.catalog.stats(t).variables
            )
            assert count == 3

    def test_multistar_has_multiple_hubs(self):
        view = multistar_view(n_tables=5, domain_size=10)
        assert len(view.hub_variables) == 2

    def test_multistar_small_falls_back_to_linear(self):
        view = multistar_view(n_tables=2, domain_size=4)
        assert view.kind == "linear"

    def test_domain_size_respected(self):
        view = star_view(n_tables=3, domain_size=7)
        for v in view.chain_variables + view.hub_variables:
            assert view.catalog.variable(v).size == 7

    def test_connectivity_ordering(self):
        """star max connectivity N > multistar 3 > linear 2 — the axis
        Figure 10's discussion moves along."""
        def max_connectivity(view):
            return max(
                sum(
                    1
                    for t in view.tables
                    if v in view.catalog.stats(t).variables
                )
                for v in view.chain_variables + view.hub_variables
            )

        star = star_view(n_tables=5, domain_size=4)
        multi = multistar_view(n_tables=5, domain_size=4)
        linear = linear_view(n_tables=5, domain_size=4)
        assert max_connectivity(star) == 5
        assert max_connectivity(multi) == 3
        assert max_connectivity(linear) == 2
