"""TenantSpec validation, guard templates, token buckets, spec parsing."""

from __future__ import annotations

import pytest

from repro.errors import QueryError
from repro.serve import TenantSpec, TokenBucket, parse_tenant_spec


class TestTenantSpec:
    def test_defaults(self):
        spec = TenantSpec("t")
        assert spec.priority == 0
        assert spec.rate is None
        assert spec.slots == 1
        assert spec.queue_depth == 8

    @pytest.mark.parametrize("kwargs", [
        {"name": ""},
        {"name": "t", "slots": 0},
        {"name": "t", "queue_depth": -1},
        {"name": "t", "rate": 0.0},
        {"name": "t", "rate": -1.0},
        {"name": "t", "rate": 1.0, "burst": 0.5},
        {"name": "t", "slo_objective": 0.0},
        {"name": "t", "slo_objective": 1.0},
        {"name": "t", "slo_objective": -0.5},
    ])
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(QueryError):
            TenantSpec(**kwargs)

    def test_slo_objective_defaults_and_bounds(self):
        assert TenantSpec("t").slo_objective == 0.99
        assert TenantSpec("t", slo_objective=0.5).slo_objective == 0.5

    def test_zero_queue_depth_is_legal(self):
        # queue=0 is the "shed everything" configuration the CLI's
        # forced-shed soak uses; it must construct.
        assert TenantSpec("t", queue_depth=0).queue_depth == 0

    def test_guard_virtual_mode_tightens_cost_budget(self):
        spec = TenantSpec("t", cost_budget=100.0)
        assert spec.make_guard(remaining=40.0).cost_budget == 40.0
        assert spec.make_guard(remaining=500.0).cost_budget == 100.0
        assert spec.make_guard().cost_budget == 100.0
        assert TenantSpec("t").make_guard(remaining=7.0).cost_budget == 7.0
        assert TenantSpec("t").make_guard().cost_budget is None

    def test_guard_virtual_mode_never_sets_wall_deadline(self):
        guard = TenantSpec("t", cost_budget=5.0).make_guard(remaining=1.0)
        assert guard.deadline_seconds is None

    def test_guard_wall_mode_maps_remaining_to_deadline(self):
        spec = TenantSpec("t", cost_budget=100.0)
        guard = spec.make_guard(remaining=0.25, wall=True)
        assert guard.deadline_seconds == 0.25
        assert guard.cost_budget == 100.0

    def test_guard_carries_memory_and_retry_budgets(self):
        spec = TenantSpec("t", memory_limit_pages=12, retry_budget=3)
        guard = spec.make_guard()
        assert guard.memory_limit_pages == 12
        assert guard.retry_budget == 3

    def test_guard_uses_injected_clock(self):
        ticks = iter([0.0, 100.0])
        guard = TenantSpec("t").make_guard(clock=lambda: next(ticks))
        assert guard._clock() == 0.0
        assert guard._clock() == 100.0


class TestTokenBucket:
    def test_unlimited_when_rate_is_none(self):
        bucket = TokenBucket(None, burst=1.0)
        assert all(bucket.try_take(0.0) for _ in range(100))

    def test_burst_then_dry(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        assert [bucket.try_take(0.0) for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refill_is_proportional_to_elapsed(self):
        bucket = TokenBucket(rate=0.5, burst=1.0)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(1.0)   # only 0.5 tokens back
        assert bucket.try_take(2.0)       # a full token at rate 0.5

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0)
        for _ in range(2):
            assert bucket.try_take(100.0)
        assert not bucket.try_take(100.0)

    def test_time_never_runs_backwards(self):
        bucket = TokenBucket(rate=1.0, burst=1.0)
        assert bucket.try_take(10.0)
        # An out-of-order timestamp neither refills nor corrupts state.
        assert not bucket.try_take(5.0)
        assert bucket.try_take(11.0)

    def test_decisions_are_a_pure_function_of_timestamps(self):
        times = [0.0, 0.1, 0.5, 1.0, 1.1, 3.0, 3.05, 9.0]
        runs = [
            [TokenBucket(rate=1.0, burst=2.0).try_take(t) for t in times]
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestParseTenantSpec:
    def test_full_spec(self):
        spec = parse_tenant_spec(
            "gold,priority=2,rate=0.5,burst=4,slots=2,queue=16,"
            "slo=1e6,objective=0.95,cost=5e5,mem=64,retries=8"
        )
        assert spec == TenantSpec(
            "gold", priority=2, rate=0.5, burst=4.0, slots=2,
            queue_depth=16, slo=1e6, slo_objective=0.95,
            cost_budget=5e5, memory_limit_pages=64, retry_budget=8,
        )

    def test_name_only(self):
        assert parse_tenant_spec("bulk") == TenantSpec("bulk")

    @pytest.mark.parametrize("text", [
        "",                      # no name
        "priority=2",            # key=value where the name should be
        "t,priority",            # missing =value
        "t,banana=1",            # unknown key
        "t,priority=high",       # uncastable value
        "t,slots=0",             # semantically invalid spec
    ])
    def test_malformed_specs_raise_value_error(self, text):
        # ValueError (not QueryError): the CLI maps it to exit code 2.
        with pytest.raises(ValueError):
            parse_tenant_spec(text)
