"""ServingRuntime: the deterministic driver end to end.

Deadline propagation, drain policies, eviction outcomes, shed typing,
clock discipline, and double-run determinism.
"""

from __future__ import annotations

import pytest

from repro.errors import OverloadError, QueryError, ResourceError
from repro.serve import ServingRuntime, TenantSpec, VirtualClock

SQL = "select wid, sum(inv) from invest group by wid"


def result_bytes(relation):
    keys, measure = relation.sorted_snapshot()
    return keys.tobytes() + measure.tobytes()


class TestConstruction:
    def test_bad_drain_policy_rejected(self, make_runtime):
        with pytest.raises(QueryError):
            make_runtime([TenantSpec("t")], drain_policy="nope")

    def test_run_workload_requires_virtual_clock(self, make_runtime):
        db, _ = make_runtime([TenantSpec("t")])
        wall_runtime = ServingRuntime(db, [TenantSpec("w")], wall=True)
        with pytest.raises(QueryError):
            wall_runtime.run_workload([])

    def test_virtual_clock_never_runs_backwards(self):
        clock = VirtualClock()
        clock.advance(5.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestRunWorkload:
    def test_all_admitted_all_ok_in_submission_order(
        self, make_runtime, make_request
    ):
        db, runtime = make_runtime([TenantSpec("t")])
        requests = [
            make_request(db, "t", arrival=float(i)) for i in range(4)
        ]
        report = runtime.run_workload(requests)
        assert [o.request.seq for o in report.outcomes] == [0, 1, 2, 3]
        assert all(o.ok for o in report.outcomes)
        assert report.duration > 0
        assert "4 requests" in report.summary()

    def test_clock_advances_by_executed_cost(
        self, make_runtime, make_request
    ):
        db, runtime = make_runtime([TenantSpec("t")])
        report = runtime.run_workload([make_request(db, "t")])
        outcome = report.outcomes[0]
        assert outcome.stats is not None
        assert report.duration == pytest.approx(outcome.stats.elapsed())

    def test_deadline_blown_in_queue_sheds_without_executing(
        self, make_runtime, make_request
    ):
        # A bulk query occupies the single server; the gold request
        # arriving just after it starts waits one full execution —
        # far beyond its 100-unit SLO — so at dispatch it is shed,
        # never executed.
        db, runtime = make_runtime([
            TenantSpec("bulk"), TenantSpec("gold", slo=100.0),
        ])
        report = runtime.run_workload([
            make_request(db, "bulk", arrival=0.0),
            make_request(db, "gold", arrival=1.0),
        ])
        bulk, gold = report.outcomes
        assert bulk.ok
        assert gold.shed
        assert gold.error.reason == "deadline"
        assert gold.queue_wait > 100.0
        assert gold.result is None and gold.stats is None
        snap = db.metrics.snapshot().to_dict()
        assert snap["serve.deadline_misses{tenant=gold}"]["value"] == 1
        assert snap["serve.completed{status=ok,tenant=bulk}"]["value"] == 1

    def test_generous_slo_tightens_guard_but_completes(
        self, make_runtime, make_request
    ):
        db, runtime = make_runtime([TenantSpec("t", slo=1e9)])
        report = runtime.run_workload(
            [make_request(db, "t"), make_request(db, "t")]
        )
        assert all(o.ok for o in report.outcomes)
        # The queued request waited, so some SLO was consumed.
        assert report.outcomes[1].queue_wait > 0

    def test_rate_limited_tenant_sheds_with_reason_rate(
        self, make_runtime, make_request
    ):
        db, runtime = make_runtime(
            [TenantSpec("t", rate=1e-9, burst=1.0)]
        )
        report = runtime.run_workload([
            make_request(db, "t", arrival=0.0),
            make_request(db, "t", arrival=1.0),
        ])
        assert report.outcomes[0].ok
        assert report.outcomes[1].error.reason == "rate"

    def test_eviction_produces_victim_outcome(
        self, make_runtime, make_request
    ):
        # One tenant, queue depth 1, three simultaneous arrivals:
        # the first fills the queue, the second ties on priority and
        # is shed, the third's higher priority evicts the first.
        db, runtime = make_runtime([TenantSpec("t", queue_depth=1)])
        report = runtime.run_workload([
            make_request(db, "t", priority=0),
            make_request(db, "t", priority=0),
            make_request(db, "t", priority=5),
        ])
        victim, tied, vip = report.outcomes
        assert victim.shed and victim.error.reason == "evicted"
        assert tied.shed and tied.error.reason == "queue_full"
        assert vip.ok

    def test_drain_finish_completes_queued_work(
        self, make_runtime, make_request
    ):
        db, runtime = make_runtime(
            [TenantSpec("t")], drain_policy="finish"
        )
        report = runtime.run_workload(
            [make_request(db, "t") for _ in range(3)]
        )
        assert all(o.ok for o in report.outcomes)

    def test_drain_shed_sheds_queued_work(
        self, make_runtime, make_request
    ):
        db, runtime = make_runtime([TenantSpec("t")], drain_policy="shed")
        report = runtime.run_workload(
            [make_request(db, "t", arrival=float(i)) for i in range(3)]
        )
        # The first dispatches at its arrival event; the others land
        # during its execution and are still queued when events run
        # out, so the shed policy drops them.
        assert report.outcomes[0].ok
        for outcome in report.outcomes[1:]:
            assert outcome.shed
            assert outcome.error.reason == "draining"
        snap = db.metrics.snapshot().to_dict()
        assert snap["serve.drains"]["value"] == 1

    def test_guard_violation_is_error_not_shed(
        self, make_runtime, make_request
    ):
        db, runtime = make_runtime(
            [TenantSpec("t", cost_budget=1.0)]
        )
        report = runtime.run_workload([make_request(db, "t")])
        outcome = report.outcomes[0]
        assert outcome.status == "error"
        assert isinstance(outcome.error, ResourceError)
        # Partial work still advances the virtual clock.
        assert report.duration > 0
        snap = db.metrics.snapshot().to_dict()
        assert snap["serve.completed{status=error,tenant=t}"]["value"] == 1

    def test_every_shed_is_a_typed_overload_error(
        self, make_runtime, make_request
    ):
        db, runtime = make_runtime([
            TenantSpec("t", rate=1e-9, burst=1.0, queue_depth=1),
        ])
        report = runtime.run_workload(
            [make_request(db, "t") for _ in range(6)]
        )
        sheds = [o for o in report.outcomes if o.shed]
        assert sheds
        assert all(isinstance(o.error, OverloadError) for o in sheds)

    def test_plan_cache_hits_within_epoch(
        self, make_runtime, make_request
    ):
        db, runtime = make_runtime([TenantSpec("t")])
        report = runtime.run_workload(
            [make_request(db, "t") for _ in range(3)]
        )
        assert [o.plan_cached for o in report.outcomes] == [
            False, True, True,
        ]

    def test_double_run_is_byte_identical(self, make_runtime, make_request):
        def soak():
            db, runtime = make_runtime([
                TenantSpec("gold", priority=1, slo=5e5),
                TenantSpec("bulk", queue_depth=2),
            ])
            requests = [
                make_request(
                    db, ["gold", "bulk"][i % 2], arrival=i * 1e4
                )
                for i in range(10)
            ]
            report = runtime.run_workload(requests)
            payload = [
                (o.status, getattr(o.error, "reason", None), o.epoch,
                 result_bytes(o.result) if o.ok else None)
                for o in report.outcomes
            ]
            return payload, db.metrics.snapshot().to_json()

        first, second = soak(), soak()
        assert first[0] == second[0]
        assert first[1] == second[1]
