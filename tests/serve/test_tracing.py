"""Request-scoped tracing and SLO telemetry through the runtime."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.datagen import supply_chain
from repro.obs import ServeTracer, validate_trace_document
from repro.serve import ServeRequest, TenantSpec


def tenants():
    return [
        TenantSpec("gold", priority=2, queue_depth=8, slo=6e5),
        TenantSpec("bulk", priority=0, queue_depth=2),
    ]


def workload(db, make_query, n=16, gap=2e4):
    rng = np.random.default_rng(5)
    names = ["gold", "bulk"]
    requests, arrival = [], 0.0
    for seq in range(n):
        arrival += float(rng.exponential(gap))
        requests.append(ServeRequest(
            tenant=names[int(rng.integers(len(names)))],
            query=make_query(db),
            arrival=arrival,
            seq=seq,
        ))
    return requests


@pytest.fixture
def traced_soak(make_runtime, make_query):
    tracer = ServeTracer()
    db, runtime = make_runtime(tenants(), tracer=tracer)
    reload_rel = supply_chain(
        scale=0.004, seed=1043
    ).catalog.relation("location")
    report = runtime.run_workload(
        workload(db, make_query),
        reloads=[(3e5, reload_rel, "location")],
    )
    return db, runtime, report, tracer


class TestRuntimeTracing:
    def test_document_validates_and_covers_every_request(self, traced_soak):
        _, _, report, tracer = traced_soak
        doc = tracer.document(name="unit-soak")
        validate_trace_document(doc)
        assert len(doc["requests"]) == len(report.outcomes)
        for outcome, entry in zip(report.outcomes, doc["requests"]):
            assert entry["status"] == outcome.status
            assert entry["tenant"] == outcome.request.tenant
            if outcome.ok:
                assert entry["stats_epoch"] == outcome.epoch
            if outcome.shed:
                assert entry["reason"] == outcome.error.reason

    def test_completed_latency_recorded(self, traced_soak):
        _, _, report, _ = traced_soak
        assert report.completed
        for outcome in report.completed:
            assert outcome.latency is not None
            assert outcome.latency >= outcome.queue_wait
        for outcome in report.shed:
            assert outcome.latency is None

    def test_reload_and_retire_events_on_the_stream(self, traced_soak):
        _, _, report, tracer = traced_soak
        names = [e["name"] for e in tracer.events]
        assert names.count("reload") == 1
        (reload_event,) = (
            e for e in tracer.events if e["name"] == "reload"
        )
        assert reload_event["table"] == "location"
        assert reload_event["at"] >= 3e5

    def test_slo_monitor_saw_every_outcome(self, traced_soak):
        db, runtime, report, _ = traced_soak
        rows = {r["tenant"]: r for r in runtime.slo.rows()}
        for name in ("gold", "bulk"):
            row = rows[name]
            per_tenant = [
                o for o in report.outcomes if o.request.tenant == name
            ]
            assert row["submitted"] == len(per_tenant)
            assert row["ok"] == sum(1 for o in per_tenant if o.ok)
        snap = db.metrics.snapshot().to_dict()
        gold_p50 = snap["serve.slo_latency_p50{tenant=gold}"]["value"]
        lats = sorted(
            o.latency for o in report.completed
            if o.request.tenant == "gold"
        )
        assert gold_p50 in lats

    def test_dispatch_spans_sit_on_the_serving_timeline(self, traced_soak):
        _, _, report, tracer = traced_soak
        doc = tracer.document()
        for outcome, entry in zip(report.outcomes, doc["requests"]):
            if not outcome.ok:
                continue
            root = entry["root"]
            kinds = [c["kind"] for c in root["children"]]
            dispatch = root["children"][kinds.index("dispatch")]
            # Dispatch covers exactly the executed cost: its span ends
            # where the request completes on the virtual clock.
            assert dispatch["end"] == pytest.approx(
                outcome.request.arrival + outcome.latency
            )
            assert root["end"] == dispatch["end"]

    def test_double_run_traces_identically(self, make_runtime, make_query):
        def run():
            tracer = ServeTracer()
            db, runtime = make_runtime(tenants(), tracer=tracer)
            runtime.run_workload(workload(db, make_query))
            return json.dumps(tracer.document(name="rerun"), sort_keys=True)

        assert run() == run()
