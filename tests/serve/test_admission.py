"""AdmissionController policy: order, eviction, dispatch, drain."""

from __future__ import annotations

import pytest

from repro.errors import OverloadError, QueryError
from repro.obs.metrics import MetricsRegistry
from repro.serve import AdmissionController, ServeRequest, TenantSpec


def req(tenant, seq, priority=0, arrival=0.0):
    return ServeRequest(
        tenant=tenant, query=None, arrival=arrival, seq=seq,
        priority=priority,
    )


@pytest.fixture
def metrics():
    return MetricsRegistry()


class TestConstruction:
    def test_duplicate_tenant_rejected(self):
        with pytest.raises(QueryError):
            AdmissionController([TenantSpec("a"), TenantSpec("a")])

    def test_needs_at_least_one_tenant(self):
        with pytest.raises(QueryError):
            AdmissionController([])

    def test_unknown_tenant_rejected_at_offer(self):
        ctrl = AdmissionController([TenantSpec("a")])
        with pytest.raises(QueryError):
            ctrl.offer(req("ghost", 0), now=0.0)


class TestPolicyOrder:
    def test_draining_sheds_before_anything_else(self):
        ctrl = AdmissionController([TenantSpec("a", rate=1.0)])
        ctrl.begin_drain()
        decision = ctrl.offer(req("a", 0), now=0.0)
        assert not decision.admitted
        assert decision.error.reason == "draining"

    def test_rate_sheds_before_queue_inspection(self):
        ctrl = AdmissionController([
            TenantSpec("a", rate=1.0, burst=1.0, queue_depth=8),
        ])
        assert ctrl.offer(req("a", 0), now=0.0).admitted
        decision = ctrl.offer(req("a", 1), now=0.0)
        assert decision.error.reason == "rate"
        assert ctrl.queued("a") == 1  # plenty of queue room went unused

    def test_queue_room_admits(self):
        ctrl = AdmissionController([TenantSpec("a", queue_depth=2)])
        assert ctrl.offer(req("a", 0), now=0.0).admitted
        assert ctrl.offer(req("a", 1), now=0.0).admitted
        assert ctrl.queued("a") == 2

    def test_zero_depth_queue_sheds_everything(self):
        ctrl = AdmissionController([TenantSpec("a", queue_depth=0)])
        decision = ctrl.offer(req("a", 0, priority=99), now=0.0)
        assert decision.error.reason == "queue_full"
        assert not decision.evicted


class TestEviction:
    def two_queued(self, priorities=(1, 0)):
        ctrl = AdmissionController([TenantSpec("a", queue_depth=2)])
        for seq, priority in enumerate(priorities):
            ctrl.offer(req("a", seq, priority=priority), now=0.0)
        return ctrl

    def test_equal_priority_sheds_the_arrival(self):
        # Eviction needs *strictly* higher priority than the best
        # victim; a tie sheds the arrival, protecting queued work.
        ctrl = self.two_queued(priorities=(1, 1))
        decision = ctrl.offer(req("a", 2, priority=1), now=0.0)
        assert decision.error.reason == "queue_full"
        assert ctrl.queued("a") == 2

    def test_higher_priority_evicts_lowest_priority_victim(self):
        ctrl = self.two_queued(priorities=(1, 0))
        decision = ctrl.offer(req("a", 2, priority=2), now=0.0)
        assert decision.admitted
        assert [v.seq for v in decision.evicted] == [1]
        assert ctrl.queued("a") == 2

    def test_victim_is_youngest_within_lowest_priority(self):
        ctrl = AdmissionController([TenantSpec("a", queue_depth=3)])
        for seq in range(3):
            ctrl.offer(req("a", seq, priority=0), now=0.0)
        decision = ctrl.offer(req("a", 3, priority=1), now=0.0)
        # seq 2 waited least among the priority-0 candidates.
        assert [v.seq for v in decision.evicted] == [2]

    def test_eviction_metrics(self, metrics):
        ctrl = AdmissionController(
            [TenantSpec("a", queue_depth=1)], metrics=metrics,
        )
        ctrl.offer(req("a", 0, priority=0), now=0.0)
        ctrl.offer(req("a", 1, priority=5), now=0.0)
        snap = metrics.snapshot().to_dict()
        assert snap["serve.shed{reason=evicted,tenant=a}"]["value"] == 1
        assert snap["serve.admitted{tenant=a}"]["value"] == 2


class TestDispatch:
    def test_priority_first_then_arrival_then_seq(self):
        ctrl = AdmissionController([
            TenantSpec("a", queue_depth=4), TenantSpec("b", queue_depth=4),
        ])
        ctrl.offer(req("a", 0, priority=0, arrival=0.0), now=0.0)
        ctrl.offer(req("b", 1, priority=2, arrival=1.0), now=1.0)
        ctrl.offer(req("a", 2, priority=0, arrival=0.0), now=0.0)
        order = []
        while True:
            nxt = ctrl.next_runnable()
            if nxt is None:
                break
            order.append(nxt.seq)
            ctrl.complete(nxt)
        assert order == [1, 0, 2]

    def test_slot_limit_blocks_dispatch_until_complete(self):
        ctrl = AdmissionController([TenantSpec("a", slots=1)])
        ctrl.offer(req("a", 0), now=0.0)
        ctrl.offer(req("a", 1), now=0.0)
        first = ctrl.next_runnable()
        assert first.seq == 0
        assert ctrl.next_runnable() is None  # slot held
        ctrl.complete(first)
        assert ctrl.next_runnable().seq == 1

    def test_fifo_within_a_tenant(self):
        ctrl = AdmissionController([TenantSpec("a", queue_depth=4)])
        for seq in range(3):
            ctrl.offer(req("a", seq), now=float(seq))
        dispatched = []
        while ctrl.queued("a"):
            nxt = ctrl.next_runnable()
            dispatched.append(nxt.seq)
            ctrl.complete(nxt)
        assert dispatched == [0, 1, 2]


class TestDrain:
    def test_drain_queues_returns_everything_in_seq_order(self):
        ctrl = AdmissionController([
            TenantSpec("a", queue_depth=4), TenantSpec("b", queue_depth=4),
        ])
        ctrl.offer(req("b", 1), now=0.0)
        ctrl.offer(req("a", 0), now=0.0)
        ctrl.offer(req("a", 2), now=0.0)
        drained = ctrl.drain_queues()
        assert [r.seq for r in drained] == [0, 1, 2]
        assert ctrl.queued() == 0

    def test_shed_at_dispatch_returns_typed_error(self, metrics):
        ctrl = AdmissionController([TenantSpec("a")], metrics=metrics)
        error = ctrl.shed_at_dispatch(req("a", 0), "deadline", "too late")
        assert isinstance(error, OverloadError)
        assert error.reason == "deadline"
        snap = metrics.snapshot().to_dict()
        assert snap["serve.shed{reason=deadline,tenant=a}"]["value"] == 1
