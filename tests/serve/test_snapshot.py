"""Snapshot isolation: pinned readers vs concurrent ``reload_table``.

The contract under test (ISSUE satellite): an in-flight request
admitted before a reload executes against pre-reload data, and a
plan cached under an old epoch is never served after the reload.
"""

from __future__ import annotations

import pytest

from repro.cli import _build_database
from repro.datagen import supply_chain
from repro.serve import SnapshotManager, TenantSpec

SQL = "select wid, sum(inv) from invest group by wid"


def result_bytes(relation):
    keys, measure = relation.sorted_snapshot()
    return keys.tobytes() + measure.tobytes()


def relation_bytes(catalog, name):
    return result_bytes(catalog.relation(name))


@pytest.fixture
def fresh_location():
    """A regenerated location table (different seed → different data)."""
    return supply_chain(scale=0.004, seed=143).catalog.relation("location")


class TestSnapshotManager:
    def test_pins_share_one_entry_per_epoch(self):
        db = _build_database(0.004, 7)
        manager = SnapshotManager(db)
        a, b = manager.pin(), manager.pin()
        assert a.epoch == b.epoch
        assert a.catalog is b.catalog
        assert manager.active == 1
        assert manager.readers(a.epoch) == 2

    def test_current_epoch_survives_unpin(self):
        db = _build_database(0.004, 7)
        manager = SnapshotManager(db)
        snap = manager.pin()
        manager.unpin(snap)
        assert manager.active == 1  # still the current epoch

    def test_stale_epoch_retired_when_last_reader_drains(
        self, fresh_location
    ):
        db = _build_database(0.004, 7)
        manager = SnapshotManager(db)
        snap = manager.pin()
        old_epoch = snap.epoch
        new_epoch = manager.reload(fresh_location, "location")
        assert new_epoch == old_epoch + 1
        assert manager.readers(old_epoch) == 1  # reader still pinned
        manager.unpin(snap)
        assert manager.readers(old_epoch) == 0
        # Nothing is left materialized: the new epoch's snapshot is
        # only built lazily when its first reader pins it.
        assert manager.active == 0
        snap_metrics = manager.metrics.snapshot().to_dict()
        assert snap_metrics["serve.snapshots_retired"]["value"] == 1

    def test_pinned_reader_sees_pre_reload_data(self, fresh_location):
        db = _build_database(0.004, 7)
        manager = SnapshotManager(db)
        snap = manager.pin()
        before = relation_bytes(snap.catalog, "location")
        assert before != result_bytes(fresh_location)
        manager.reload(fresh_location, "location")
        # The live catalog serves the new data ...
        assert relation_bytes(db.catalog, "location") == result_bytes(
            fresh_location
        )
        # ... while the pinned snapshot is untouched.
        assert relation_bytes(snap.catalog, "location") == before

    def test_reload_checkpoints_new_state(self, fresh_location):
        db = _build_database(0.004, 7)
        calls = []

        class Recorder:
            def checkpoint(self, target):
                calls.append(target.catalog.stats_epoch)

        manager = SnapshotManager(db, checkpointer=Recorder())
        new_epoch = manager.reload(fresh_location, "location")
        # The checkpoint captured the *post*-reload epoch.
        assert calls == [new_epoch]


class TestRuntimeSnapshotIsolation:
    def serve_one(self, runtime, request):
        finalized = runtime.admit(request)
        assert not finalized, "request unexpectedly shed"
        nxt = runtime.next_runnable()
        assert nxt is request
        return runtime.dispatch(nxt)

    def test_in_flight_request_executes_against_pre_reload_data(
        self, make_runtime, make_request, fresh_location
    ):
        db, runtime = make_runtime([TenantSpec("t")])
        pre = make_request(db, "t", sql=SQL)
        runtime.admit(pre)

        # Reload lands while `pre` is still queued.
        runtime.reload_table(fresh_location, "location")
        post = make_request(db, "t", sql=SQL)
        runtime.admit(post)

        first = runtime.dispatch(runtime.next_runnable())
        second = runtime.dispatch(runtime.next_runnable())

        # Unloaded serial baseline for the pre-reload epoch.
        baseline = _build_database(0.004, 7).execute(SQL).result
        assert first.ok and second.ok
        assert first.epoch + 1 == second.epoch
        assert result_bytes(first.result) == result_bytes(baseline)
        # The regenerated table changes the answer.
        assert result_bytes(second.result) != result_bytes(baseline)

    def test_old_epoch_plans_never_served_after_reload(
        self, make_runtime, make_request, fresh_location
    ):
        db, runtime = make_runtime([TenantSpec("t")])
        self.serve_one(runtime, make_request(db, "t", sql=SQL))
        old_keys = runtime.cached_plans()
        assert len(old_keys) == 1

        runtime.reload_table(fresh_location, "location")
        outcome = self.serve_one(runtime, make_request(db, "t", sql=SQL))
        # Identical query shape, but the new epoch forces a fresh plan:
        # the old entry's key can no longer match.
        assert not outcome.plan_cached
        new_keys = [k for k in runtime.cached_plans() if k not in old_keys]
        assert len(new_keys) == 1
        assert new_keys[0][-1] == old_keys[0][-1] + 1  # epoch component

        # Same shape again *within* the new epoch: now it hits.
        again = self.serve_one(runtime, make_request(db, "t", sql=SQL))
        assert again.plan_cached
        snap = db.metrics.snapshot().to_dict()
        assert snap["serve.plan_cache.hits{tenant=t}"]["value"] == 1
        assert snap["serve.plan_cache.misses{tenant=t}"]["value"] == 2

    def test_snapshot_gauges_track_pin_lifecycle(
        self, make_runtime, make_request, fresh_location
    ):
        db, runtime = make_runtime([TenantSpec("t")])
        pre = make_request(db, "t", sql=SQL)
        runtime.admit(pre)
        runtime.reload_table(fresh_location, "location")
        assert runtime.snapshots.active == 1  # the pinned old epoch
        runtime.dispatch(runtime.next_runnable())
        assert runtime.snapshots.active == 0  # stale epoch retired
