"""AsyncServer: the asyncio front end over a wall-clock runtime."""

from __future__ import annotations

import asyncio

import pytest

from repro.cli import _build_database
from repro.errors import OverloadError
from repro.serve import AsyncServer, TenantSpec

SQL = "select wid, sum(inv) from invest group by wid"


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def db():
    return _build_database(0.004, 7)


class TestAsyncServer:
    def test_submit_and_drain(self, db):
        async def scenario():
            async with AsyncServer(db, [TenantSpec("t")]) as server:
                outcomes = await asyncio.gather(*[
                    server.submit("t", db._select_query(SQL))
                    for _ in range(4)
                ])
            return outcomes

        outcomes = run(scenario())
        assert [o.status for o in outcomes] == ["ok"] * 4
        # Same shape, same epoch: the shared plan cache serves repeats.
        assert sum(o.plan_cached for o in outcomes) == 3

    def test_zero_depth_queue_sheds_immediately(self, db):
        async def scenario():
            async with AsyncServer(
                db, [TenantSpec("t", queue_depth=0)]
            ) as server:
                return await server.submit("t", db._select_query(SQL))

        outcome = run(scenario())
        assert outcome.shed
        assert isinstance(outcome.error, OverloadError)
        assert outcome.error.reason == "queue_full"

    def test_drain_shed_flushes_queued_requests(self, db):
        async def scenario():
            server = AsyncServer(db, [TenantSpec("t", queue_depth=8)])
            await server.start()
            futures = [
                asyncio.ensure_future(
                    server.submit("t", db._select_query(SQL))
                )
                for _ in range(3)
            ]
            # Let the submissions enqueue before draining them away.
            await asyncio.sleep(0)
            await server.drain(shed=True)
            return await asyncio.gather(*futures)

        outcomes = run(scenario())
        sheds = [o for o in outcomes if o.shed]
        assert all(
            o.error.reason == "draining" for o in sheds
        )
        assert all(o.ok for o in outcomes if not o.shed)

    def test_results_match_unloaded_execution(self, db):
        async def scenario():
            async with AsyncServer(db, [TenantSpec("t")]) as server:
                return await server.submit("t", db._select_query(SQL))

        outcome = run(scenario())
        baseline = _build_database(0.004, 7).execute(SQL).result
        keys, measure = outcome.result.sorted_snapshot()
        bkeys, bmeasure = baseline.sorted_snapshot()
        assert keys.tobytes() == bkeys.tobytes()
        assert measure.tobytes() == bmeasure.tobytes()
