"""Fixtures for the serving-runtime suite.

Everything runs on the tiny supply chain (scale 0.004) with the
``invest`` view defined, driven by a :class:`VirtualClock` so every
test is deterministic.
"""

from __future__ import annotations

import pytest

from repro.cli import _build_database
from repro.serve import ServeRequest, ServingRuntime, VirtualClock


@pytest.fixture
def make_runtime():
    """Factory: ``(tenants, **kwargs) -> (db, runtime)`` on one clock."""

    def make(tenants, scale=0.004, seed=7, db_kwargs=None, **kwargs):
        clock = VirtualClock()
        db = _build_database(scale, seed, clock=clock, **(db_kwargs or {}))
        runtime = ServingRuntime(db, tenants, clock=clock, **kwargs)
        return db, runtime

    return make


@pytest.fixture
def make_query():
    """Factory: ``(db, sql) -> MPFQuery`` against the invest view."""

    def make(db, sql="select wid, sum(inv) from invest group by wid"):
        return db._select_query(sql)

    return make


@pytest.fixture
def make_request(make_query):
    """Factory for a ``ServeRequest`` over the invest view.

    Assigns a unique ``seq`` per request: tests driving ``admit`` /
    ``dispatch`` by hand bypass ``run_workload``'s seq assignment.
    """
    counter = iter(range(10_000))

    def make(db, tenant, arrival=0.0, sql=None, priority=None):
        sql = sql or "select wid, sum(inv) from invest group by wid"
        return ServeRequest(
            tenant=tenant, query=make_query(db, sql),
            arrival=arrival, priority=priority, seq=next(counter),
        )

    return make
