"""Unit tests for domains, variables, and variable sets."""

import numpy as np
import pytest

from repro.data.domain import Domain, VariableSet, domain_product, var
from repro.errors import SchemaError


class TestDomain:
    def test_codes(self):
        d = Domain("color", 3)
        assert d.codes().tolist() == [0, 1, 2]

    def test_labels_roundtrip(self):
        d = Domain("color", 3, labels=("red", "green", "blue"))
        assert d.label_of(1) == "green"
        assert d.code_of("blue") == 2
        assert d.code_of(0) == 0

    def test_unlabeled_label_of_is_code(self):
        d = Domain("n", 5)
        assert d.label_of(np.int64(3)) == 3

    def test_bad_size(self):
        with pytest.raises(SchemaError):
            Domain("empty", 0)

    def test_label_count_mismatch(self):
        with pytest.raises(SchemaError):
            Domain("color", 3, labels=("red",))

    def test_code_out_of_range(self):
        d = Domain("n", 3)
        with pytest.raises(SchemaError):
            d.code_of(7)


class TestVariable:
    def test_size(self):
        v = var("x", 4)
        assert v.size == 4
        assert v.domain.name == "x"

    def test_labels_via_var(self):
        v = var("x", 2, labels=("lo", "hi"))
        assert v.domain.code_of("hi") == 1


class TestVariableSet:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            VariableSet.of([var("a", 2), var("a", 3)])

    def test_union_preserves_order(self):
        a, b, c = var("a", 2), var("b", 2), var("c", 2)
        left = VariableSet.of([a, b])
        right = VariableSet.of([c, b])
        assert left.union(right).names == ("a", "b", "c")

    def test_union_conflicting_domains(self):
        left = VariableSet.of([var("a", 2)])
        right = VariableSet.of([var("a", 3)])
        with pytest.raises(SchemaError):
            left.union(right)

    def test_intersect(self):
        a, b, c = var("a", 2), var("b", 2), var("c", 2)
        left = VariableSet.of([a, b])
        right = VariableSet.of([b, c])
        assert left.intersect(right).names == ("b",)

    def test_minus_and_subset(self):
        a, b, c = var("a", 2), var("b", 3), var("c", 4)
        vs = VariableSet.of([a, b, c])
        assert vs.minus(["b"]).names == ("a", "c")
        assert vs.subset(["c", "a"]).names == ("a", "c")

    def test_subset_unknown(self):
        vs = VariableSet.of([var("a", 2)])
        with pytest.raises(SchemaError):
            vs.subset(["zzz"])

    def test_contains_variable_or_name(self):
        a = var("a", 2)
        vs = VariableSet.of([a])
        assert "a" in vs
        assert a in vs
        assert "b" not in vs

    def test_getitem(self):
        a = var("a", 2)
        vs = VariableSet.of([a])
        assert vs["a"] is a
        with pytest.raises(KeyError):
            vs["b"]

    def test_sizes(self):
        vs = VariableSet.of([var("a", 2), var("b", 5)])
        assert vs.sizes() == (2, 5)


def test_domain_product():
    assert domain_product([var("a", 2), var("b", 3), var("c", 4)]) == 24
    assert domain_product([]) == 1
