"""Row-key encoding: mixed-radix fast path and np.unique fallback."""

import numpy as np

from repro.data.encoding import (
    MIXED_RADIX_LIMIT,
    _fits_mixed_radix,
    encode_rows,
    encode_rows_pair,
)

# A domain size pair whose product exceeds the int64 budget, forcing
# the np.unique fallback.
_BIG = int(np.sqrt(MIXED_RADIX_LIMIT)) + 2


def test_mixed_radix_preserves_lex_order():
    cols = [
        np.array([0, 0, 1, 1], dtype=np.int64),
        np.array([0, 1, 0, 1], dtype=np.int64),
    ]
    keys = encode_rows(cols, (2, 2))
    assert list(keys) == [0, 1, 2, 3]


def test_fallback_triggers_past_limit():
    assert _fits_mixed_radix((2, 3))
    assert not _fits_mixed_radix((_BIG, _BIG))


def test_fallback_inverse_is_one_dimensional():
    """np.unique(axis=0) inverse shape differs across NumPy versions
    (2-D in 2.0, 1-D before and after); the fallback must always hand
    back flat int64 keys."""
    cols = [
        np.array([5, 5, 7, 5], dtype=np.int64),
        np.array([1, 2, 1, 1], dtype=np.int64),
    ]
    keys = encode_rows(cols, (_BIG, _BIG))
    assert keys.ndim == 1
    assert keys.dtype == np.int64
    # Equal rows share a key; keys preserve lexicographic row order.
    assert keys[0] == keys[3]
    assert keys[0] < keys[1] < keys[2]


def test_fallback_pair_matches_mixed_radix_semantics():
    left = [
        np.array([0, 1, 2], dtype=np.int64),
        np.array([1, 0, 1], dtype=np.int64),
    ]
    right = [
        np.array([1, 0], dtype=np.int64),
        np.array([0, 1], dtype=np.int64),
    ]
    small_l, small_r = encode_rows_pair(left, right, (3, 2))
    big_l, big_r = encode_rows_pair(left, right, (_BIG, _BIG))
    for keys in (big_l, big_r):
        assert keys.ndim == 1
        assert keys.dtype == np.int64
    # Same match structure under either encoding.
    small = (small_l[:, None] == small_r[None, :])
    big = (big_l[:, None] == big_r[None, :])
    assert np.array_equal(small, big)
    assert len(big_l) == 3 and len(big_r) == 2
