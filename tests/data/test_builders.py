"""Unit tests for relation builders."""

import numpy as np
import pytest

from repro.data import (
    complete_relation,
    identity_relation,
    random_relation,
    relation_from_tensor,
    var,
)
from repro.errors import SchemaError
from repro.semiring import SUM_PRODUCT


class TestComplete:
    def test_covers_cross_product(self):
        rel = complete_relation([var("a", 3), var("b", 4)])
        assert rel.ntuples == 12
        assert rel.is_complete()

    def test_lexicographic_order(self):
        rel = complete_relation([var("a", 2), var("b", 2)])
        rows = [r[:-1] for r in rel.iter_rows()]
        assert rows == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_measure_fn(self):
        rel = complete_relation(
            [var("a", 2), var("b", 3)],
            measure_fn=lambda cols: cols["a"] * 10 + cols["b"],
        )
        assert rel.value_at({"a": 1, "b": 2}) == 12.0

    def test_measure_fn_wrong_length(self):
        with pytest.raises(SchemaError):
            complete_relation(
                [var("a", 2)], measure_fn=lambda cols: np.array([1.0])
            )

    def test_deterministic_under_rng(self):
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        r1 = complete_relation([var("a", 4)], rng=rng1)
        r2 = complete_relation([var("a", 4)], rng=rng2)
        assert r1.equals(r2, SUM_PRODUCT)


class TestRandom:
    def test_density(self, rng):
        rel = random_relation([var("a", 10), var("b", 10)], 0.3, rng)
        assert rel.ntuples == 30
        assert not rel.is_complete()

    def test_density_one_is_complete(self, rng):
        rel = random_relation([var("a", 4), var("b", 4)], 1.0, rng)
        assert rel.is_complete()

    def test_fd_holds(self, rng):
        # Sampling without replacement guarantees distinct keys.
        rel = random_relation([var("a", 6), var("b", 6)], 0.5, rng)
        keys = rel.key_codes()
        assert len(np.unique(keys)) == rel.ntuples

    def test_invalid_density(self, rng):
        with pytest.raises(SchemaError):
            random_relation([var("a", 3)], 0.0, rng)
        with pytest.raises(SchemaError):
            random_relation([var("a", 3)], 1.5, rng)

    def test_min_rows(self, rng):
        rel = random_relation([var("a", 100)], 0.001, rng, min_rows=5)
        assert rel.ntuples == 5


class TestTensor:
    def test_roundtrip(self):
        a, b = var("a", 2), var("b", 3)
        tensor = np.arange(6, dtype=np.float64).reshape(2, 3)
        rel = relation_from_tensor([a, b], tensor)
        for i in range(2):
            for j in range(3):
                assert rel.value_at({"a": i, "b": j}) == tensor[i, j]

    def test_shape_mismatch(self):
        with pytest.raises(SchemaError):
            relation_from_tensor([var("a", 2)], np.zeros((3,)))


class TestIdentity:
    def test_all_ones(self):
        rel = identity_relation([var("a", 2), var("b", 2)], one=1.0)
        assert rel.is_complete()
        assert (rel.measure == 1.0).all()

    def test_boolean_identity(self):
        rel = identity_relation([var("a", 3)], one=True, dtype=np.bool_)
        assert rel.measure.dtype == np.bool_
        assert rel.measure.all()
