"""Unit tests for FunctionalRelation (Definition 1)."""

import numpy as np
import pytest

from repro.data import FunctionalRelation, complete_relation, var
from repro.errors import FunctionalDependencyError, SchemaError
from repro.semiring import SUM_PRODUCT


@pytest.fixture
def ab():
    return var("a", 3), var("b", 2)


class TestConstruction:
    def test_from_rows(self, ab):
        a, b = ab
        rel = FunctionalRelation.from_rows(
            [a, b], [(0, 0, 1.5), (1, 1, 2.5)], name="r"
        )
        assert rel.ntuples == 2
        assert rel.var_names == ("a", "b")
        assert rel.value_at({"a": 0, "b": 0}) == 1.5

    def test_fd_violation_detected(self, ab):
        a, b = ab
        with pytest.raises(FunctionalDependencyError):
            FunctionalRelation.from_rows(
                [a, b], [(0, 0, 1.0), (0, 0, 2.0)]
            )

    def test_fd_duplicate_same_measure_still_rejected(self, ab):
        # The FD is about rows, not values: duplicate keys are invalid.
        a, b = ab
        with pytest.raises(FunctionalDependencyError):
            FunctionalRelation.from_rows(
                [a, b], [(1, 1, 2.0), (1, 1, 2.0)]
            )

    def test_column_length_mismatch(self, ab):
        a, b = ab
        with pytest.raises(SchemaError):
            FunctionalRelation(
                [a, b],
                {"a": np.array([0]), "b": np.array([0, 1])},
                np.array([1.0, 2.0]),
            )

    def test_out_of_domain_code(self, ab):
        a, b = ab
        with pytest.raises(SchemaError):
            FunctionalRelation(
                [a, b],
                {"a": np.array([5]), "b": np.array([0])},
                np.array([1.0]),
            )

    def test_missing_column(self, ab):
        a, b = ab
        with pytest.raises(SchemaError):
            FunctionalRelation([a, b], {"a": np.array([0])}, np.array([1.0]))

    def test_extra_column(self, ab):
        a, b = ab
        with pytest.raises(SchemaError):
            FunctionalRelation(
                [a],
                {"a": np.array([0]), "b": np.array([0])},
                np.array([1.0]),
            )

    def test_constant(self):
        rel = FunctionalRelation.constant(42.0)
        assert rel.arity == 0
        assert rel.ntuples == 1
        assert rel.measure[0] == 42.0

    def test_zero_variable_multirow_rejected(self):
        with pytest.raises(FunctionalDependencyError):
            FunctionalRelation([], {}, np.array([1.0, 2.0]))

    def test_row_width_mismatch(self, ab):
        a, b = ab
        with pytest.raises(SchemaError):
            FunctionalRelation.from_rows([a, b], [(0, 1.0)])


class TestProperties:
    def test_completeness(self, ab):
        a, b = ab
        rel = complete_relation([a, b])
        assert rel.is_complete()
        assert rel.domain_size() == 6

    def test_incomplete(self, ab):
        a, b = ab
        rel = FunctionalRelation.from_rows([a, b], [(0, 0, 1.0)])
        assert not rel.is_complete()

    def test_value_at_missing(self, ab):
        a, b = ab
        rel = FunctionalRelation.from_rows([a, b], [(0, 0, 1.0)])
        with pytest.raises(KeyError):
            rel.value_at({"a": 2, "b": 1})


class TestEquality:
    def test_equals_up_to_row_order(self, ab):
        a, b = ab
        r1 = FunctionalRelation.from_rows([a, b], [(0, 0, 1.0), (1, 1, 2.0)])
        r2 = FunctionalRelation.from_rows([a, b], [(1, 1, 2.0), (0, 0, 1.0)])
        assert r1.equals(r2, SUM_PRODUCT)

    def test_equals_up_to_column_order(self, ab):
        a, b = ab
        r1 = FunctionalRelation.from_rows([a, b], [(0, 1, 3.0)])
        r2 = FunctionalRelation.from_rows([b, a], [(1, 0, 3.0)])
        assert r1.equals(r2, SUM_PRODUCT)

    def test_not_equal_different_measure(self, ab):
        a, b = ab
        r1 = FunctionalRelation.from_rows([a, b], [(0, 0, 1.0)])
        r2 = FunctionalRelation.from_rows([a, b], [(0, 0, 9.0)])
        assert not r1.equals(r2, SUM_PRODUCT)

    def test_not_equal_different_schema(self, ab):
        a, b = ab
        r1 = FunctionalRelation.from_rows([a], [(0, 1.0)])
        r2 = FunctionalRelation.from_rows([a, b], [(0, 0, 1.0)])
        assert not r1.equals(r2, SUM_PRODUCT)

    def test_ignore_zero_rows(self, ab):
        a, b = ab
        r1 = FunctionalRelation.from_rows([a, b], [(0, 0, 1.0), (1, 1, 0.0)])
        r2 = FunctionalRelation.from_rows([a, b], [(0, 0, 1.0)])
        assert r1.equals(r2, SUM_PRODUCT, ignore_zero_rows=True)
        assert not r1.equals(r2, SUM_PRODUCT)


class TestManipulation:
    def test_take(self, ab):
        a, b = ab
        rel = FunctionalRelation.from_rows(
            [a, b], [(0, 0, 1.0), (1, 0, 2.0), (2, 1, 3.0)]
        )
        sub = rel.take(np.array([2, 0]))
        assert sub.ntuples == 2
        assert sub.measure.tolist() == [3.0, 1.0]

    def test_reorder(self, ab):
        a, b = ab
        rel = FunctionalRelation.from_rows([a, b], [(0, 1, 5.0)])
        swapped = rel.reorder(["b", "a"])
        assert swapped.var_names == ("b", "a")
        assert swapped.value_at({"a": 0, "b": 1}) == 5.0

    def test_reorder_not_permutation(self, ab):
        a, b = ab
        rel = FunctionalRelation.from_rows([a, b], [(0, 1, 5.0)])
        with pytest.raises(SchemaError):
            rel.reorder(["a"])

    def test_rename(self, ab):
        a, b = ab
        rel = FunctionalRelation.from_rows([a, b], [(0, 1, 5.0)])
        renamed = rel.rename({"a": "x"})
        assert renamed.var_names == ("x", "b")
        assert renamed.variables["x"].size == 3

    def test_with_measure_length_check(self, ab):
        a, b = ab
        rel = FunctionalRelation.from_rows([a, b], [(0, 1, 5.0)])
        with pytest.raises(SchemaError):
            rel.with_measure(np.array([1.0, 2.0]))

    def test_copy_is_deep_for_columns(self, ab):
        a, b = ab
        rel = FunctionalRelation.from_rows([a, b], [(0, 1, 5.0)])
        dup = rel.copy()
        dup.columns["a"][0] = 2
        assert rel.columns["a"][0] == 0

    def test_head_formats(self, ab):
        a, b = ab
        rel = complete_relation([a, b], name="r")
        text = rel.head(2)
        assert "a\tb\tf" in text
        assert "more rows" in text

    def test_labels_in_iter_rows(self):
        c = var("c", 2, labels=("no", "yes"))
        rel = FunctionalRelation.from_rows([c], [("yes", 0.7), ("no", 0.3)])
        rows = list(rel.iter_rows(labels=True))
        assert rows[0][0] == "yes"


class TestKeyCodes:
    def test_key_codes_match_lexicographic(self, ab):
        a, b = ab
        rel = complete_relation([a, b])
        keys = rel.key_codes()
        assert sorted(keys.tolist()) == list(range(6))

    def test_empty_key_names(self, ab):
        a, b = ab
        rel = complete_relation([a, b])
        keys = rel.key_codes([])
        assert (keys == 0).all()

    def test_huge_domain_fallback(self):
        # Domains whose product overflows int64 take the unique-rank path.
        big1 = var("x", 2**40)
        big2 = var("y", 2**40)
        rel = FunctionalRelation(
            [big1, big2],
            {
                "x": np.array([0, 2**39, 5], dtype=np.int64),
                "y": np.array([1, 1, 2], dtype=np.int64),
            },
            np.array([1.0, 2.0, 3.0]),
        )
        keys = rel.key_codes()
        assert len(np.unique(keys)) == 3
