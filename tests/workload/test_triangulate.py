"""Unit tests for triangulation (Algorithm 6) and Figure 14."""

import networkx as nx
import pytest

from repro.errors import WorkloadError
from repro.workload import triangulate, variable_graph

CYCLIC_SCHEMA = {
    "contracts": ("pid", "sid"),
    "warehouses": ("wid", "cid"),
    "transporters": ("tid",),
    "location": ("pid", "wid"),
    "ctdeals": ("cid", "tid"),
    "stdeals": ("sid", "tid"),
}


@pytest.fixture
def cyclic_graph():
    return variable_graph(CYCLIC_SCHEMA)


class TestFigure14:
    """The paper triangulates the cyclic supply chain with the vertex
    order tid, sid, producing fill edges (cid, sid) and (cid, pid)."""

    def test_fill_edges(self, cyclic_graph):
        result = triangulate(cyclic_graph, order=["tid", "sid"])
        fills = {frozenset(e) for e in result.fill_edges}
        assert frozenset(("cid", "sid")) in fills
        assert frozenset(("cid", "pid")) in fills

    def test_chordal_result(self, cyclic_graph):
        result = triangulate(cyclic_graph, order=["tid", "sid"])
        assert nx.is_chordal(result.chordal_graph)

    def test_figure15_cliques(self, cyclic_graph):
        """The maximal cliques are the Figure 15 junction tree nodes:
        (sid, cid, tid), (pid, sid, cid), (pid, wid, cid)."""
        result = triangulate(cyclic_graph, order=["tid", "sid"])
        maximal = {frozenset(c) for c in result.maximal_cliques}
        assert frozenset(("sid", "cid", "tid")) in maximal
        assert frozenset(("pid", "sid", "cid")) in maximal
        assert frozenset(("pid", "wid", "cid")) in maximal


class TestMechanics:
    def test_already_chordal_no_fill(self):
        g = nx.path_graph(["a", "b", "c", "d"])
        result = triangulate(g)
        assert result.fill_edges == ()
        assert result.induced_width == 1

    def test_cycle_needs_fill(self):
        g = nx.cycle_graph(["a", "b", "c", "d"])
        result = triangulate(g)
        assert len(result.fill_edges) == 1
        assert nx.is_chordal(result.chordal_graph)

    def test_order_covers_all_vertices(self, cyclic_graph):
        result = triangulate(cyclic_graph, order=["tid", "sid"])
        assert set(result.order) == set(cyclic_graph.nodes)
        assert result.order[:2] == ("tid", "sid")

    def test_cliques_in_elimination_order(self, cyclic_graph):
        result = triangulate(cyclic_graph, order=["tid", "sid"])
        assert result.cliques[0] == frozenset(("tid", "cid", "sid"))

    def test_unknown_vertex_rejected(self, cyclic_graph):
        with pytest.raises(WorkloadError):
            triangulate(cyclic_graph, order=["ghost"])

    def test_duplicate_vertex_rejected(self, cyclic_graph):
        with pytest.raises(WorkloadError):
            triangulate(cyclic_graph, order=["tid", "tid"])

    def test_min_degree_heuristic(self, cyclic_graph):
        result = triangulate(cyclic_graph, heuristic="min_degree")
        assert nx.is_chordal(result.chordal_graph)

    def test_unknown_heuristic(self, cyclic_graph):
        with pytest.raises(WorkloadError):
            triangulate(cyclic_graph, heuristic="magic")

    def test_min_fill_optimal_on_cycle(self):
        # On a plain cycle, min-fill adds exactly n-3 chords.
        g = nx.cycle_graph(list("abcdef"))
        result = triangulate(g, heuristic="min_fill")
        assert len(result.fill_edges) == 3

    def test_induced_width_single_vertex(self):
        g = nx.Graph()
        g.add_node("a")
        result = triangulate(g)
        assert result.induced_width == 0
