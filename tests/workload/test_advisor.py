"""Tests for the workload cache advisor."""

import pytest

from repro.errors import WorkloadError
from repro.semiring import SUM_PRODUCT
from repro.workload import (
    MPFWorkload,
    advise_cache,
    cache_objective,
    satisfies_workload_invariant,
)


@pytest.fixture
def setting(tiny_supply_chain):
    sc = tiny_supply_chain
    relations = [sc.catalog.relation(t) for t in sc.tables]
    workload = MPFWorkload.uniform(["pid", "sid", "wid", "cid", "tid"])
    return relations, workload


class TestAdvise:
    def test_returns_minimum_objective(self, setting):
        relations, workload = setting
        best, candidates = advise_cache(relations, SUM_PRODUCT, workload)
        assert candidates[0].cache is best
        objectives = [c.objective for c in candidates]
        assert objectives == sorted(objectives)
        assert candidates[0].objective == cache_objective(best, workload)

    def test_best_cache_is_correct(self, setting):
        relations, workload = setting
        best, _ = advise_cache(relations, SUM_PRODUCT, workload)
        assert satisfies_workload_invariant(
            best.tables, relations, SUM_PRODUCT
        )

    def test_random_restarts_extend_candidates(self, setting):
        relations, workload = setting
        _, base = advise_cache(relations, SUM_PRODUCT, workload)
        _, extended = advise_cache(
            relations, SUM_PRODUCT, workload, random_restarts=3
        )
        assert len(extended) == len(base) + 3
        labels = {c.label for c in extended}
        assert {"random#0", "random#1", "random#2"} <= labels

    def test_restarts_deterministic_under_seed(self, setting):
        relations, workload = setting
        _, a = advise_cache(
            relations, SUM_PRODUCT, workload, random_restarts=2, seed=5
        )
        _, b = advise_cache(
            relations, SUM_PRODUCT, workload, random_restarts=2, seed=5
        )
        assert [c.objective for c in a] == [c.objective for c in b]

    def test_materialization_weight_shifts_choice(self, setting):
        relations, workload = setting
        _, cheap_storage = advise_cache(
            relations, SUM_PRODUCT, workload, materialization_weight=0.0
        )
        _, pricey_storage = advise_cache(
            relations, SUM_PRODUCT, workload, materialization_weight=100.0
        )
        # With expensive storage the objective must weigh total tuples
        # 100x harder; scores change accordingly.
        assert pricey_storage[0].objective > cheap_storage[0].objective

    def test_empty_view_rejected(self, setting):
        _, workload = setting
        with pytest.raises(WorkloadError):
            advise_cache([], SUM_PRODUCT, workload)

    def test_single_heuristic(self, setting):
        relations, workload = setting
        _, candidates = advise_cache(
            relations, SUM_PRODUCT, workload, heuristics=("width",)
        )
        assert [c.label for c in candidates] == ["ve(width)"]
