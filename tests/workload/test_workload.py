"""Workload-model tests: the MPF Workload Problem objective."""

import pytest

from repro.errors import WorkloadError
from repro.optimizer import CSPlusNonlinear
from repro.semiring import SUM_PRODUCT
from repro.workload import (
    MPFWorkload,
    WorkloadQuery,
    baseline_objective,
    build_ve_cache,
    cache_objective,
)


class TestWorkloadModel:
    def test_uniform(self):
        w = MPFWorkload.uniform(["a", "b", "c", "d"])
        assert len(w.queries) == 4
        assert sum(q.probability for q in w.queries) == pytest.approx(1.0)

    def test_uniform_empty_rejected(self):
        with pytest.raises(WorkloadError):
            MPFWorkload.uniform([])

    def test_probability_bounds(self):
        with pytest.raises(WorkloadError):
            WorkloadQuery("x", 1.5)
        with pytest.raises(WorkloadError):
            WorkloadQuery("x", -0.1)

    def test_total_probability_capped(self):
        with pytest.raises(WorkloadError):
            MPFWorkload([WorkloadQuery("a", 0.7), WorkloadQuery("b", 0.7)])

    def test_expected_cost_weighting(self):
        w = MPFWorkload([WorkloadQuery("a", 0.25), WorkloadQuery("b", 0.75)])
        cost = w.expected_cost(lambda q: 100.0 if q.variable == "a" else 20.0)
        assert cost == pytest.approx(0.25 * 100 + 0.75 * 20)

    def test_variables(self):
        w = MPFWorkload.uniform(["x", "y"])
        assert w.variables() == ("x", "y")


class TestObjectives:
    def test_cache_beats_baseline_on_repeated_queries(
        self, tiny_supply_chain
    ):
        """Section 6's premise: for a workload of single-variable
        queries, the calibrated cache answers from small tables while
        the baseline re-joins the view each time."""
        sc = tiny_supply_chain
        relations = [sc.catalog.relation(t) for t in sc.tables]
        cache = build_ve_cache(relations, SUM_PRODUCT)
        workload = MPFWorkload.uniform(["pid", "sid", "wid", "cid", "tid"])

        with_cache = cache_objective(cache, workload)
        without = baseline_objective(
            sc.catalog, sc.tables, workload, CSPlusNonlinear()
        )
        assert with_cache < without

    def test_materialization_weight(self, tiny_supply_chain):
        sc = tiny_supply_chain
        relations = [sc.catalog.relation(t) for t in sc.tables]
        cache = build_ve_cache(relations, SUM_PRODUCT)
        workload = MPFWorkload.uniform(["wid"])
        cheap = cache_objective(cache, workload, materialization_weight=0.0)
        pricey = cache_objective(cache, workload, materialization_weight=10.0)
        assert pricey > cheap
        assert pricey - cheap == pytest.approx(10.0 * cache.total_tuples())

    def test_baseline_respects_probabilities(self, tiny_supply_chain):
        sc = tiny_supply_chain
        certain = MPFWorkload([WorkloadQuery("wid", 1.0)])
        rare = MPFWorkload([WorkloadQuery("wid", 0.1)])
        optimizer = CSPlusNonlinear()
        full = baseline_objective(sc.catalog, sc.tables, certain, optimizer)
        tenth = baseline_objective(sc.catalog, sc.tables, rare, optimizer)
        assert tenth == pytest.approx(0.1 * full)
