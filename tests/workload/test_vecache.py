"""VE-cache (Algorithm 3) tests, including the paper's running example
and the Theorem 5 constrained-domain protocol."""

from functools import reduce

import pytest

from repro.algebra import marginalize, product_join, restrict
from repro.errors import WorkloadError
from repro.semiring import MIN_SUM, SUM_PRODUCT
from repro.workload import (
    build_ve_cache,
    satisfies_workload_invariant,
)


def _relations(sc):
    return [sc.catalog.relation(t) for t in sc.tables]


def _joint(relations, semiring):
    return reduce(lambda a, b: product_join(a, b, semiring), relations)


class TestPaperExample:
    def test_running_example_scopes(self, tiny_supply_chain):
        """With the paper's elimination order (tid, pid, cid) the
        maximal cached tables have scopes t1(sid, pid, wid),
        t2(wid, cid), t3(cid, tid) — the Section 6 running example."""
        relations = _relations(tiny_supply_chain)
        cache = build_ve_cache(
            relations, SUM_PRODUCT, order=["tid", "pid", "cid"]
        )
        scopes = {
            frozenset(rel.var_names)
            for rel in cache.maximal_tables().values()
        }
        assert frozenset(("sid", "pid", "wid")) in scopes
        assert frozenset(("wid", "cid")) in scopes
        assert frozenset(("cid", "tid")) in scopes

    def test_q1_answerable_from_wid_table(self, tiny_supply_chain):
        """"evaluating Q1 on t2 gives the correct answer"."""
        relations = _relations(tiny_supply_chain)
        cache = build_ve_cache(
            relations, SUM_PRODUCT, order=["tid", "pid", "cid"]
        )
        got = cache.answer("wid")
        expected = marginalize(
            _joint(relations, SUM_PRODUCT), ["wid"], SUM_PRODUCT
        )
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)


class TestInvariant:
    @pytest.mark.parametrize("heuristic", ["degree", "width"])
    def test_all_cached_tables_satisfy_definition5(
        self, tiny_supply_chain, heuristic
    ):
        relations = _relations(tiny_supply_chain)
        cache = build_ve_cache(relations, SUM_PRODUCT, heuristic=heuristic)
        assert satisfies_workload_invariant(
            cache.tables, relations, SUM_PRODUCT
        )

    def test_every_variable_answerable(self, tiny_supply_chain):
        relations = _relations(tiny_supply_chain)
        cache = build_ve_cache(relations, SUM_PRODUCT)
        joint = _joint(relations, SUM_PRODUCT)
        for v in ("pid", "sid", "wid", "cid", "tid"):
            got = cache.answer(v)
            expected = marginalize(joint, [v], SUM_PRODUCT)
            assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)

    def test_cyclic_schema(self, cyclic_supply_chain):
        """VE-cache subsumes the junction-tree transformation: it is
        correct on cyclic schemas too (Theorem 10)."""
        relations = _relations(cyclic_supply_chain)
        cache = build_ve_cache(relations, SUM_PRODUCT, order=["tid", "sid"])
        assert satisfies_workload_invariant(
            cache.tables, relations, SUM_PRODUCT
        )

    def test_min_sum_cache(self, tiny_supply_chain):
        relations = _relations(tiny_supply_chain)
        cache = build_ve_cache(relations, MIN_SUM)
        joint = _joint(relations, MIN_SUM)
        got = cache.answer("cid")
        expected = marginalize(joint, ["cid"], MIN_SUM)
        assert got.equals(expected, MIN_SUM, ignore_zero_rows=True)

    def test_disconnected_components(self, rng):
        """Cross-component total mass must reach every cached table."""
        from repro.data import complete_relation, var

        a, b = var("a", 3), var("b", 2)
        x, y = var("x", 2), var("y", 3)
        relations = [
            complete_relation([a, b], rng=rng, name="r1"),
            complete_relation([x, y], rng=rng, name="r2"),
        ]
        cache = build_ve_cache(relations, SUM_PRODUCT)
        joint = _joint(relations, SUM_PRODUCT)
        for v in ("a", "x"):
            got = cache.answer(v)
            expected = marginalize(joint, [v], SUM_PRODUCT)
            assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)


class TestRestrictedAnswer:
    def test_selection_on_query_variable(self, tiny_supply_chain):
        relations = _relations(tiny_supply_chain)
        cache = build_ve_cache(relations, SUM_PRODUCT)
        got = cache.answer("wid", selection={"wid": 1})
        joint = _joint(relations, SUM_PRODUCT)
        expected = restrict(
            marginalize(joint, ["wid"], SUM_PRODUCT), {"wid": 1}
        )
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)

    def test_selection_on_other_variable_rejected(self, tiny_supply_chain):
        cache = build_ve_cache(_relations(tiny_supply_chain), SUM_PRODUCT)
        with pytest.raises(WorkloadError):
            cache.answer("wid", selection={"tid": 1})


class TestConstrainedDomainProtocol:
    def test_paper_example_query(self, tiny_supply_chain):
        """select wid, agg(inv) from invest where tid=1 group by wid —
        the Section 6 protocol example (Theorem 5)."""
        relations = _relations(tiny_supply_chain)
        cache = build_ve_cache(relations, SUM_PRODUCT)
        conditioned = cache.absorb_evidence({"tid": 1})
        got = conditioned.answer("wid")
        expected = marginalize(
            restrict(_joint(relations, SUM_PRODUCT), {"tid": 1}),
            ["wid"],
            SUM_PRODUCT,
        )
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)

    def test_evidence_does_not_mutate_original(self, tiny_supply_chain):
        relations = _relations(tiny_supply_chain)
        cache = build_ve_cache(relations, SUM_PRODUCT)
        before = cache.answer("wid")
        cache.absorb_evidence({"tid": 1})
        after = cache.answer("wid")
        assert before.equals(after, SUM_PRODUCT)

    def test_multiple_evidence_variables(self, tiny_supply_chain):
        relations = _relations(tiny_supply_chain)
        cache = build_ve_cache(relations, SUM_PRODUCT)
        conditioned = cache.absorb_evidence({"tid": 1, "sid": 0})
        got = conditioned.answer("cid")
        expected = marginalize(
            restrict(
                _joint(relations, SUM_PRODUCT), {"tid": 1, "sid": 0}
            ),
            ["cid"],
            SUM_PRODUCT,
        )
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)

    def test_evidence_scales_other_components(self, rng):
        """Evidence in one connected component rescales every other
        component's tables by the mass change (found by hypothesis:
        two disconnected singleton relations)."""
        from repro.data import FunctionalRelation, var

        x0, x1 = var("x0", 2), var("x1", 2)
        relations = [
            FunctionalRelation.from_rows([x0], [(0, 0.3), (1, 0.7)],
                                         name="t0"),
            FunctionalRelation.from_rows([x1], [(0, 0.4), (1, 0.6)],
                                         name="t1"),
        ]
        cache = build_ve_cache(relations, SUM_PRODUCT)
        conditioned = cache.absorb_evidence({"x0": 1})
        got = conditioned.answer("x1")
        expected = marginalize(
            restrict(_joint(relations, SUM_PRODUCT), {"x0": 1}),
            ["x1"],
            SUM_PRODUCT,
        )
        assert got.equals(expected, SUM_PRODUCT, ignore_zero_rows=True)

    def test_unknown_evidence_variable(self, tiny_supply_chain):
        cache = build_ve_cache(_relations(tiny_supply_chain), SUM_PRODUCT)
        with pytest.raises(WorkloadError):
            cache.absorb_evidence({"ghost": 0})


class TestCosting:
    def test_cache_objective_components(self, tiny_supply_chain):
        relations = _relations(tiny_supply_chain)
        cache = build_ve_cache(relations, SUM_PRODUCT)
        assert cache.total_tuples() > 0
        assert cache.total_pages() >= len(cache.tables)
        assert cache.query_cost("wid") > 0

    def test_unknown_variable(self, tiny_supply_chain):
        cache = build_ve_cache(_relations(tiny_supply_chain), SUM_PRODUCT)
        with pytest.raises(WorkloadError):
            cache.table_for("ghost")

    def test_empty_view_rejected(self):
        with pytest.raises(WorkloadError):
            build_ve_cache([], SUM_PRODUCT)


class TestMaintenance:
    def test_refresh_after_insert(self, tiny_supply_chain):
        import numpy as np

        from repro.data import FunctionalRelation

        sc = tiny_supply_chain
        relations = [sc.catalog.relation(t) for t in sc.tables]
        cache = build_ve_cache(relations, SUM_PRODUCT)

        contracts = sc.catalog.relation("contracts")  # sparse: room to grow
        present = set(
            map(tuple, np.column_stack(
                [contracts.columns["pid"], contracts.columns["sid"]]
            ).tolist())
        )
        new_pair = next(
            (p, s)
            for p in range(sc.catalog.variable("pid").size)
            for s in range(sc.catalog.variable("sid").size)
            if (p, s) not in present
        )
        extended = FunctionalRelation(
            contracts.variables,
            {
                "pid": np.append(contracts.columns["pid"], new_pair[0]),
                "sid": np.append(contracts.columns["sid"], new_pair[1]),
            },
            np.append(contracts.measure, 42.5),
            name="contracts",
            measure_name=contracts.measure_name,
        )
        refreshed = cache.refresh("contracts", extended)
        patched = [extended if r.name == "contracts" else r for r in relations]
        assert satisfies_workload_invariant(
            refreshed.tables, patched, SUM_PRODUCT
        )
        # Scopes stable: same elimination order reused.
        assert refreshed.elimination_order == cache.elimination_order

    def test_refresh_unknown_table(self, tiny_supply_chain):
        sc = tiny_supply_chain
        relations = [sc.catalog.relation(t) for t in sc.tables]
        cache = build_ve_cache(relations, SUM_PRODUCT)
        with pytest.raises(WorkloadError):
            cache.refresh("ghost", relations[0])
